//! Full-system simulation: run a SPEC-like workload through the core +
//! caches + ORAM + NVM stack under several protocol variants.
//!
//! Run with: `cargo run --release --example full_system_sim`

use psoram::core::ProtocolVariant;
use psoram::system::{System, SystemConfig};
use psoram::trace::SpecWorkload;

fn main() {
    let workload = SpecWorkload::Sphinx3;
    let records = 20_000;
    println!("running {workload} ({records} trace records) through the full system stack\n");
    println!(
        "{:<16}{:>14}{:>10}{:>10}{:>12}{:>12}{:>12}",
        "variant", "cycles", "IPC", "MPKI", "NVM reads", "NVM writes", "vs baseline"
    );

    let mut baseline_cycles = None;
    for variant in [
        ProtocolVariant::Baseline,
        ProtocolVariant::FullNvm,
        ProtocolVariant::FullNvmStt,
        ProtocolVariant::NaivePsOram,
        ProtocolVariant::PsOram,
        ProtocolVariant::RcrBaseline,
        ProtocolVariant::RcrPsOram,
    ] {
        let mut sys = System::new(SystemConfig::quick_test(variant, 1));
        let r = sys.run_workload_with_warmup(workload, 4_000, records);
        let base = *baseline_cycles.get_or_insert(r.exec_cycles as f64);
        println!(
            "{:<16}{:>14}{:>10.3}{:>10.2}{:>12}{:>12}{:>11.2}x",
            r.variant,
            r.exec_cycles,
            r.ipc(),
            r.mpki(),
            r.total_reads(),
            r.total_writes(),
            r.exec_cycles as f64 / base,
        );
    }
    println!("\n(see crates/bench binaries for the full Figure 5/6/7 sweeps)");
}
