//! Ring ORAM with PS-style crash consistency — the paper's "general ORAM
//! protocols" claim in action.
//!
//! Run with: `cargo run --release --example ring_oram`

use psoram::core::ring::{RingConfig, RingOram, RingVariant};
use psoram::core::{BlockAddr, CrashPoint};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = RingConfig::small_test();
    println!(
        "Ring ORAM: L={}, Z={}, S={} dummies per bucket, evict-path every A={} accesses",
        cfg.levels, cfg.real_slots, cfg.dummy_slots, cfg.evict_rate
    );
    let mut oram = RingOram::new(cfg, RingVariant::PsRing, 7);

    for i in 0..40u64 {
        oram.write(BlockAddr(i), vec![i as u8; 8])?;
    }
    println!(
        "40 writes: {} NVM reads ({}/access — one slot per bucket, not Z!), {} evictions, {} early reshuffles",
        oram.nvm_stats().reads,
        oram.nvm_stats().reads / 40,
        oram.stats().evictions,
        oram.stats().early_reshuffles,
    );

    // Crash mid-access and recover: the read-side metadata invalidation is
    // harmless (the bytes never left the buckets), and bucket rewrites are
    // atomic WPQ rounds.
    oram.inject_crash(CrashPoint::AfterLoadPath);
    let _ = oram.read(BlockAddr(7));
    assert!(oram.is_crashed());
    let ok = oram.recover().consistent;
    println!("crash mid-access -> recover(): consistency check = {ok}");
    oram.verify_contents(true)
        .map_err(|e| format!("inconsistent: {e}"))?;
    println!("every committed value intact after recovery ✓");

    // Committed-durability semantics: writes whose eviction round had
    // committed survive; the few still in the volatile stash roll back
    // cleanly (never torn, never garbage).
    let survived = (0..40u64)
        .filter(|&i| oram.read(BlockAddr(i)).unwrap() == vec![i as u8; 8])
        .count();
    println!(
        "{survived}/40 writes were durable at crash time; the rest rolled back cleanly — \
         PS machinery generalizes beyond Path ORAM"
    );
    assert!(survived >= 30, "most writes should have committed");
    Ok(())
}
