//! Quickstart: a crash-consistent ORAM in a dozen lines.
//!
//! Run with: `cargo run --example quickstart`

use psoram::core::{BlockAddr, CrashPoint, OramConfig, PathOram, ProtocolVariant};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A PS-ORAM controller over a simulated PCM main memory. The config
    // mirrors the paper's Table 3 (here with a small tree for speed).
    let mut oram = PathOram::new(OramConfig::small_test(), ProtocolVariant::PsOram, 42);

    // Use it like a block device: writes and reads by logical address.
    for i in 0..16u64 {
        oram.write(BlockAddr(i), vec![i as u8; 8])?;
    }
    assert_eq!(oram.read(BlockAddr(7))?, vec![7u8; 8]);
    println!("wrote and read 16 blocks through the ORAM");

    // Power-fail in the middle of an access...
    oram.inject_crash(CrashPoint::AfterLoadPath);
    let _ = oram.read(BlockAddr(3)); // returns Err(OramError::Crashed)
    println!("crash injected mid-access: crashed = {}", oram.is_crashed());

    // ...and recover: every durably committed value is intact.
    let report = oram.recover();
    println!(
        "recovered, consistency check passed = {}",
        report.consistent
    );
    oram.verify_contents(true)
        .map_err(|e| format!("verification failed: {e}"))?;
    println!("all committed values verified after recovery ✓");

    // The obfuscation means the memory bus saw uniformly random paths:
    let stats = oram.stats();
    println!(
        "stats: {} accesses, {} backup blocks, {} dirty PosMap flushes, {} NVM writes",
        stats.accesses,
        stats.backups_created,
        stats.dirty_entries_flushed,
        oram.nvm_stats().writes
    );
    Ok(())
}
