//! A guided, visual walk through one PS-ORAM access: the tree, the path,
//! the stash, the temporary PosMap, and the WPQ round.
//!
//! Run with: `cargo run --example visualize_access`

use psoram::core::{BlockAddr, Leaf, OramConfig, PathOram, ProtocolVariant};

/// Renders the small ORAM tree as ASCII, marking the buckets of `path`.
fn render_tree(oram: &PathOram, path_leaf: Option<Leaf>) {
    let tree = oram.tree();
    let levels = tree.levels().min(4); // keep the picture readable
    let on_path: Vec<u64> = match path_leaf {
        Some(l) => tree.path_indices(l),
        None => Vec::new(),
    };
    for d in 0..=levels {
        let nodes = 1u64 << d;
        let width = 64 / nodes as usize;
        let mut row = String::new();
        for i in 0..nodes {
            let idx = nodes - 1 + i;
            let occ = tree.bucket(idx).occupancy();
            let mark = if on_path.contains(&idx) { '*' } else { ' ' };
            row.push_str(&format!(
                "{:^width$}",
                format!("[{occ}{mark}]"),
                width = width
            ));
        }
        println!("  L{d}: {row}");
    }
    println!("       ([n] = real blocks in bucket, * = on the accessed path)");
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut cfg = OramConfig::small_test();
    cfg.levels = 4; // tiny tree so the picture fits a terminal
    cfg.data_wpq_capacity = cfg.path_slots();
    cfg.posmap_wpq_capacity = cfg.path_slots();
    let mut oram = PathOram::new(cfg, ProtocolVariant::PsOram, 7);

    println!("== warming up: writing 12 blocks ==");
    for i in 0..12u64 {
        oram.write(BlockAddr(i), vec![i as u8; 8])?;
    }
    render_tree(&oram, None);
    println!(
        "stash: {} blocks | temp PosMap: {} pending entries\n",
        oram.stash_len(),
        oram.temp_posmap_len()
    );

    println!("== accessing block a5 ==");
    let before_writes = oram.nvm_stats().writes;
    let before_backups = oram.stats().backups_created;
    let value = oram.read(BlockAddr(5))?;
    println!("value read: {value:?}");
    println!("the access performed the five PS-ORAM steps:");
    println!("  1. stash check (miss)");
    println!("  2. PosMap lookup; new leaf parked in the *temporary* PosMap");
    println!(
        "  3. full path read — {} block transfers",
        oram.config().path_slots()
    );
    println!(
        "  4. stash update + backup block creation ({} backups so far)",
        oram.stats().backups_created
    );
    println!(
        "  5. eviction: one atomic WPQ round, {} NVM writes ({} rounds committed)",
        oram.nvm_stats().writes - before_writes,
        oram.stats().eviction_rounds
    );
    let _ = before_backups;
    render_tree(&oram, None);
    println!(
        "stash: {} blocks | temp PosMap: {} pending | dirty entries flushed: {}",
        oram.stash_len(),
        oram.temp_posmap_len(),
        oram.stats().dirty_entries_flushed
    );
    println!(
        "\nNVM totals: {} reads, {} writes over {} accesses",
        oram.nvm_stats().reads,
        oram.nvm_stats().writes,
        oram.stats().accesses
    );
    Ok(())
}
