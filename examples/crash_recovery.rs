//! Crash-recovery tour: reproduces the paper's §3.3 case studies.
//!
//! Crashes every design at every protocol step and reports which designs
//! lose data — the `Baseline` loses blocks (Case 1a), `FullNVM` tears in
//! its PosMap window (Case 1b), and the PS-ORAM family always recovers.
//!
//! Run with: `cargo run --example crash_recovery`

use psoram::core::{BlockAddr, CrashPoint, OramConfig, PathOram, ProtocolVariant};

fn payload(i: u64) -> Vec<u8> {
    vec![(i * 37 % 251) as u8; 8]
}

/// Runs a workload, crashes at `point`, recovers, and counts lost blocks.
fn crash_once(variant: ProtocolVariant, point: CrashPoint) -> (bool, usize) {
    let mut oram = PathOram::new(OramConfig::small_test(), variant, 2024);
    for i in 0..40u64 {
        oram.write(BlockAddr(i), payload(i)).expect("write");
    }
    oram.inject_crash(point);
    let _ = oram.read(BlockAddr(11));
    if !oram.is_crashed() {
        oram.crash_now();
    }
    let consistent = oram.recover().consistent;
    // Count blocks whose last written value is gone after the crash.
    let lost = (0..40u64)
        .filter(|&i| {
            oram.read(BlockAddr(i))
                .map(|v| v != payload(i))
                .unwrap_or(true)
        })
        .count();
    (consistent, lost)
}

fn main() {
    println!("crash point -> per-variant outcome (consistent?, blocks losing last write / 40)\n");
    let variants = [
        ProtocolVariant::Baseline,
        ProtocolVariant::FullNvm,
        ProtocolVariant::NaivePsOram,
        ProtocolVariant::PsOram,
    ];
    print!("{:<34}", "crash point");
    for v in variants {
        print!("{:>18}", v.label());
    }
    println!();
    for point in CrashPoint::step_boundaries() {
        print!("{:<34}", point.to_string());
        for v in variants {
            let (ok, lost) = crash_once(v, point);
            print!(
                "{:>13} {:>2}/40",
                if ok { "consistent" } else { "BROKEN" },
                lost
            );
        }
        println!();
    }
    println!(
        "\nNote: PS-ORAM may 'lose' unacknowledged writes from the crashed access \
         itself — that is the committed-durability contract. The Baseline loses \
         long-committed blocks outright (paper Case 1a), which is the bug PS-ORAM fixes."
    );
}
