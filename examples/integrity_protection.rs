//! Integrity-protected PS-ORAM: Merkle verification over the NVM tree.
//!
//! PS-ORAM assumes a secure-memory substrate with encryption *and*
//! integrity (its related work: Triad-NVM, SuperMem). This example enables
//! the integrity tree, shows that normal operation and crash recovery are
//! alarm-free, and that physical tampering with the NVM image is caught on
//! the very next access to the affected path.
//!
//! Run with: `cargo run --example integrity_protection`

use psoram::core::{BlockAddr, Leaf, OramConfig, OramError, PathOram, ProtocolVariant};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut oram = PathOram::new(OramConfig::small_test(), ProtocolVariant::PsOram, 2026);
    oram.enable_integrity();
    println!("integrity tree enabled (root in the persistence domain)");

    for i in 0..40u64 {
        oram.write(BlockAddr(i), vec![i as u8; 8])?;
    }
    println!("40 blocks written; every path read so far verified against the root");

    // Crash and recover: the root update rides the eviction commits, so
    // recovery replays cleanly with no false alarms.
    oram.crash_now();
    assert!(oram.recover().consistent);
    oram.verify_contents(true)
        .map_err(|e| format!("false alarm: {e}"))?;
    println!("crash + recovery: all committed data verified, zero false alarms");

    // Now play the adversary: flip bytes directly in the NVM image.
    let mut corrupted = None;
    for leaf in 0..64u64 {
        if oram.corrupt_path_for_testing(Leaf(leaf)) {
            corrupted = Some(leaf);
            break;
        }
    }
    let leaf = corrupted.expect("some path holds data");
    println!("adversary corrupted a block on path l{leaf} behind the controller's back");

    let mut detected = false;
    for i in 0..40u64 {
        match oram.read(BlockAddr(i)) {
            Err(OramError::IntegrityViolation { leaf }) => {
                println!("tampering detected on access: integrity violation at {leaf} ✓");
                detected = true;
                break;
            }
            Ok(_) => {}
            Err(e) => return Err(e.to_string().into()),
        }
    }
    assert!(
        detected,
        "the corrupted path is eventually accessed and caught"
    );
    Ok(())
}
