//! An oblivious, crash-consistent key-value store on PS-ORAM.
//!
//! The paper motivates NVM ORAM with applications like collaborative file
//! editing (Dropbox-style metadata), which need *both* access-pattern
//! privacy and crash consistency. This example builds a tiny KV store on
//! top of the ORAM block interface: keys hash to blocks, values are fixed
//! 8-byte records, and a power failure mid-update never corrupts the store.
//!
//! Run with: `cargo run --example secure_kv`

use psoram::core::{BlockAddr, OramConfig, OramError, PathOram, ProtocolVariant};

/// A fixed-size record store: `u32` keys to `u64` values, oblivious and
/// crash-consistent.
struct ObliviousKv {
    oram: PathOram,
    capacity: u64,
}

impl ObliviousKv {
    fn new(seed: u64) -> Self {
        let config = OramConfig::small_test().with_levels(10);
        let capacity = config.capacity_blocks();
        ObliviousKv {
            oram: PathOram::new(config, ProtocolVariant::PsOram, seed),
            capacity,
        }
    }

    fn slot(&self, key: u32) -> BlockAddr {
        // A tiny deterministic hash; collisions overwrite (toy directory).
        let h = (key as u64).wrapping_mul(0x9E3779B97F4A7C15) >> 17;
        BlockAddr(h % self.capacity)
    }

    fn put(&mut self, key: u32, value: u64) -> Result<(), OramError> {
        self.oram
            .write(self.slot(key), value.to_le_bytes().to_vec())
    }

    fn get(&mut self, key: u32) -> Result<u64, OramError> {
        let bytes = self.oram.read(self.slot(key))?;
        Ok(u64::from_le_bytes(
            bytes.try_into().expect("8-byte records"),
        ))
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut kv = ObliviousKv::new(7);

    // A collaborative document: per-user cursor positions, edit counters...
    println!("populating the store with 64 user records");
    for user in 0..64u32 {
        kv.put(user, (user as u64) * 1000 + 7)?;
    }
    assert_eq!(kv.get(42)?, 42_007);

    // Simulate a power failure in the middle of an update burst.
    for user in 0..8u32 {
        kv.put(user, 999_999)?;
    }
    println!("power failure!");
    kv.oram.crash_now();
    let consistent = kv.oram.recover().consistent;
    println!("recovered; ORAM consistency check: {consistent}");

    // Every record reads back as either its old or its new committed value
    // — never garbage, never a torn record.
    let mut old = 0;
    let mut new = 0;
    for user in 0..8u32 {
        match kv.get(user)? {
            999_999 => new += 1,
            v if v == (user as u64) * 1000 + 7 => old += 1,
            v => panic!("corrupted record for user {user}: {v}"),
        }
    }
    println!("after crash: {new} records at the new value, {old} rolled back cleanly");
    // Untouched records are always intact.
    for user in 8..64u32 {
        assert_eq!(kv.get(user)?, (user as u64) * 1000 + 7);
    }
    println!("all 56 untouched records intact ✓");
    println!(
        "bus-side obfuscation: {} ORAM accesses produced {} uniform path reads",
        kv.oram.stats().accesses,
        kv.oram.stats().accesses
    );
    Ok(())
}
