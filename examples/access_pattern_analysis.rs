//! Attacker's-eye view: what does the memory bus actually see?
//!
//! Replays a maximally revealing logical pattern (hammering one address,
//! then a sequential scan) and shows that the observable pattern — path
//! leaves and transfer counts — is uniform and shape-invariant, for the
//! baseline and for PS-ORAM alike (the paper's §4.6 claims).
//!
//! Run with: `cargo run --example access_pattern_analysis`

use psoram::core::{BlockAddr, OramConfig, PathOram, ProtocolVariant};

fn observe(variant: ProtocolVariant, pattern: &str) -> (f64, f64, bool) {
    let config = OramConfig::small_test();
    let leaves = config.num_leaves();
    let mut oram = PathOram::new(config, variant, 99);
    oram.enable_recording();
    match pattern {
        "hammer" => {
            for _ in 0..2000 {
                oram.read(BlockAddr(5)).unwrap();
            }
        }
        "scan" => {
            for i in 0..2000u64 {
                oram.read(BlockAddr(i % 120)).unwrap();
            }
        }
        _ => unreachable!(),
    }
    let rec = oram.recorder().unwrap();
    (
        rec.leaf_chi_square(leaves, 16),
        rec.leaf_serial_correlation(),
        rec.constant_shape(),
    )
}

fn main() {
    println!("logical pattern vs bus-observable pattern");
    println!("(chi-square vs uniform over 16 bins; expected ~15, p=0.001 bound ~37.7)\n");
    println!(
        "{:<16}{:<10}{:>12}{:>12}{:>16}",
        "variant", "pattern", "chi-square", "lag-1 corr", "constant shape"
    );
    for variant in [ProtocolVariant::Baseline, ProtocolVariant::PsOram] {
        for pattern in ["hammer", "scan"] {
            let (chi, corr, constant) = observe(variant, pattern);
            println!(
                "{:<16}{:<10}{:>12.1}{:>12.3}{:>16}",
                variant.label(),
                pattern,
                chi,
                corr,
                constant
            );
        }
    }
    println!(
        "\nBoth a single hammered address and a sequential scan are observationally \
         uniform random paths of identical length: the attacker learns nothing, and \
         PS-ORAM's persistence machinery does not change the picture."
    );
}
