//! Offline stand-in for `serde_json`.
//!
//! String front-end over the vendored `serde`'s [`Value`] tree: compact and
//! pretty serialization, a recursive-descent parser, and a `json!` macro
//! covering object/array literals with expression values.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod parser;

pub use parser::from_str_value;
pub use serde::value::{Number, Value};

/// Error type for serialization and parsing.
pub type Error = serde::DeError;

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Serializes `value` to compact JSON text.
///
/// # Errors
///
/// Infallible for this implementation; the `Result` mirrors the real
/// crate's signature.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(serde::value::write_json(&value.to_value(), None))
}

/// Serializes `value` to pretty-printed JSON text (2-space indent).
///
/// # Errors
///
/// Infallible for this implementation; the `Result` mirrors the real
/// crate's signature.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(serde::value::write_json(&value.to_value(), Some(2)))
}

/// Parses JSON text into any deserializable type.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let value = parser::from_str_value(s)?;
    T::from_value(&value)
}

/// Builds a [`Value`] from a JSON-like literal.
///
/// Supports object literals (string-literal keys, expression or nested
/// literal values), array literals, `null`, and arbitrary serializable
/// expressions.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($tt:tt)* ]) => {{
        let mut __items: ::std::vec::Vec<$crate::Value> = ::std::vec::Vec::new();
        $crate::json_items!(__items; $($tt)*);
        $crate::Value::Array(__items)
    }};
    ({ $($tt:tt)* }) => {{
        let mut __fields: ::std::vec::Vec<(::std::string::String, $crate::Value)> =
            ::std::vec::Vec::new();
        $crate::json_fields!(__fields; $($tt)*);
        $crate::Value::Object(__fields)
    }};
    ($other:expr) => { $crate::to_value(&$other) };
}

/// Internal muncher for `json!` object bodies.
#[doc(hidden)]
#[macro_export]
macro_rules! json_fields {
    ($obj:ident;) => {};
    ($obj:ident; $key:literal : { $($nested:tt)* } , $($rest:tt)*) => {
        $obj.extend(::std::iter::once(($key.to_string(), $crate::json!({ $($nested)* }))));
        $crate::json_fields!($obj; $($rest)*);
    };
    ($obj:ident; $key:literal : { $($nested:tt)* } $(,)?) => {
        $obj.extend(::std::iter::once(($key.to_string(), $crate::json!({ $($nested)* }))));
    };
    ($obj:ident; $key:literal : [ $($nested:tt)* ] , $($rest:tt)*) => {
        $obj.extend(::std::iter::once(($key.to_string(), $crate::json!([ $($nested)* ]))));
        $crate::json_fields!($obj; $($rest)*);
    };
    ($obj:ident; $key:literal : [ $($nested:tt)* ] $(,)?) => {
        $obj.extend(::std::iter::once(($key.to_string(), $crate::json!([ $($nested)* ]))));
    };
    ($obj:ident; $key:literal : null , $($rest:tt)*) => {
        $obj.extend(::std::iter::once(($key.to_string(), $crate::Value::Null)));
        $crate::json_fields!($obj; $($rest)*);
    };
    ($obj:ident; $key:literal : null $(,)?) => {
        $obj.extend(::std::iter::once(($key.to_string(), $crate::Value::Null)));
    };
    ($obj:ident; $key:literal : $val:expr , $($rest:tt)*) => {
        $obj.extend(::std::iter::once(($key.to_string(), $crate::to_value(&$val))));
        $crate::json_fields!($obj; $($rest)*);
    };
    ($obj:ident; $key:literal : $val:expr) => {
        $obj.extend(::std::iter::once(($key.to_string(), $crate::to_value(&$val))));
    };
}

/// Internal muncher for `json!` array bodies.
#[doc(hidden)]
#[macro_export]
macro_rules! json_items {
    ($items:ident;) => {};
    ($items:ident; { $($nested:tt)* } , $($rest:tt)*) => {
        $items.extend(::std::iter::once($crate::json!({ $($nested)* })));
        $crate::json_items!($items; $($rest)*);
    };
    ($items:ident; { $($nested:tt)* } $(,)?) => {
        $items.extend(::std::iter::once($crate::json!({ $($nested)* })));
    };
    ($items:ident; [ $($nested:tt)* ] , $($rest:tt)*) => {
        $items.extend(::std::iter::once($crate::json!([ $($nested)* ])));
        $crate::json_items!($items; $($rest)*);
    };
    ($items:ident; [ $($nested:tt)* ] $(,)?) => {
        $items.extend(::std::iter::once($crate::json!([ $($nested)* ])));
    };
    ($items:ident; null , $($rest:tt)*) => {
        $items.extend(::std::iter::once($crate::Value::Null));
        $crate::json_items!($items; $($rest)*);
    };
    ($items:ident; null $(,)?) => {
        $items.extend(::std::iter::once($crate::Value::Null));
    };
    ($items:ident; $val:expr , $($rest:tt)*) => {
        $items.extend(::std::iter::once($crate::to_value(&$val)));
        $crate::json_items!($items; $($rest)*);
    };
    ($items:ident; $val:expr) => {
        $items.extend(::std::iter::once($crate::to_value(&$val)));
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_objects_and_arrays() {
        let x = 3u64;
        let v = json!({
            "a": 1,
            "nested": { "b": x, "c": [1, 2, 3] },
            "list": [ {"k": "v"}, 2.5 ],
            "none": null,
            "s": "str",
        });
        assert_eq!(v["a"].as_u64(), Some(1));
        assert_eq!(v["nested"]["b"].as_u64(), Some(3));
        assert_eq!(v["nested"]["c"][2].as_u64(), Some(3));
        assert_eq!(v["list"][0]["k"].as_str(), Some("v"));
        assert_eq!(v["list"][1].as_f64(), Some(2.5));
        assert_eq!(v["none"], Value::Null);
        assert_eq!(v["s"].as_str(), Some("str"));
    }

    #[test]
    fn to_string_and_back() {
        let v = json!({"x": 7, "y": [true, false], "z": "q\"uote"});
        let s = to_string(&v).unwrap();
        let back: Value = from_str(&s).unwrap();
        assert_eq!(back, v);
        let pretty = to_string_pretty(&v).unwrap();
        let back2: Value = from_str(&pretty).unwrap();
        assert_eq!(back2, v);
    }

    #[test]
    fn json_of_vec_of_values() {
        let rows = vec![json!({"a": 1}), json!({"a": 2})];
        let v = json!(rows);
        assert_eq!(v[1]["a"].as_u64(), Some(2));
    }
}
