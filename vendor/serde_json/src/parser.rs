//! Recursive-descent JSON parser producing [`Value`] trees.

use serde::value::{Number, Value};
use serde::DeError;

/// Parses JSON text into a [`Value`].
///
/// # Errors
///
/// Returns [`DeError`] with a byte offset on malformed input.
pub fn from_str_value(s: &str) -> Result<Value, DeError> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> DeError {
        DeError::custom(format!("JSON parse error at byte {}: {}", self.pos, msg))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), DeError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, DeError> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Value, DeError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, DeError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, DeError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0C}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let cp = self.unicode_escape()?;
                            out.push(cp);
                            continue; // unicode_escape advanced pos itself
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().expect("non-empty checked");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Parses the `uXXXX` part of a unicode escape (cursor on the `u`),
    /// including surrogate pairs.
    fn unicode_escape(&mut self) -> Result<char, DeError> {
        self.pos += 1; // past 'u'
        let hi = self.hex4()?;
        if (0xD800..0xDC00).contains(&hi) {
            // High surrogate: require a following \uXXXX low surrogate.
            if self.peek() == Some(b'\\') {
                self.pos += 1;
                if self.peek() == Some(b'u') {
                    self.pos += 1;
                    let lo = self.hex4()?;
                    if (0xDC00..0xE000).contains(&lo) {
                        let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                        return char::from_u32(cp).ok_or_else(|| self.err("bad surrogate pair"));
                    }
                }
            }
            return Err(self.err("unpaired surrogate"));
        }
        char::from_u32(hi).ok_or_else(|| self.err("bad unicode escape"))
    }

    fn hex4(&mut self) -> Result<u32, DeError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let c = self.peek().ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = (c as char).to_digit(16).ok_or_else(|| self.err("bad hex digit"))?;
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, DeError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("ASCII number chars");
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number::from_u64(u)));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(Number::from_i64(i)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Number(Number::from_f64(f)))
            .map_err(|_| self.err("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(from_str_value("null").unwrap(), Value::Null);
        assert_eq!(from_str_value("true").unwrap(), Value::Bool(true));
        assert_eq!(from_str_value("42").unwrap(), Value::Number(Number::from_u64(42)));
        assert_eq!(from_str_value("-7").unwrap(), Value::Number(Number::from_i64(-7)));
        assert_eq!(from_str_value("2.5").unwrap(), Value::Number(Number::from_f64(2.5)));
        assert_eq!(from_str_value("1e3").unwrap(), Value::Number(Number::from_f64(1000.0)));
    }

    #[test]
    fn parses_nested_structures() {
        let v = from_str_value(r#" { "a" : [1, {"b": "x\ny"}, null] , "c": false } "#).unwrap();
        assert_eq!(v["a"][1]["b"].as_str(), Some("x\ny"));
        assert_eq!(v["c"].as_bool(), Some(false));
    }

    #[test]
    fn unicode_escapes() {
        let v = from_str_value("\"\\u00e9 \\ud83d\\ude00 \u{e9}\"").unwrap();
        assert_eq!(v.as_str(), Some("\u{e9} \u{1F600} \u{e9}"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str_value("{").is_err());
        assert!(from_str_value("[1,]").is_err());
        assert!(from_str_value("1 2").is_err());
        assert!(from_str_value(r#"{"a" 1}"#).is_err());
    }
}
