//! Sampling strategies (`prop::sample::select`).

use crate::{Strategy, TestRng};

/// Strategy drawing uniformly from a fixed set of options.
pub struct Select<T: Clone> {
    options: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        assert!(!self.options.is_empty(), "select requires at least one option");
        self.options[rng.gen_range(0..self.options.len())].clone()
    }
}

/// A strategy drawing uniformly from `options`.
///
/// # Panics
///
/// `generate` panics if `options` is empty.
pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
    Select { options }
}
