//! Collection strategies (`prop::collection::vec`).

use crate::{Strategy, TestRng};

/// Length specifications accepted by [`vec`] (exact `usize` or a
/// half-open `Range<usize>`), mirroring the real crate's `SizeRange`
/// conversions.
pub trait IntoSizeRange {
    /// The equivalent half-open length range.
    fn into_size_range(self) -> std::ops::Range<usize>;
}

impl IntoSizeRange for usize {
    fn into_size_range(self) -> std::ops::Range<usize> {
        self..self + 1
    }
}

impl IntoSizeRange for std::ops::Range<usize> {
    fn into_size_range(self) -> std::ops::Range<usize> {
        self
    }
}

impl IntoSizeRange for std::ops::RangeInclusive<usize> {
    fn into_size_range(self) -> std::ops::Range<usize> {
        *self.start()..*self.end() + 1
    }
}

/// Strategy for `Vec<T>` with a length drawn from `len`.
pub struct VecStrategy<S> {
    element: S,
    len: std::ops::Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = if self.len.is_empty() {
            self.len.start
        } else {
            rng.gen_range(self.len.clone())
        };
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// A strategy for vectors whose elements come from `element` and whose
/// length is drawn uniformly from `len`.
pub fn vec<S: Strategy>(element: S, len: impl IntoSizeRange) -> VecStrategy<S> {
    VecStrategy { element, len: len.into_size_range() }
}
