//! Offline stand-in for `proptest`.
//!
//! Implements the API subset this workspace's property tests use: the
//! `proptest!` macro (with `#![proptest_config(...)]`), `prop_assert!` /
//! `prop_assert_eq!`, `any::<T>()`, integer/float range strategies, tuple
//! strategies, `prop::collection::vec`, `prop::sample::select`, and
//! `Strategy::prop_filter_map`.
//!
//! Differences from the real crate: no shrinking (a failing case reports
//! its case number and the deterministic per-test seed instead), and the
//! generated value stream differs, so case corpora are not comparable
//! across implementations. Every run is deterministic: the RNG is seeded
//! from the test name and case index only.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

pub mod collection;
pub mod sample;

/// Everything the `proptest!` tests import.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{any, prop_assert, prop_assert_eq, proptest};
    pub use crate::{Arbitrary, Just, ProptestConfig, Strategy, TestCaseError};
}

/// Per-test configuration (subset: case count).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A failed property-test assertion.
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// The deterministic generator handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    /// The RNG for `case` of the test named `name` (stable across runs).
    pub fn for_case(name: &str, case: u64) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng(StdRng::seed_from_u64(h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15)))
    }

    /// Uniform draw from a half-open range.
    pub fn gen_range<T: rand::SampleUniform, S: rand::SampleRange<T>>(&mut self, range: S) -> T {
        self.0.gen_range(range)
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        use rand::RngCore;
        self.0.next_u64()
    }
}

/// A source of random values of an associated type.
///
/// Unlike the real crate there is no shrinking: `generate` produces the
/// final value directly.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`, retrying generation whenever `f`
    /// returns `None`.
    ///
    /// # Panics
    ///
    /// Panics (quoting `reason`) if 10 000 consecutive draws are rejected.
    fn prop_filter_map<O, F>(self, reason: &'static str, f: F) -> FilterMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> Option<O>,
    {
        FilterMap { inner: self, f, reason }
    }

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// See [`Strategy::prop_filter_map`].
pub struct FilterMap<S, F> {
    inner: S,
    f: F,
    reason: &'static str,
}

impl<S: Strategy, O, F: Fn(S::Value) -> Option<O>> Strategy for FilterMap<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        for _ in 0..10_000 {
            if let Some(v) = (self.f)(self.inner.generate(rng)) {
                return v;
            }
        }
        panic!("prop_filter_map exhausted retries: {}", self.reason);
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy producing a single fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

/// Types with a canonical whole-domain strategy ([`any`]).
pub trait Arbitrary: Sized {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy produced by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`'s whole domain.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Runs one property across `config.cases` deterministic cases
/// (`proptest!` expansion target).
///
/// # Panics
///
/// Panics on the first failing case, reporting its index.
pub fn run_property<F>(name: &str, config: &ProptestConfig, mut body: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    for case in 0..u64::from(config.cases) {
        let mut rng = TestRng::for_case(name, case);
        if let Err(e) = body(&mut rng) {
            panic!("property `{name}` failed at case {case}/{}: {e}", config.cases);
        }
    }
}

/// Defines property tests over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest! { @cfg ($cfg) $($rest)* }
    };
    (@cfg ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            $crate::run_property(stringify!($name), &__config, |__rng| {
                $(let $arg = $crate::Strategy::generate(&($strat), __rng);)*
                $body
                Ok(())
            });
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest! { @cfg ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {
        match (&$left, &$right) {
            (__l, __r) => {
                $crate::prop_assert!(
                    *__l == *__r,
                    "assertion failed: {} == {} ({:?} vs {:?})",
                    stringify!($left),
                    stringify!($right),
                    __l,
                    __r
                );
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (__l, __r) => {
                $crate::prop_assert!(*__l == *__r, $($fmt)+);
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 5u64..10, y in 0.0f64..1.0) {
            prop_assert!((5..10).contains(&x));
            prop_assert!((0.0..1.0).contains(&y));
        }

        #[test]
        fn vec_strategy_respects_len(v in prop::collection::vec(0u64..100, 3..7)) {
            prop_assert!((3..7).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 100));
        }

        #[test]
        fn select_draws_members(x in prop::sample::select(vec![2usize, 4, 8])) {
            prop_assert!([2usize, 4, 8].contains(&x));
        }

        #[test]
        fn filter_map_applies(x in (0u64..100).prop_filter_map("even", |v| {
            if v % 2 == 0 { Some(v / 2) } else { None }
        })) {
            prop_assert!(x < 50);
        }
    }

    #[test]
    fn determinism_across_runs() {
        let mut a = crate::TestRng::for_case("t", 3);
        let mut b = crate::TestRng::for_case("t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
