//! Offline stand-in for `serde_derive`.
//!
//! Generates `Serialize`/`Deserialize` impls against the vendored `serde`'s
//! JSON [`Value`] tree. Supports the shapes this workspace derives on:
//! named-field structs (possibly generic), tuple/newtype structs, unit
//! structs, and enums with unit, tuple, and struct variants (externally
//! tagged, matching real `serde_json` output). `#[serde(...)]` field
//! attributes are not supported — the workspace does not use any.
//!
//! The implementation deliberately avoids `syn`/`quote` (unavailable
//! offline): it walks the raw token stream, which is sufficient for the
//! declaration grammar above, and emits the impl as a string.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("generated Serialize impl parses")
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item).parse().expect("generated Deserialize impl parses")
}

// ── Parsing ────────────────────────────────────────────────────────────

struct Item {
    name: String,
    generics: Vec<String>,
    kind: Kind,
}

enum Kind {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

fn is_punct(t: &TokenTree, c: char) -> bool {
    matches!(t, TokenTree::Punct(p) if p.as_char() == c)
}

fn is_ident(t: &TokenTree, s: &str) -> bool {
    matches!(t, TokenTree::Ident(i) if i.to_string() == s)
}

/// Advances past any `#[...]` attributes and a `pub`/`pub(...)` visibility.
fn skip_attrs_and_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    loop {
        if i < tokens.len() && is_punct(&tokens[i], '#') {
            i += 2; // '#' then the bracket group
        } else if i < tokens.len() && is_ident(&tokens[i], "pub") {
            i += 1;
            if matches!(tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                i += 1;
            }
        } else {
            return i;
        }
    }
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs_and_vis(&tokens, 0);

    let is_struct = if is_ident(&tokens[i], "struct") {
        true
    } else if is_ident(&tokens[i], "enum") {
        false
    } else {
        panic!("derive(Serialize/Deserialize): expected struct or enum, got {:?}", tokens[i]);
    };
    i += 1;
    let name = tokens[i].to_string();
    i += 1;

    // Generic parameter names (bounds and lifetimes skipped).
    let mut generics = Vec::new();
    if i < tokens.len() && is_punct(&tokens[i], '<') {
        let mut depth = 1usize;
        i += 1;
        let mut expecting_param = true;
        let mut skip_lifetime_ident = false;
        while i < tokens.len() && depth > 0 {
            match &tokens[i] {
                t if is_punct(t, '<') => depth += 1,
                t if is_punct(t, '>') => depth -= 1,
                t if is_punct(t, ',') && depth == 1 => expecting_param = true,
                t if is_punct(t, '\'') && depth == 1 => skip_lifetime_ident = true,
                TokenTree::Ident(id) if depth == 1 && expecting_param => {
                    if skip_lifetime_ident {
                        skip_lifetime_ident = false;
                    } else {
                        generics.push(id.to_string());
                    }
                    expecting_param = false;
                }
                _ => {}
            }
            i += 1;
        }
    }

    // Scan (past any where clause) to the declaration body.
    let kind = loop {
        assert!(i < tokens.len(), "derive: no body found for {name}");
        match &tokens[i] {
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                let body: Vec<TokenTree> = g.stream().into_iter().collect();
                break if is_struct {
                    Kind::NamedStruct(parse_named_fields(&body))
                } else {
                    Kind::Enum(parse_variants(&body))
                };
            }
            TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis && is_struct => {
                let body: Vec<TokenTree> = g.stream().into_iter().collect();
                break Kind::TupleStruct(tuple_arity(&body));
            }
            t if is_punct(t, ';') && is_struct => break Kind::UnitStruct,
            _ => i += 1,
        }
    };

    Item { name, generics, kind }
}

fn parse_named_fields(tokens: &[TokenTree]) -> Vec<String> {
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs_and_vis(tokens, i);
        if i >= tokens.len() {
            break;
        }
        let TokenTree::Ident(id) = &tokens[i] else {
            panic!("derive: expected field name, got {:?}", tokens[i]);
        };
        fields.push(id.to_string());
        i += 1;
        assert!(is_punct(&tokens[i], ':'), "derive: expected `:` after field name");
        i += 1;
        // Skip the type up to the next top-level comma.
        let mut depth = 0usize;
        while i < tokens.len() {
            match &tokens[i] {
                t if is_punct(t, '<') => depth += 1,
                t if is_punct(t, '>') => depth -= 1,
                t if is_punct(t, ',') && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    fields
}

fn tuple_arity(tokens: &[TokenTree]) -> usize {
    let mut depth = 0usize;
    let mut arity = 0usize;
    let mut in_segment = false;
    for t in tokens {
        match t {
            t if is_punct(t, '<') => depth += 1,
            t if is_punct(t, '>') => depth -= 1,
            t if is_punct(t, ',') && depth == 0 => in_segment = false,
            _ => {
                if !in_segment {
                    arity += 1;
                    in_segment = true;
                }
            }
        }
    }
    arity
}

fn parse_variants(tokens: &[TokenTree]) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs_and_vis(tokens, i);
        if i >= tokens.len() {
            break;
        }
        let TokenTree::Ident(id) = &tokens[i] else {
            panic!("derive: expected variant name, got {:?}", tokens[i]);
        };
        let name = id.to_string();
        i += 1;
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let body: Vec<TokenTree> = g.stream().into_iter().collect();
                i += 1;
                VariantShape::Tuple(tuple_arity(&body))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let body: Vec<TokenTree> = g.stream().into_iter().collect();
                i += 1;
                VariantShape::Named(parse_named_fields(&body))
            }
            _ => VariantShape::Unit,
        };
        variants.push(Variant { name, shape });
        // Skip any discriminant, up to the separating comma.
        while i < tokens.len() && !is_punct(&tokens[i], ',') {
            i += 1;
        }
        i += 1;
    }
    variants
}

// ── Code generation ────────────────────────────────────────────────────

fn impl_header(item: &Item, trait_path: &str) -> String {
    if item.generics.is_empty() {
        format!("impl {} for {}", trait_path, item.name)
    } else {
        let bounded: Vec<String> =
            item.generics.iter().map(|g| format!("{g}: {trait_path}")).collect();
        format!(
            "impl<{}> {} for {}<{}>",
            bounded.join(", "),
            trait_path,
            item.name,
            item.generics.join(", ")
        )
    }
}

fn gen_serialize(item: &Item) -> String {
    let header = impl_header(item, "::serde::Serialize");
    let body = match &item.kind {
        Kind::NamedStruct(fields) => {
            let pushes: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!("::serde::Value::Object(::std::vec![{}])", pushes.join(", "))
        }
        Kind::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Kind::TupleStruct(n) => {
            let items: Vec<String> =
                (0..*n).map(|i| format!("::serde::Serialize::to_value(&self.{i})")).collect();
            format!("::serde::Value::Array(::std::vec![{}])", items.join(", "))
        }
        Kind::UnitStruct => "::serde::Value::Null".to_string(),
        Kind::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    let tyname = &item.name;
                    match &v.shape {
                        VariantShape::Unit => format!(
                            "{tyname}::{vname} => ::serde::Value::String(\
                             ::std::string::String::from(\"{vname}\")),"
                        ),
                        VariantShape::Tuple(1) => format!(
                            "{tyname}::{vname}(__f0) => ::serde::Value::Object(::std::vec![\
                             (::std::string::String::from(\"{vname}\"), \
                             ::serde::Serialize::to_value(__f0))]),"
                        ),
                        VariantShape::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                            let items: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Serialize::to_value(__f{i})"))
                                .collect();
                            format!(
                                "{tyname}::{vname}({}) => ::serde::Value::Object(::std::vec![\
                                 (::std::string::String::from(\"{vname}\"), \
                                 ::serde::Value::Array(::std::vec![{}]))]),",
                                binds.join(", "),
                                items.join(", ")
                            )
                        }
                        VariantShape::Named(fields) => {
                            let binds = fields.join(", ");
                            let pushes: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from(\"{f}\"), \
                                         ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{tyname}::{vname} {{ {binds} }} => \
                                 ::serde::Value::Object(::std::vec![\
                                 (::std::string::String::from(\"{vname}\"), \
                                 ::serde::Value::Object(::std::vec![{}]))]),",
                                pushes.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "#[automatically_derived] {header} {{ \
         fn to_value(&self) -> ::serde::Value {{ {body} }} }}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let header = impl_header(item, "::serde::Deserialize");
    let tyname = &item.name;
    let body = match &item.kind {
        Kind::NamedStruct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(\
                         ::serde::object_field(__fields, \"{f}\", \"{tyname}\")?)?,"
                    )
                })
                .collect();
            format!(
                "let __fields = __v.as_object().ok_or_else(|| \
                 ::serde::DeError::custom(\"expected object for {tyname}\"))?; \
                 ::std::result::Result::Ok({tyname} {{ {} }})",
                inits.join(" ")
            )
        }
        Kind::TupleStruct(1) => {
            format!("::std::result::Result::Ok({tyname}(::serde::Deserialize::from_value(__v)?))")
        }
        Kind::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                .collect();
            format!(
                "let __items = __v.as_array().ok_or_else(|| \
                 ::serde::DeError::custom(\"expected array for {tyname}\"))?; \
                 if __items.len() != {n} {{ return ::std::result::Result::Err(\
                 ::serde::DeError::custom(\"wrong tuple arity for {tyname}\")); }} \
                 ::std::result::Result::Ok({tyname}({}))",
                items.join(", ")
            )
        }
        Kind::UnitStruct => format!("::std::result::Result::Ok({tyname})"),
        Kind::Enum(variants) => gen_deserialize_enum(tyname, variants),
    };
    format!(
        "#[automatically_derived] {header} {{ \
         fn from_value(__v: &::serde::Value) -> \
         ::std::result::Result<Self, ::serde::DeError> {{ {body} }} }}"
    )
}

fn gen_deserialize_enum(tyname: &str, variants: &[Variant]) -> String {
    let unit_arms: Vec<String> = variants
        .iter()
        .filter(|v| matches!(v.shape, VariantShape::Unit))
        .map(|v| {
            format!("\"{0}\" => ::std::result::Result::Ok({tyname}::{0}),", v.name)
        })
        .collect();
    let data_variants: Vec<&Variant> =
        variants.iter().filter(|v| !matches!(v.shape, VariantShape::Unit)).collect();
    let data_arms: Vec<String> = data_variants
        .iter()
        .map(|v| {
            let vname = &v.name;
            match &v.shape {
                VariantShape::Unit => unreachable!("filtered above"),
                VariantShape::Tuple(1) => format!(
                    "\"{vname}\" => ::std::result::Result::Ok({tyname}::{vname}(\
                     ::serde::Deserialize::from_value(__inner)?)),"
                ),
                VariantShape::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                        .collect();
                    format!(
                        "\"{vname}\" => {{ \
                         let __items = __inner.as_array().ok_or_else(|| \
                         ::serde::DeError::custom(\"expected array for {tyname}::{vname}\"))?; \
                         if __items.len() != {n} {{ return ::std::result::Result::Err(\
                         ::serde::DeError::custom(\"wrong arity for {tyname}::{vname}\")); }} \
                         ::std::result::Result::Ok({tyname}::{vname}({})) }}",
                        items.join(", ")
                    )
                }
                VariantShape::Named(fields) => {
                    let inits: Vec<String> = fields
                        .iter()
                        .map(|f| {
                            format!(
                                "{f}: ::serde::Deserialize::from_value(::serde::object_field(\
                                 __vfields, \"{f}\", \"{tyname}::{vname}\")?)?,"
                            )
                        })
                        .collect();
                    format!(
                        "\"{vname}\" => {{ \
                         let __vfields = __inner.as_object().ok_or_else(|| \
                         ::serde::DeError::custom(\"expected object for {tyname}::{vname}\"))?; \
                         ::std::result::Result::Ok({tyname}::{vname} {{ {} }}) }}",
                        inits.join(" ")
                    )
                }
            }
        })
        .collect();

    let object_arm = if data_arms.is_empty() {
        format!(
            "::serde::Value::Object(_) => ::std::result::Result::Err(\
             ::serde::DeError::custom(\"unexpected object for {tyname}\")),"
        )
    } else {
        format!(
            "::serde::Value::Object(__fields) if __fields.len() == 1 => {{ \
             let (__tag, __inner) = &__fields[0]; \
             match __tag.as_str() {{ {} __other => ::std::result::Result::Err(\
             ::serde::DeError::custom(::std::format!(\
             \"unknown variant `{{}}` for {tyname}\", __other))), }} }}",
            data_arms.join(" ")
        )
    };

    format!(
        "match __v {{ \
         ::serde::Value::String(__s) => match __s.as_str() {{ {} \
         __other => ::std::result::Result::Err(::serde::DeError::custom(\
         ::std::format!(\"unknown variant `{{}}` for {tyname}\", __other))), }}, \
         {object_arm} \
         _ => ::std::result::Result::Err(::serde::DeError::custom(\
         \"expected string or single-key object for {tyname}\")), }}",
        unit_arms.join(" ")
    )
}
