//! Sequence-related random operations.

use crate::{RngCore, SampleUniform};

/// Random operations on slices (subset: `shuffle`, `choose`).
pub trait SliceRandom {
    /// Element type of the slice.
    type Item;

    /// Fisher–Yates shuffle in place.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// A uniformly chosen element, or `None` if the slice is empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = usize::sample_range(rng, 0, i + 1);
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[usize::sample_range(rng, 0, self.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_none_on_empty() {
        let mut rng = StdRng::seed_from_u64(3);
        let v: Vec<u32> = Vec::new();
        assert!(v.choose(&mut rng).is_none());
        let w = [7u32];
        assert_eq!(w.choose(&mut rng), Some(&7));
    }
}
