//! Offline stand-in for the `rand` crate.
//!
//! The build environment for this repository has no network access and no
//! pre-populated cargo registry, so the real `rand` cannot be fetched. This
//! crate implements the exact API subset the workspace uses — `StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::{gen_range, gen_bool}`, and
//! `seq::SliceRandom::{shuffle, choose}` — on top of a xoshiro256\*\*
//! generator seeded through SplitMix64.
//!
//! The statistical quality is more than adequate for the simulator (leaf
//! remapping, workload generation, test-case generation); the stream is
//! *not* identical to the real `rand`'s `StdRng` (ChaCha12), so absolute
//! numbers from seeded experiments differ from runs made with the real
//! crate, while all within-repo determinism properties hold.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod rngs;
pub mod seq;

/// Low-level source of random `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators (subset of the real trait: `seed_from_u64`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be drawn uniformly from a half-open range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Draws a value in `[lo, hi)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range called with empty range");
                let span = (hi as u128).wrapping_sub(lo as u128) as u128;
                // Modulo bias is < 2^-64 for every span the simulator uses.
                let r = ((rng.next_u64() as u128) % span) as $t;
                lo.wrapping_add(r)
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_signed {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range called with empty range");
                let span = (hi as i128 - lo as i128) as u128;
                let r = (rng.next_u64() as u128 % span) as i128;
                (lo as i128 + r) as $t
            }
        }
    )*};
}

impl_sample_uniform_signed!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "gen_range called with empty range");
        lo + unit_f64(rng.next_u64()) * (hi - lo)
    }
}

impl SampleUniform for f32 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "gen_range called with empty range");
        lo + (unit_f64(rng.next_u64()) as f32) * (hi - lo)
    }
}

/// Maps 64 random bits onto `[0, 1)` with 53-bit precision.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Range forms accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end)
    }
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform draw from a half-open range.
    fn gen_range<T: SampleUniform, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: u64 = rng.gen_range(10..20u64);
            assert!((10..20).contains(&v));
            let f: f64 = rng.gen_range(0.25..0.5);
            assert!((0.25..0.5).contains(&f));
        }
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.3)).count();
        let frac = hits as f64 / 20_000.0;
        assert!((frac - 0.3).abs() < 0.02, "frac {frac}");
    }
}
