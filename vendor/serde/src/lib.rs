//! Offline stand-in for `serde`.
//!
//! The build environment has no network access, so the real `serde` cannot
//! be fetched. This crate keeps the workspace's surface syntax — `use
//! serde::{Serialize, Deserialize};` plus `#[derive(Serialize,
//! Deserialize)]` — but implements the traits directly against an in-crate
//! JSON [`value::Value`] tree instead of serde's visitor-based data model.
//! `serde_json` (also vendored) re-exports [`value::Value`] and provides
//! the string front-end.
//!
//! Format compatibility: output matches `serde_json`'s defaults for the
//! shapes this workspace serializes — structs as objects, newtype structs
//! as their inner value, unit enum variants as strings, data-carrying
//! variants as externally tagged single-key objects, maps as objects with
//! stringified keys.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod value;

pub use serde_derive::{Deserialize, Serialize};
pub use value::{Number, Value};

use std::collections::{BTreeMap, HashMap};
use std::hash::Hash;

/// Error produced when a [`Value`] does not match the expected shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(String);

impl DeError {
    /// Creates an error with the given message.
    pub fn custom(msg: impl Into<String>) -> Self {
        DeError(msg.into())
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Types that can serialize themselves into a JSON [`Value`].
pub trait Serialize {
    /// The value tree representing `self`.
    fn to_value(&self) -> Value;
}

/// Types that can reconstruct themselves from a JSON [`Value`].
pub trait Deserialize: Sized {
    /// Parses `self` out of the value tree.
    ///
    /// # Errors
    ///
    /// Returns [`DeError`] when the value's shape or range does not match.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Fetches a required field from an object value (derive-macro helper).
///
/// # Errors
///
/// Returns [`DeError`] if `key` is absent.
pub fn object_field<'a>(
    fields: &'a [(String, Value)],
    key: &str,
    ty: &str,
) -> Result<&'a Value, DeError> {
    fields
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| DeError::custom(format!("missing field `{key}` for {ty}")))
}

// ── Primitive impls ────────────────────────────────────────────────────

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::from_u64(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = v
                    .as_u64()
                    .ok_or_else(|| DeError::custom(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(n)
                    .map_err(|_| DeError::custom(concat!(stringify!($t), " out of range")))
            }
        }
    )*};
}

impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 {
                    Value::Number(Number::from_u64(v as u64))
                } else {
                    Value::Number(Number::from_i64(v))
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = v
                    .as_i64()
                    .ok_or_else(|| DeError::custom(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(n)
                    .map_err(|_| DeError::custom(concat!(stringify!($t), " out of range")))
            }
        }
    )*};
}

impl_serde_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::from_f64(*self))
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64().ok_or_else(|| DeError::custom("expected f64"))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::from_f64(f64::from(*self)))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.as_f64().ok_or_else(|| DeError::custom("expected f32"))? as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::custom("expected bool")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::String(s) => Ok(s.clone()),
            _ => Err(DeError::custom("expected string")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::String(s) if s.chars().count() == 1 => {
                Ok(s.chars().next().expect("length checked"))
            }
            _ => Err(DeError::custom("expected single-char string")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => Err(DeError::custom("expected array")),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

/// Map keys must stringify reversibly to appear as JSON object keys.
pub trait MapKey: Sized {
    /// The JSON object key for this value.
    fn to_key(&self) -> String;
    /// Parses the value back out of a JSON object key.
    ///
    /// # Errors
    ///
    /// Returns [`DeError`] when the key does not parse.
    fn from_key(key: &str) -> Result<Self, DeError>;
}

macro_rules! impl_map_key_int {
    ($($t:ty),*) => {$(
        impl MapKey for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }
            fn from_key(key: &str) -> Result<Self, DeError> {
                key.parse()
                    .map_err(|_| DeError::custom(concat!("bad ", stringify!($t), " map key")))
            }
        }
    )*};
}

impl_map_key_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl MapKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
    fn from_key(key: &str) -> Result<Self, DeError> {
        Ok(key.to_owned())
    }
}

impl<K: MapKey, V: Serialize, S: std::hash::BuildHasher> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        // Sort keys for deterministic output (HashMap order is arbitrary).
        let mut fields: Vec<(String, Value)> =
            self.iter().map(|(k, v)| (k.to_key(), v.to_value())).collect();
        fields.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(fields)
    }
}

impl<K: MapKey + Eq + Hash, V: Deserialize, S: std::hash::BuildHasher + Default> Deserialize
    for HashMap<K, V, S>
{
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(fields) => fields
                .iter()
                .map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?)))
                .collect(),
            _ => Err(DeError::custom("expected object for map")),
        }
    }
}

impl<K: MapKey, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(self.iter().map(|(k, v)| (k.to_key(), v.to_value())).collect())
    }
}

impl<K: MapKey + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(fields) => fields
                .iter()
                .map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?)))
                .collect(),
            _ => Err(DeError::custom("expected object for map")),
        }
    }
}

impl<T: Serialize + Eq + Hash, S: std::hash::BuildHasher> Serialize
    for std::collections::HashSet<T, S>
{
    fn to_value(&self) -> Value {
        let mut items: Vec<Value> = self.iter().map(Serialize::to_value).collect();
        items.sort_by_key(value::Value::sort_key);
        Value::Array(items)
    }
}

impl<T: Deserialize + Eq + Hash, S: std::hash::BuildHasher + Default> Deserialize
    for std::collections::HashSet<T, S>
{
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => Err(DeError::custom("expected array for set")),
        }
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                const LEN: usize = 0 $(+ { let _ = $idx; 1 })+;
                match v {
                    Value::Array(items) if items.len() == LEN => {
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    _ => Err(DeError::custom("expected tuple array")),
                }
            }
        }
    )*};
}

impl_serde_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_and_vec_round_trip() {
        let v: Option<Vec<u32>> = Some(vec![1, 2, 3]);
        let back = Option::<Vec<u32>>::from_value(&v.to_value()).unwrap();
        assert_eq!(back, v);
        let none: Option<u64> = None;
        assert_eq!(none.to_value(), Value::Null);
    }

    #[test]
    fn map_keys_stringify() {
        let mut m = HashMap::new();
        m.insert(7u64, 9u64);
        let v = m.to_value();
        assert_eq!(v, Value::Object(vec![("7".into(), 9u64.to_value())]));
        let back: HashMap<u64, u64> = HashMap::from_value(&v).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn negative_ints_round_trip() {
        let v = (-42i64).to_value();
        assert_eq!(i64::from_value(&v).unwrap(), -42);
    }

    #[test]
    fn range_errors_are_reported() {
        let v = 300u64.to_value();
        assert!(u8::from_value(&v).is_err());
    }
}
