//! The JSON value tree shared by the vendored `serde` and `serde_json`.

/// A JSON value.
///
/// Objects preserve insertion order (a `Vec` of pairs rather than a map),
/// which keeps struct round-trips stable and output diffable.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number.
    Number(Number),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object, in insertion order.
    Object(Vec<(String, Value)>),
}

/// A JSON number: unsigned, signed, or floating-point.
#[derive(Debug, Clone, Copy)]
pub enum Number {
    /// A non-negative integer.
    U(u64),
    /// A negative integer.
    I(i64),
    /// A floating-point number.
    F(f64),
}

impl Number {
    /// Wraps an unsigned integer.
    pub fn from_u64(v: u64) -> Self {
        Number::U(v)
    }

    /// Wraps a signed integer (normalized to `U` when non-negative).
    pub fn from_i64(v: i64) -> Self {
        if v >= 0 {
            Number::U(v as u64)
        } else {
            Number::I(v)
        }
    }

    /// Wraps a float (normalized to an integer when exactly integral).
    pub fn from_f64(v: f64) -> Self {
        Number::F(v)
    }

    /// The number as `u64`, if representable.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::U(v) => Some(v),
            Number::I(_) => None,
            Number::F(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => {
                Some(f as u64)
            }
            Number::F(_) => None,
        }
    }

    /// The number as `i64`, if representable.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::U(v) => i64::try_from(v).ok(),
            Number::I(v) => Some(v),
            Number::F(f) if f.fract() == 0.0 && f >= i64::MIN as f64 && f <= i64::MAX as f64 => {
                Some(f as i64)
            }
            Number::F(_) => None,
        }
    }

    /// The number as `f64` (always possible, maybe lossy for huge ints).
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::U(v) => v as f64,
            Number::I(v) => v as f64,
            Number::F(f) => f,
        }
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Number::U(a), Number::U(b)) => a == b,
            (Number::I(a), Number::I(b)) => a == b,
            // Mixed forms compare numerically (e.g. parsed "1.0" vs 1).
            _ => self.as_f64() == other.as_f64(),
        }
    }
}

impl Value {
    /// The value as `u64`, if it is a non-negative integer number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The value as `i64`, if it is an integer number.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// The value as `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The value as `&str`, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value's elements, if it is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The value's fields, if it is an object.
    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// Looks up a field of an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()?.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// A stable ordering key used to canonicalize unordered collections.
    pub fn sort_key(&self) -> String {
        crate::value::write_json(self, None)
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        static NULL: Value = Value::Null;
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    fn index(&self, idx: usize) -> &Value {
        static NULL: Value = Value::Null;
        self.as_array().and_then(|a| a.get(idx)).unwrap_or(&NULL)
    }
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&write_json(self, None))
    }
}

/// Serializes a value to JSON text; `indent = Some(width)` pretty-prints.
pub fn write_json(v: &Value, indent: Option<usize>) -> String {
    let mut out = String::new();
    write_value(&mut out, v, indent, 0);
    out
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(out, n),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_number(out: &mut String, n: &Number) {
    match *n {
        Number::U(v) => out.push_str(&v.to_string()),
        Number::I(v) => out.push_str(&v.to_string()),
        Number::F(f) => {
            if f.is_finite() {
                // Rust's shortest round-trip Display; force a `.0` so the
                // value re-parses as a float.
                let s = f.to_string();
                out.push_str(&s);
                if !s.contains('.') && !s.contains('e') && !s.contains('E') {
                    out.push_str(".0");
                }
            } else {
                // JSON has no Inf/NaN; mirror serde_json's `null`.
                out.push_str("null");
            }
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_writes_compact_json() {
        let v = Value::Object(vec![
            ("a".into(), Value::Number(Number::U(1))),
            ("b".into(), Value::Array(vec![Value::Bool(true), Value::Null])),
        ]);
        assert_eq!(v.to_string(), r#"{"a":1,"b":[true,null]}"#);
    }

    #[test]
    fn floats_keep_a_decimal_point() {
        let mut out = String::new();
        write_number(&mut out, &Number::F(2.0));
        assert_eq!(out, "2.0");
    }

    #[test]
    fn string_escapes() {
        let mut out = String::new();
        write_string(&mut out, "a\"b\\c\nd\u{01}");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn index_returns_null_for_missing() {
        let v = Value::Object(vec![("x".into(), Value::Bool(true))]);
        assert_eq!(v["x"], Value::Bool(true));
        assert_eq!(v["y"], Value::Null);
    }
}
