//! Offline stand-in for `criterion`.
//!
//! Runs each registered benchmark closure for a fixed number of
//! iterations and prints mean wall-clock time per iteration. No
//! statistical analysis, warm-up discard, outlier rejection, or HTML
//! reports — just enough to keep `cargo bench` compiling and producing
//! comparable-order-of-magnitude numbers offline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Re-exported measurement marker (the real crate parameterizes
/// [`BenchmarkGroup`] over it).
pub mod measurement {
    /// Wall-clock time measurement marker.
    pub struct WallTime;
}

/// Prevents the optimizer from discarding a computed value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortizes setup cost. Only the variants the
/// workspace uses are provided; all behave identically here.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration state.
    SmallInput,
    /// Large per-iteration state.
    LargeInput,
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id combining a function name and a parameter display.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function.into(), parameter) }
    }

    /// An id from the parameter display alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

/// Timing harness handed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the configured iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` over fresh inputs produced by `setup`; setup time
    /// is excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// A named set of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many iterations each benchmark runs (the real crate's
    /// sample count; reused here as the iteration count).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for API compatibility; this implementation has no
    /// target measurement window.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; this implementation has no
    /// warm-up phase.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; throughput is not reported.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, id.into_benchmark_id().id), self.sample_size, &mut f);
        self
    }

    /// Runs one parameterized benchmark in this group.
    pub fn bench_with_input<F, I: ?Sized>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id.into_benchmark_id().id), self.sample_size, &mut |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// Throughput annotation (accepted, not reported).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Conversion into [`BenchmarkId`] for `bench_function`-style calls.
pub trait IntoBenchmarkId {
    /// Converts into a [`BenchmarkId`].
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { id: self.to_string() }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { id: self }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, iters: usize, f: &mut F) {
    let mut bencher = Bencher { iters: iters as u64, elapsed: Duration::ZERO };
    f(&mut bencher);
    let per_iter = if bencher.iters == 0 {
        Duration::ZERO
    } else {
        bencher.elapsed / bencher.iters as u32
    };
    println!("bench {label}: {per_iter:?}/iter ({} iters, total {:?})", bencher.iters, bencher.elapsed);
}

/// Benchmark registry and runner.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the default iteration count for subsequently created
    /// groups and benchmarks.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for API compatibility; see [`BenchmarkGroup::measurement_time`].
    pub fn measurement_time(self, _d: Duration) -> Self {
        self
    }

    /// Accepted for API compatibility; see [`BenchmarkGroup::warm_up_time`].
    pub fn warm_up_time(self, _d: Duration) -> Self {
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup { name: name.into(), sample_size, _parent: self }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into_benchmark_id().id, self.sample_size, &mut f);
        self
    }
}

/// Groups benchmark functions under one registration symbol.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates the bench `main` that runs the registered groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_closures() {
        let mut c = Criterion::default().sample_size(3);
        let mut group = c.benchmark_group("g");
        group.sample_size(2).measurement_time(Duration::from_millis(1));
        let mut runs = 0u64;
        group.bench_function("f", |b| b.iter(|| runs += 1));
        group.bench_with_input(BenchmarkId::from_parameter(7), &7u64, |b, &x| {
            b.iter_batched(|| x, |v| v + 1, BatchSize::SmallInput)
        });
        group.finish();
        assert_eq!(runs, 2);
    }
}
