//! # psoram — PS-ORAM: crash-consistent Oblivious RAM on NVM
//!
//! Facade crate re-exporting the whole PS-ORAM workspace. This is the crate a
//! downstream user depends on; the sub-crates can also be used individually.
//!
//! A reproduction of *PS-ORAM: Efficient Crash Consistency Support for
//! Oblivious RAM on NVM* (ISCA 2022). See `DESIGN.md` for the system
//! inventory and `EXPERIMENTS.md` for the paper-vs-measured results.
//!
//! # Quickstart
//!
//! ```
//! use psoram::core::{BlockAddr, OramConfig, PathOram, ProtocolVariant};
//!
//! // A small crash-consistent PS-ORAM over a simulated NVM.
//! let config = OramConfig::small_test();
//! let mut oram = PathOram::new(config, ProtocolVariant::PsOram, 42);
//! oram.write(BlockAddr(3), vec![0xAB; 8]).unwrap();
//! assert_eq!(oram.read(BlockAddr(3)).unwrap(), vec![0xAB; 8]);
//! ```

pub use psoram_cache as cache;
pub use psoram_core as core;
pub use psoram_crypto as crypto;
pub use psoram_energy as energy;
pub use psoram_nvm as nvm;
pub use psoram_system as system;
pub use psoram_trace as trace;
