//! Counters, gauges, and power-of-two histograms with a flat, ordered
//! JSON snapshot.

use std::collections::BTreeMap;

use crate::event::Event;
use crate::json::{format_f64, push_str_literal};

/// A base-2 exponential histogram of `u64` samples.
///
/// Bucket 0 holds only zero; bucket `k >= 1` holds `(2^(k-1), 2^k]`
/// (with `v = 1` also in bucket 1, so bucket 1 is `[1, 2]`). Alongside
/// the histogram tracks count, sum, min, and max exactly, so means stay
/// precise even though the distribution is compressed.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Histogram {
    buckets: BTreeMap<u32, u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Index of the bucket `v` falls into.
    fn bucket_of(v: u64) -> u32 {
        if v == 0 {
            0
        } else {
            64 - (v - 1).leading_zeros().min(63)
        }
    }

    /// Records one sample.
    pub fn observe(&mut self, v: u64) {
        *self.buckets.entry(Self::bucket_of(v)).or_insert(0) += 1;
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample, or 0 when empty.
    pub fn min(&self) -> u64 {
        self.min
    }

    /// Largest sample, or 0 when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of the samples, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Occupied buckets as `(bucket_index, count)`, ascending.
    pub fn buckets(&self) -> impl Iterator<Item = (u32, u64)> + '_ {
        self.buckets.iter().map(|(&k, &v)| (k, v))
    }

    /// Folds `other`'s samples into this histogram.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        for (k, v) in &other.buckets {
            *self.buckets.entry(*k).or_insert(0) += v;
        }
        if self.count == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
    }

    fn write_json(&self, out: &mut String) {
        out.push_str("{\"count\":");
        out.push_str(&self.count.to_string());
        out.push_str(",\"sum\":");
        out.push_str(&self.sum.to_string());
        out.push_str(",\"min\":");
        out.push_str(&self.min.to_string());
        out.push_str(",\"max\":");
        out.push_str(&self.max.to_string());
        out.push_str(",\"mean\":");
        out.push_str(&format_f64(self.mean()));
        out.push_str(",\"buckets\":{");
        for (i, (k, v)) in self.buckets.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_str_literal(out, &k.to_string());
            out.push(':');
            out.push_str(&v.to_string());
        }
        out.push_str("}}");
    }
}

/// Anything that can publish its statistics into a [`MetricsRegistry`].
///
/// Each simulator crate implements this for its `*Stats` structs,
/// unifying the seven ad-hoc stats types behind one flat snapshot.
/// Implementations should namespace every key under `prefix` (the
/// registry's [`MetricsRegistry::key`] helper joins with `.`).
pub trait MetricsSource {
    /// Writes this source's metrics under `prefix` into `reg`.
    fn publish(&self, prefix: &str, reg: &mut MetricsRegistry);
}

/// A deterministic bag of named counters, gauges, and histograms.
///
/// All three namespaces are `BTreeMap`s, so the JSON snapshot is fully
/// ordered and byte-stable: two runs that record the same values render
/// the same document, which is what the golden tests compare.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Joins a prefix and a name with `.`, skipping empty prefixes.
    pub fn key(prefix: &str, name: &str) -> String {
        if prefix.is_empty() {
            name.to_string()
        } else {
            format!("{prefix}.{name}")
        }
    }

    /// Sets counter `name` to `value` (last write wins).
    pub fn set_counter(&mut self, name: &str, value: u64) {
        self.counters.insert(name.to_string(), value);
    }

    /// Adds `delta` to counter `name` (creating it at 0).
    pub fn add_counter(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Sets gauge `name` to `value`.
    pub fn set_gauge(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_string(), value);
    }

    /// Records `sample` into histogram `name` (creating it empty).
    pub fn observe(&mut self, name: &str, sample: u64) {
        self.histograms
            .entry(name.to_string())
            .or_default()
            .observe(sample);
    }

    /// Reads back a counter, if set.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.get(name).copied()
    }

    /// Reads back a gauge, if set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Reads back a histogram, if any samples were recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Publishes `source` under `prefix` (convenience for
    /// [`MetricsSource::publish`]).
    pub fn publish(&mut self, prefix: &str, source: &dyn MetricsSource) {
        source.publish(prefix, self);
    }

    /// Derives standard histograms/counters from a recorded event
    /// stream, under `prefix`:
    ///
    /// * `wpq.occupancy` — queue depth after each accepted push
    /// * `nvm.latency` — per-access bank latency in memory cycles
    /// * `phase.<name>` — per-phase duration in core cycles
    /// * `round.units` — persist units per committed round
    /// * `service.queue_wait` / `service.latency` / `service.batch_size`
    ///   — service front-end queueing, end-to-end latency, and batching
    /// * counters for pushes, rejects, stalls, drains, crashes,
    ///   recoveries, and service enqueues/batches/completions
    pub fn ingest_events(&mut self, prefix: &str, events: &[Event]) {
        for e in events {
            match *e {
                Event::WpqPush { occupancy, .. } => {
                    self.observe(&Self::key(prefix, "wpq.occupancy"), occupancy);
                    self.add_counter(&Self::key(prefix, "wpq.pushes"), 1);
                }
                Event::WpqReject { .. } => {
                    self.add_counter(&Self::key(prefix, "wpq.rejects"), 1);
                }
                Event::WpqStall { .. } => {
                    self.add_counter(&Self::key(prefix, "wpq.stalls"), 1);
                }
                Event::WpqDrain { drained, .. } => {
                    self.add_counter(&Self::key(prefix, "wpq.drained"), drained);
                }
                Event::NvmAccess {
                    arrival, complete, ..
                } => {
                    self.observe(
                        &Self::key(prefix, "nvm.latency"),
                        complete.saturating_sub(arrival),
                    );
                }
                Event::Phase { phase, start, end } => {
                    self.observe(
                        &Self::key(prefix, &format!("phase.{}", phase.label())),
                        end.saturating_sub(start),
                    );
                }
                Event::RoundCommit {
                    data_units,
                    posmap_units,
                    ..
                } => {
                    self.observe(&Self::key(prefix, "round.units"), data_units + posmap_units);
                }
                Event::Crash { .. } => {
                    self.add_counter(&Self::key(prefix, "crashes"), 1);
                }
                Event::Recovery { .. } => {
                    self.add_counter(&Self::key(prefix, "recoveries"), 1);
                }
                Event::FaultDetected { kind, units, .. } => {
                    self.add_counter(
                        &Self::key(prefix, &format!("fault.detected.{}", kind.label())),
                        units.max(1),
                    );
                }
                Event::FaultRepaired {
                    repaired,
                    rolled_back,
                    ..
                } => {
                    self.add_counter(&Self::key(prefix, "fault.repaired"), repaired);
                    self.add_counter(&Self::key(prefix, "fault.rolled_back"), rolled_back);
                }
                Event::LineRetired { .. } => {
                    self.add_counter(&Self::key(prefix, "wear.retired"), 1);
                }
                Event::Poisoned { .. } => {
                    self.add_counter(&Self::key(prefix, "fault.poisoned"), 1);
                }
                Event::ServiceEnqueue { .. } => {
                    self.add_counter(&Self::key(prefix, "service.enqueued"), 1);
                }
                Event::ServiceDequeue { wait_cycles, .. } => {
                    self.observe(&Self::key(prefix, "service.queue_wait"), wait_cycles);
                }
                Event::ServiceBatch { size, .. } => {
                    self.add_counter(&Self::key(prefix, "service.batches"), 1);
                    self.observe(&Self::key(prefix, "service.batch_size"), size);
                }
                Event::ServiceComplete { latency_cycles, .. } => {
                    self.add_counter(&Self::key(prefix, "service.completed"), 1);
                    self.observe(&Self::key(prefix, "service.latency"), latency_cycles);
                }
                Event::AccessStart { .. }
                | Event::AccessEnd { .. }
                | Event::RoundBegin { .. }
                | Event::CacheAccess { .. } => {}
            }
        }
    }

    /// Folds another registry into this one: counters add, gauges take
    /// `other`'s value (last write wins), histograms merge sample-wise.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            self.gauges.insert(k.clone(), *v);
        }
        for (k, h) in &other.histograms {
            self.histograms.entry(k.clone()).or_default().merge(h);
        }
    }

    /// Renders the whole registry as a deterministic, pretty-printed
    /// JSON document (trailing newline included).
    pub fn to_json_string(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n  \"counters\": {");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("    ");
            push_str_literal(&mut out, k);
            out.push_str(": ");
            out.push_str(&v.to_string());
        }
        if !self.counters.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n  \"gauges\": {");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("    ");
            push_str_literal(&mut out, k);
            out.push_str(": ");
            out.push_str(&format_f64(*v));
        }
        if !self.gauges.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n  \"histograms\": {");
        for (i, (k, h)) in self.histograms.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("    ");
            push_str_literal(&mut out, k);
            out.push_str(": ");
            h.write_json(&mut out);
        }
        if !self.histograms.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("}\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::QueueKind;

    #[test]
    fn histogram_buckets_are_powers_of_two() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 1);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 2);
        assert_eq!(Histogram::bucket_of(5), 3);
        assert_eq!(Histogram::bucket_of(u64::MAX), 64);
    }

    #[test]
    fn histogram_tracks_exact_moments() {
        let mut h = Histogram::new();
        for v in [3u64, 9, 0, 12] {
            h.observe(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 24);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 12);
        assert!((h.mean() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn snapshot_is_deterministic_and_ordered() {
        let mut a = MetricsRegistry::new();
        a.set_counter("z.last", 2);
        a.set_counter("a.first", 1);
        a.set_gauge("mid", 0.5);
        a.observe("lat", 7);

        let mut b = MetricsRegistry::new();
        b.observe("lat", 7);
        b.set_gauge("mid", 0.5);
        b.set_counter("a.first", 1);
        b.set_counter("z.last", 2);

        let ja = a.to_json_string();
        assert_eq!(ja, b.to_json_string(), "insertion order must not matter");
        let a_pos = ja.find("a.first").unwrap();
        let z_pos = ja.find("z.last").unwrap();
        assert!(a_pos < z_pos, "keys must come out sorted");
    }

    #[test]
    fn ingest_derives_wpq_depth_histogram() {
        let mut reg = MetricsRegistry::new();
        let events = vec![
            Event::WpqPush {
                queue: QueueKind::Data,
                occupancy: 1,
                capacity: 4,
                cycle: 10,
            },
            Event::WpqPush {
                queue: QueueKind::Data,
                occupancy: 2,
                capacity: 4,
                cycle: 11,
            },
            Event::WpqReject {
                queue: QueueKind::Data,
                capacity: 4,
                cycle: 12,
            },
            Event::WpqStall { cycle: 12 },
        ];
        reg.ingest_events("t", &events);
        assert_eq!(reg.counter("t.wpq.pushes"), Some(2));
        assert_eq!(reg.counter("t.wpq.rejects"), Some(1));
        assert_eq!(reg.counter("t.wpq.stalls"), Some(1));
        assert_eq!(reg.histogram("t.wpq.occupancy").unwrap().max(), 2);
    }

    #[test]
    fn ingest_derives_service_lane_metrics() {
        let mut reg = MetricsRegistry::new();
        let events = vec![
            Event::ServiceEnqueue {
                request: 0,
                shard: 1,
                cycle: 5,
            },
            Event::ServiceBatch {
                shard: 1,
                size: 2,
                cycle: 9,
            },
            Event::ServiceDequeue {
                request: 0,
                shard: 1,
                wait_cycles: 4,
                cycle: 9,
            },
            Event::ServiceComplete {
                request: 0,
                shard: 1,
                latency_cycles: 40,
                cycle: 45,
            },
        ];
        reg.ingest_events("svc", &events);
        assert_eq!(reg.counter("svc.service.enqueued"), Some(1));
        assert_eq!(reg.counter("svc.service.batches"), Some(1));
        assert_eq!(reg.counter("svc.service.completed"), Some(1));
        assert_eq!(reg.histogram("svc.service.queue_wait").unwrap().max(), 4);
        assert_eq!(reg.histogram("svc.service.latency").unwrap().sum(), 40);
        assert_eq!(reg.histogram("svc.service.batch_size").unwrap().max(), 2);
    }

    #[test]
    fn key_joins_with_dot() {
        assert_eq!(MetricsRegistry::key("", "x"), "x");
        assert_eq!(MetricsRegistry::key("a.b", "x"), "a.b.x");
    }
}
