//! # psoram-obsv — unified event tracing & metrics for the PS-ORAM simulator
//!
//! The simulator's statistics used to live in seven ad-hoc structs
//! (`OramStats`, `RingStats`, `EngineStats`, `NvmStats`, `WpqStats`,
//! `CacheStats`, `HierarchyStats`) with no timeline view and no
//! cross-layer correlation. This crate supplies the missing layer:
//!
//! * **[`Event`]** — one typed enum covering every interesting moment in
//!   the pipeline: ORAM access phases, persist-engine rounds, WPQ
//!   enqueue/drain/stall, NVM bank occupancy, cache hits/misses, and
//!   crash/recovery markers, each stamped with *simulated* cycles.
//! * **[`Recorder`]** — the sink trait. [`NoopRecorder`] is the
//!   zero-overhead default; [`RingBufferRecorder`] keeps a bounded,
//!   drop-oldest in-memory ring of events for export.
//! * **[`Tap`]** — the cheap handle components hold. A tap with no
//!   recorder attached never constructs an event (the closure passed to
//!   [`Tap::emit`] is not even called), so observability can never
//!   perturb the simulated numbers.
//! * **[`MetricsRegistry`]** — deterministic counters, gauges, and
//!   power-of-two [`Histogram`]s, unifying the per-crate `*Stats`
//!   structs behind one flat snapshot via the [`MetricsSource`] trait.
//! * **Exporters** — [`chrome_trace_json`] renders recorded events as a
//!   chrome://tracing (`about:tracing` / Perfetto) JSON document;
//!   [`MetricsRegistry::to_json_string`] renders the flat snapshot.
//!
//! The crate is deliberately **dependency-free** (not even serde): it
//! sits underneath `psoram-nvm`, `psoram-cache`, `psoram-core`, and
//! `psoram-system`, and must never create a dependency cycle. Both
//! exporters hand-roll their JSON with deterministic ordering so golden
//! snapshot tests can byte-compare the output.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use psoram_obsv::{Event, Phase, RingBufferRecorder, Tap};
//!
//! let rec = Arc::new(RingBufferRecorder::new(1024));
//! let tap = Tap::attached(rec.clone());
//! tap.set_now(100);
//! tap.emit(|| Event::AccessStart { index: 0, cycle: tap.now() });
//! tap.emit(|| Event::Phase { phase: Phase::LoadPath, start: 100, end: 180 });
//! assert_eq!(rec.events().len(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chrome;
mod event;
mod json;
mod metrics;
mod recorder;
mod tap;

pub use chrome::chrome_trace_json;
pub use event::{AccessKind, CacheLevel, DeviceFaultKind, Event, Phase, QueueKind};
pub use metrics::{Histogram, MetricsRegistry, MetricsSource};
pub use recorder::{NoopRecorder, Recorder, RingBufferRecorder, DEFAULT_RING_CAPACITY};
pub use tap::Tap;
