//! Minimal hand-rolled JSON emission helpers.
//!
//! This crate is dependency-free, so both exporters build their JSON by
//! hand. Output is deterministic: map keys come from `BTreeMap`s or
//! fixed emission order, and floats are rendered with a stable format.

use std::fmt::Write as _;

/// Appends `s` as a JSON string literal (with quotes) to `out`.
pub fn push_str_literal(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Renders an `f64` deterministically.
///
/// Finite values use Rust's shortest round-trip formatting, with a
/// trailing `.0` forced onto integral values so the output is
/// unambiguously a float; non-finite values (invalid JSON otherwise)
/// are rendered as `null`.
pub fn format_f64(v: f64) -> String {
    if !v.is_finite() {
        return "null".to_string();
    }
    let s = format!("{v}");
    if s.contains('.') || s.contains('e') || s.contains('E') {
        s
    } else {
        format!("{s}.0")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        let mut out = String::new();
        push_str_literal(&mut out, "a\"b\\c\n\t\u{1}");
        assert_eq!(out, "\"a\\\"b\\\\c\\n\\t\\u0001\"");
    }

    #[test]
    fn floats_are_stable() {
        assert_eq!(format_f64(1.0), "1.0");
        assert_eq!(format_f64(0.25), "0.25");
        assert_eq!(format_f64(f64::NAN), "null");
        assert_eq!(format_f64(f64::INFINITY), "null");
    }
}
