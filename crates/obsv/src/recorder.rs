//! Event sinks: the [`Recorder`] trait and its two implementations.

use std::collections::VecDeque;
use std::fmt;
use std::sync::Mutex;

use crate::event::Event;

/// A sink for typed simulator events.
///
/// Recorders are shared behind `Arc<dyn Recorder>` and may be hit from
/// several worker threads (each design in a parallel campaign gets its
/// *own* recorder, but the trait stays `Send + Sync` so sharing is
/// sound if a caller chooses to).
///
/// Implementations must be strictly observational: recording an event
/// must never feed back into simulated time or simulated state. The
/// paired-run identity tests (`NoopRecorder` vs `RingBufferRecorder`
/// byte-identical reports) enforce this for the whole pipeline.
pub trait Recorder: Send + Sync + fmt::Debug {
    /// Accept one event. Implementations must not panic on overflow;
    /// bounded sinks drop instead.
    fn record(&self, event: Event);
}

/// The zero-overhead default sink: discards everything.
///
/// A [`crate::Tap`] with no recorder attached short-circuits before the
/// event is even constructed, so in practice `NoopRecorder` only exists
/// to make "explicitly record nothing" expressible in APIs that take a
/// recorder.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    fn record(&self, _event: Event) {}
}

/// A bounded, drop-oldest in-memory event ring.
///
/// Events carry a monotone sequence number internally so consumers can
/// detect loss: when the ring overflows, the oldest events are dropped
/// and [`RingBufferRecorder::dropped`] counts them.
#[derive(Debug)]
pub struct RingBufferRecorder {
    inner: Mutex<RingInner>,
}

#[derive(Debug)]
struct RingInner {
    events: VecDeque<Event>,
    capacity: usize,
    dropped: u64,
}

/// Default ring capacity: enough for a smoke-sized campaign without
/// measurable memory pressure.
pub const DEFAULT_RING_CAPACITY: usize = 1 << 16;

impl RingBufferRecorder {
    /// Creates a ring holding at most `capacity` events (min 1).
    pub fn new(capacity: usize) -> Self {
        RingBufferRecorder {
            inner: Mutex::new(RingInner {
                events: VecDeque::new(),
                capacity: capacity.max(1),
                dropped: 0,
            }),
        }
    }

    /// Snapshot of the retained events, oldest first.
    pub fn events(&self) -> Vec<Event> {
        let inner = self.inner.lock().expect("recorder lock");
        inner.events.iter().copied().collect()
    }

    /// Number of events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().expect("recorder lock").dropped
    }

    /// Number of events currently retained.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("recorder lock").events.len()
    }

    /// Whether the ring holds no events.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Discards all retained events and resets the drop counter.
    pub fn clear(&self) {
        let mut inner = self.inner.lock().expect("recorder lock");
        inner.events.clear();
        inner.dropped = 0;
    }
}

impl Default for RingBufferRecorder {
    fn default() -> Self {
        RingBufferRecorder::new(DEFAULT_RING_CAPACITY)
    }
}

impl Recorder for RingBufferRecorder {
    fn record(&self, event: Event) {
        let mut inner = self.inner.lock().expect("recorder lock");
        if inner.events.len() == inner.capacity {
            inner.events.pop_front();
            inner.dropped += 1;
        }
        inner.events.push_back(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn marker(cycle: u64) -> Event {
        Event::Crash { cycle }
    }

    #[test]
    fn ring_retains_in_order() {
        let rec = RingBufferRecorder::new(8);
        for c in 0..5 {
            rec.record(marker(c));
        }
        let got: Vec<u64> = rec.events().iter().map(|e| e.cycle()).collect();
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
        assert_eq!(rec.dropped(), 0);
    }

    #[test]
    fn ring_drops_oldest_on_overflow() {
        let rec = RingBufferRecorder::new(3);
        for c in 0..10 {
            rec.record(marker(c));
        }
        let got: Vec<u64> = rec.events().iter().map(|e| e.cycle()).collect();
        assert_eq!(got, vec![7, 8, 9]);
        assert_eq!(rec.dropped(), 7);
        assert_eq!(rec.len(), 3);
    }

    #[test]
    fn clear_resets_everything() {
        let rec = RingBufferRecorder::new(2);
        rec.record(marker(1));
        rec.record(marker(2));
        rec.record(marker(3));
        rec.clear();
        assert!(rec.is_empty());
        assert_eq!(rec.dropped(), 0);
    }

    #[test]
    fn zero_capacity_is_clamped() {
        let rec = RingBufferRecorder::new(0);
        rec.record(marker(1));
        assert_eq!(rec.len(), 1);
    }
}
