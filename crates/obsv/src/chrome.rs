//! chrome://tracing JSON exporter.
//!
//! Renders recorded [`Event`] streams as a Trace Event Format document
//! that loads directly in `chrome://tracing` or Perfetto. Each input
//! track (typically one simulated design, or one recorder from a
//! parallel run) becomes its own process (`pid`), and within a track
//! the event kinds are split across well-known threads (`tid`) so the
//! timeline reads as parallel swimlanes:
//!
//! | tid | lane |
//! |-----|------|
//! | 1 | ORAM access pipeline (accesses + phases) |
//! | 2 | persist-engine rounds |
//! | 3 | WPQ (occupancy counter + push/reject/drain/stall markers) |
//! | 4 | cache hierarchy |
//! | 5 | crash / recovery markers |
//! | 6 | service front-end (enqueue/dequeue/batch/complete) |
//! | 16+ch | NVM channel `ch` bank activity |
//!
//! Timestamps (`ts`) are **simulated cycles**, not microseconds; the
//! viewer's time unit label will read "us" but every number on screen
//! is a cycle count. Output is deterministic (insertion order within a
//! track, fixed lane assignment), which the trace-determinism smoke in
//! CI and the golden snapshot test rely on.

use std::fmt::Write as _;

use crate::event::Event;
use crate::json::push_str_literal;

const TID_ACCESS: u32 = 1;
const TID_ROUNDS: u32 = 2;
const TID_WPQ: u32 = 3;
const TID_CACHE: u32 = 4;
const TID_CRASH: u32 = 5;
const TID_SERVICE: u32 = 6;
const TID_NVM_BASE: u32 = 16;

/// Renders `tracks` as a complete chrome://tracing JSON document.
///
/// Each `(name, events)` pair becomes one process; process metadata
/// events give them human-readable names in the viewer. The returned
/// string ends with a newline so it can be written to disk verbatim.
pub fn chrome_trace_json(tracks: &[(String, Vec<Event>)]) -> String {
    let mut out = String::from("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
    let mut first = true;
    for (track_idx, (name, events)) in tracks.iter().enumerate() {
        let pid = track_idx as u32 + 1;
        // Process-name metadata so the viewer labels the swimlane group.
        sep(&mut out, &mut first);
        out.push_str("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":");
        let _ = write!(out, "{pid}");
        out.push_str(",\"tid\":0,\"args\":{\"name\":");
        push_str_literal(&mut out, name);
        out.push_str("}}");
        for e in events {
            sep(&mut out, &mut first);
            write_event(&mut out, pid, e);
        }
    }
    out.push_str("]}\n");
    out
}

fn sep(out: &mut String, first: &mut bool) {
    if *first {
        *first = false;
    } else {
        out.push(',');
    }
}

/// Writes one event object (no trailing comma).
fn write_event(out: &mut String, pid: u32, e: &Event) {
    match *e {
        Event::AccessStart { index, cycle } => instant(
            out,
            pid,
            TID_ACCESS,
            "access_start",
            cycle,
            &[("index", index)],
        ),
        Event::AccessEnd { index, cycle } => instant(
            out,
            pid,
            TID_ACCESS,
            "access_end",
            cycle,
            &[("index", index)],
        ),
        Event::Phase { phase, start, end } => complete(
            out,
            pid,
            TID_ACCESS,
            phase.label(),
            start,
            end.saturating_sub(start),
            &[],
        ),
        Event::RoundBegin { cycle } => instant(out, pid, TID_ROUNDS, "round_begin", cycle, &[]),
        Event::RoundCommit {
            cycle,
            data_units,
            posmap_units,
        } => instant(
            out,
            pid,
            TID_ROUNDS,
            "round_commit",
            cycle,
            &[("data_units", data_units), ("posmap_units", posmap_units)],
        ),
        Event::WpqPush {
            queue,
            occupancy,
            capacity,
            cycle,
        } => {
            // Counter event: the viewer draws queue depth over time.
            let _ = write!(
                out,
                "{{\"name\":\"wpq_{}_depth\",\"ph\":\"C\",\"ts\":{cycle},\"pid\":{pid},\
                 \"tid\":{TID_WPQ},\"args\":{{\"occupancy\":{occupancy},\"capacity\":{capacity}}}}}",
                queue.label()
            );
        }
        Event::WpqReject {
            queue,
            capacity,
            cycle,
        } => {
            let name = format!("wpq_{}_reject", queue.label());
            instant(out, pid, TID_WPQ, &name, cycle, &[("capacity", capacity)]);
        }
        Event::WpqDrain {
            queue,
            drained,
            cycle,
        } => {
            let name = format!("wpq_{}_drain", queue.label());
            instant(out, pid, TID_WPQ, &name, cycle, &[("drained", drained)]);
        }
        Event::WpqStall { cycle } => instant(out, pid, TID_WPQ, "wpq_stall", cycle, &[]),
        Event::NvmAccess {
            kind,
            channel,
            bank,
            arrival,
            complete: done,
        } => {
            let name = format!("nvm_{}", kind.label());
            complete(
                out,
                pid,
                TID_NVM_BASE + channel,
                &name,
                arrival,
                done.saturating_sub(arrival),
                &[("bank", bank as u64)],
            );
        }
        Event::CacheAccess {
            level,
            write,
            cycle,
        } => {
            let name = format!("{}_{}", level.label(), if write { "write" } else { "read" });
            instant(out, pid, TID_CACHE, &name, cycle, &[]);
        }
        Event::Crash { cycle } => instant(out, pid, TID_CRASH, "crash", cycle, &[]),
        Event::Recovery { consistent, cycle } => instant(
            out,
            pid,
            TID_CRASH,
            "recovery",
            cycle,
            &[("consistent", consistent as u64)],
        ),
        Event::FaultDetected { kind, units, cycle } => {
            let name = format!("fault_{}", kind.label());
            instant(out, pid, TID_CRASH, &name, cycle, &[("units", units)]);
        }
        Event::FaultRepaired {
            repaired,
            rolled_back,
            cycle,
        } => instant(
            out,
            pid,
            TID_CRASH,
            "fault_repaired",
            cycle,
            &[("repaired", repaired), ("rolled_back", rolled_back)],
        ),
        Event::LineRetired { line, spare, cycle } => instant(
            out,
            pid,
            TID_CRASH,
            "line_retired",
            cycle,
            &[("line", line), ("spare", spare)],
        ),
        Event::Poisoned { kind, cycle } => {
            let name = format!("poisoned_{}", kind.label());
            instant(out, pid, TID_CRASH, &name, cycle, &[]);
        }
        Event::ServiceEnqueue {
            request,
            shard,
            cycle,
        } => instant(
            out,
            pid,
            TID_SERVICE,
            "svc_enqueue",
            cycle,
            &[("request", request), ("shard", shard as u64)],
        ),
        Event::ServiceDequeue {
            request,
            shard,
            wait_cycles,
            cycle,
        } => {
            // Render the queue wait as a duration ending at dispatch so
            // the viewer shows queueing time vs. service time per shard.
            complete(
                out,
                pid,
                TID_SERVICE,
                "svc_wait",
                cycle.saturating_sub(wait_cycles),
                wait_cycles,
                &[("request", request), ("shard", shard as u64)],
            );
        }
        Event::ServiceBatch { shard, size, cycle } => instant(
            out,
            pid,
            TID_SERVICE,
            "svc_batch",
            cycle,
            &[("shard", shard as u64), ("size", size)],
        ),
        Event::ServiceComplete {
            request,
            shard,
            latency_cycles,
            cycle,
        } => instant(
            out,
            pid,
            TID_SERVICE,
            "svc_complete",
            cycle,
            &[
                ("request", request),
                ("shard", shard as u64),
                ("latency", latency_cycles),
            ],
        ),
    }
}

/// Emits an instant ("i") event with thread scope.
fn instant(out: &mut String, pid: u32, tid: u32, name: &str, ts: u64, args: &[(&str, u64)]) {
    out.push_str("{\"name\":");
    push_str_literal(out, name);
    let _ = write!(
        out,
        ",\"ph\":\"i\",\"s\":\"t\",\"ts\":{ts},\"pid\":{pid},\"tid\":{tid}"
    );
    write_args(out, args);
    out.push('}');
}

/// Emits a complete ("X") duration event.
fn complete(
    out: &mut String,
    pid: u32,
    tid: u32,
    name: &str,
    ts: u64,
    dur: u64,
    args: &[(&str, u64)],
) {
    out.push_str("{\"name\":");
    push_str_literal(out, name);
    let _ = write!(
        out,
        ",\"ph\":\"X\",\"ts\":{ts},\"dur\":{dur},\"pid\":{pid},\"tid\":{tid}"
    );
    write_args(out, args);
    out.push('}');
}

fn write_args(out: &mut String, args: &[(&str, u64)]) {
    if args.is_empty() {
        return;
    }
    out.push_str(",\"args\":{");
    for (i, (k, v)) in args.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_str_literal(out, k);
        let _ = write!(out, ":{v}");
    }
    out.push('}');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{AccessKind, Phase, QueueKind};

    #[test]
    fn empty_input_is_valid_json_skeleton() {
        let doc = chrome_trace_json(&[]);
        assert_eq!(doc, "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[]}\n");
    }

    #[test]
    fn tracks_get_distinct_pids_and_names() {
        let doc = chrome_trace_json(&[
            ("ps-oram".to_string(), vec![Event::Crash { cycle: 5 }]),
            ("baseline".to_string(), vec![]),
        ]);
        assert!(doc.contains("\"args\":{\"name\":\"ps-oram\"}"));
        assert!(doc.contains("\"args\":{\"name\":\"baseline\"}"));
        assert!(doc.contains("\"pid\":1"));
        assert!(doc.contains("\"pid\":2"));
        assert!(doc.ends_with("]}\n"));
    }

    #[test]
    fn phases_render_as_complete_events() {
        let doc = chrome_trace_json(&[(
            "t".to_string(),
            vec![Event::Phase {
                phase: Phase::LoadPath,
                start: 100,
                end: 180,
            }],
        )]);
        assert!(doc.contains("\"name\":\"load_path\""));
        assert!(doc.contains("\"ph\":\"X\",\"ts\":100,\"dur\":80"));
    }

    #[test]
    fn wpq_push_renders_as_counter() {
        let doc = chrome_trace_json(&[(
            "t".to_string(),
            vec![Event::WpqPush {
                queue: QueueKind::Data,
                occupancy: 3,
                capacity: 8,
                cycle: 42,
            }],
        )]);
        assert!(doc.contains("\"name\":\"wpq_data_depth\",\"ph\":\"C\",\"ts\":42"));
        assert!(doc.contains("\"occupancy\":3,\"capacity\":8"));
    }

    #[test]
    fn nvm_lanes_split_by_channel() {
        let doc = chrome_trace_json(&[(
            "t".to_string(),
            vec![Event::NvmAccess {
                kind: AccessKind::Write,
                channel: 2,
                bank: 5,
                arrival: 10,
                complete: 70,
            }],
        )]);
        assert!(doc.contains("\"name\":\"nvm_write\""));
        assert!(doc.contains(&format!("\"tid\":{}", TID_NVM_BASE + 2)));
        assert!(doc.contains("\"args\":{\"bank\":5}"));
    }

    #[test]
    fn service_lane_renders_wait_and_completion() {
        let doc = chrome_trace_json(&[(
            "t".to_string(),
            vec![
                Event::ServiceDequeue {
                    request: 3,
                    shard: 1,
                    wait_cycles: 20,
                    cycle: 50,
                },
                Event::ServiceComplete {
                    request: 3,
                    shard: 1,
                    latency_cycles: 70,
                    cycle: 100,
                },
            ],
        )]);
        assert!(doc.contains("\"name\":\"svc_wait\",\"ph\":\"X\",\"ts\":30,\"dur\":20"));
        assert!(doc.contains(&format!("\"tid\":{TID_SERVICE}")));
        assert!(doc.contains("\"name\":\"svc_complete\""));
        assert!(doc.contains("\"latency\":70"));
    }

    #[test]
    fn output_is_deterministic() {
        let tracks = vec![(
            "t".to_string(),
            vec![
                Event::AccessStart { index: 0, cycle: 1 },
                Event::AccessEnd { index: 0, cycle: 9 },
            ],
        )];
        assert_eq!(chrome_trace_json(&tracks), chrome_trace_json(&tracks));
    }
}
