//! The typed event vocabulary shared by every simulator layer.

use std::fmt;

/// One of the five pipeline phases of an ORAM access (§2 of the paper;
/// steps ① – ⑤ in the controller). Ring ORAM reuses the same vocabulary
/// minus [`Phase::CheckStash`], which it never reaches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Phase {
    /// Step ①: probe the on-chip stash for the requested block.
    CheckStash,
    /// Step ②: position-map lookup and remap.
    PosMap,
    /// Step ③: read the tree path (or one slot per bucket for Ring).
    LoadPath,
    /// Step ④: insert/update the block in the stash.
    UpdateStash,
    /// Step ⑤: eviction / path write-back (through the WPQ when the
    /// design is persistent).
    Eviction,
}

impl Phase {
    /// Stable lowercase label used by the exporters.
    pub fn label(self) -> &'static str {
        match self {
            Phase::CheckStash => "check_stash",
            Phase::PosMap => "posmap",
            Phase::LoadPath => "load_path",
            Phase::UpdateStash => "update_stash",
            Phase::Eviction => "eviction",
        }
    }
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Which of the two WPQ queues inside the persistence domain an event
/// refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum QueueKind {
    /// The data-block write-pending queue.
    Data,
    /// The position-map flush queue.
    PosMap,
}

impl QueueKind {
    /// Stable lowercase label used by the exporters.
    pub fn label(self) -> &'static str {
        match self {
            QueueKind::Data => "data",
            QueueKind::PosMap => "posmap",
        }
    }
}

/// Direction of an NVM channel access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AccessKind {
    /// Array read.
    Read,
    /// Array write.
    Write,
}

impl AccessKind {
    /// Stable lowercase label used by the exporters.
    pub fn label(self) -> &'static str {
        match self {
            AccessKind::Read => "read",
            AccessKind::Write => "write",
        }
    }
}

/// Where in the hierarchy a cache access resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CacheLevel {
    /// Hit in the L1 data cache.
    L1,
    /// Miss in L1, hit in the unified L2.
    L2,
    /// Missed the whole hierarchy; goes to (ORAM-protected) memory.
    Memory,
}

impl CacheLevel {
    /// Stable label used by the exporters.
    pub fn label(self) -> &'static str {
        match self {
            CacheLevel::L1 => "l1",
            CacheLevel::L2 => "l2",
            CacheLevel::Memory => "memory",
        }
    }
}

/// Device-fault classification carried by the fault/recovery events.
///
/// Mirrors `psoram-nvm`'s `FaultClass`; duplicated here because this
/// crate sits *below* `psoram-nvm` in the dependency graph and must stay
/// dependency-free.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DeviceFaultKind {
    /// An ADR drain tore mid-batch.
    TornFlush,
    /// A drainer end signal was dropped (whole round lost).
    SignalLoss,
    /// A drainer end signal was duplicated (round replayed).
    DuplicatedSignal,
    /// Media bit rot / interrupted cell programming.
    MediaCorruption,
    /// A media read failed (transiently or stuck).
    TransientRead,
    /// A stale-but-authentic unit was re-served (freshness replay).
    StaleReplay,
    /// An authentic unit was relocated across addresses (splice).
    CrossSplice,
    /// A media line exhausted its cell budget (wear-out stuck-at).
    WearOut,
}

impl DeviceFaultKind {
    /// Stable lowercase label used by the exporters.
    pub fn label(self) -> &'static str {
        match self {
            DeviceFaultKind::TornFlush => "torn_flush",
            DeviceFaultKind::SignalLoss => "signal_loss",
            DeviceFaultKind::DuplicatedSignal => "duplicated_signal",
            DeviceFaultKind::MediaCorruption => "media_corruption",
            DeviceFaultKind::TransientRead => "transient_read",
            DeviceFaultKind::StaleReplay => "stale_replay",
            DeviceFaultKind::CrossSplice => "cross_splice",
            DeviceFaultKind::WearOut => "wear_out",
        }
    }
}

impl fmt::Display for DeviceFaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A single typed observation, stamped with **simulated** cycles.
///
/// Component ownership of the cycle domain:
///
/// * ORAM controller events (`Access*`, `Phase`, `Round*`, `Wpq*`,
///   `Crash`, `Recovery`) carry *core* cycles from the controller clock.
/// * [`Event::NvmAccess`] carries *memory* cycles straight from the bank
///   scheduler (`arrival` → `complete`).
/// * [`Event::CacheAccess`] carries the driving system's core clock.
///
/// Stamps are monotone per component but the domains are not mutually
/// ordered; the chrome exporter places each component on its own track.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// An ORAM access entered the pipeline.
    AccessStart {
        /// Zero-based access index (the controller's attempt counter).
        index: u64,
        /// Core-cycle arrival time.
        cycle: u64,
    },
    /// The access's value became available (end of step ④; eviction may
    /// still be in flight behind the ADR boundary).
    AccessEnd {
        /// Matches the `index` of the corresponding `AccessStart`.
        index: u64,
        /// Core cycle at which the value was ready.
        cycle: u64,
    },
    /// One pipeline phase of the current access, as a closed interval.
    Phase {
        /// Which step of the access pipeline.
        phase: Phase,
        /// Core cycle at which the phase began.
        start: u64,
        /// Core cycle at which the phase completed (`end >= start`).
        end: u64,
    },
    /// The persist engine opened an eviction round (drainer *start*
    /// signal, §4.2).
    RoundBegin {
        /// Core cycle when the round opened.
        cycle: u64,
    },
    /// The persist engine committed a round (drainer *end* signal);
    /// everything pushed since `RoundBegin` is now ADR-durable.
    RoundCommit {
        /// Core cycle when the round committed.
        cycle: u64,
        /// Data-queue entries committed by this round.
        data_units: u64,
        /// PosMap-queue entries committed by this round.
        posmap_units: u64,
    },
    /// An entry was accepted into a WPQ batch.
    WpqPush {
        /// Which queue accepted the entry.
        queue: QueueKind,
        /// Total occupancy (committed + open) *after* the push.
        occupancy: u64,
        /// Queue capacity, for depth-invariant checks.
        capacity: u64,
        /// Core cycle of the push.
        cycle: u64,
    },
    /// A push was rejected because the queue was full.
    WpqReject {
        /// Which queue rejected the entry.
        queue: QueueKind,
        /// Queue capacity at the time of rejection.
        capacity: u64,
        /// Core cycle of the rejection.
        cycle: u64,
    },
    /// Committed entries were drained from a WPQ to the NVM array.
    WpqDrain {
        /// Which queue drained.
        queue: QueueKind,
        /// Number of entries drained.
        drained: u64,
        /// Core cycle of the drain.
        cycle: u64,
    },
    /// The controller stalled an eviction waiting for WPQ space.
    WpqStall {
        /// Core cycle when the stall was charged.
        cycle: u64,
    },
    /// One scheduled access on an NVM bank, in **memory** cycles.
    NvmAccess {
        /// Read or write.
        kind: AccessKind,
        /// Channel index.
        channel: u32,
        /// Bank index within the channel.
        bank: u32,
        /// Memory cycle the request arrived at the controller.
        arrival: u64,
        /// Memory cycle the bank completed it (`complete >= arrival`).
        complete: u64,
    },
    /// One access into the cache hierarchy and where it resolved.
    CacheAccess {
        /// The level that satisfied the access.
        level: CacheLevel,
        /// Whether the access was a store.
        write: bool,
        /// Core cycle of the access (the driving system's clock).
        cycle: u64,
    },
    /// A (simulated) power failure struck.
    Crash {
        /// Core cycle of the crash.
        cycle: u64,
    },
    /// A recovery pass (§4.3) finished.
    Recovery {
        /// Whether the recovered state passed its consistency check.
        consistent: bool,
        /// Core cycle at which recovery completed.
        cycle: u64,
    },
    /// Recovery (or a guarded read) detected device-level damage.
    FaultDetected {
        /// What kind of damage was classified.
        kind: DeviceFaultKind,
        /// Persist units (slots / map entries) found damaged.
        units: u64,
        /// Core cycle of the detection.
        cycle: u64,
    },
    /// A recovery pass finished its repair stage.
    FaultRepaired {
        /// Addresses whose committed value survived via a redundant copy.
        repaired: u64,
        /// Addresses rolled back or forgotten (detected, unrepairable).
        rolled_back: u64,
        /// Core cycle at which the repair stage completed.
        cycle: u64,
    },
    /// A worn-out media line was retired onto a spare and its content
    /// repaired from the redundant copy (crash-consistent: the remap
    /// becomes durable at the next commit round).
    LineRetired {
        /// The convicted physical line.
        line: u64,
        /// The spare line now serving its address.
        spare: u64,
        /// Core cycle of the retirement.
        cycle: u64,
    },
    /// The controller latched fail-safe poisoned state: damage it can
    /// neither repair nor retry past. Every subsequent access errors.
    Poisoned {
        /// The fault class that forced the fail-safe.
        kind: DeviceFaultKind,
        /// Core cycle of the poisoning.
        cycle: u64,
    },
    /// A client request arrived in a shard's service queue (service
    /// front-end lane; see `psoram-service`).
    ServiceEnqueue {
        /// Global request id.
        request: u64,
        /// Shard the router mapped the request to.
        shard: u32,
        /// Core cycle of the arrival (open-loop schedule time).
        cycle: u64,
    },
    /// A queued request was handed to its shard worker; `wait_cycles` is
    /// the time spent queued (dispatch − arrival).
    ServiceDequeue {
        /// Global request id.
        request: u64,
        /// Shard that dequeued the request.
        shard: u32,
        /// Cycles the request waited in the queue before dispatch.
        wait_cycles: u64,
        /// Core cycle of the dispatch.
        cycle: u64,
    },
    /// A shard worker dispatched one batch of queued requests
    /// back-to-back.
    ServiceBatch {
        /// Shard that formed the batch.
        shard: u32,
        /// Requests in the batch.
        size: u64,
        /// Core cycle of the batch dispatch.
        cycle: u64,
    },
    /// A request completed end-to-end; `latency_cycles` is completion −
    /// arrival (queueing plus service time).
    ServiceComplete {
        /// Global request id.
        request: u64,
        /// Shard that served the request.
        shard: u32,
        /// End-to-end latency in core cycles.
        latency_cycles: u64,
        /// Core cycle of the completion.
        cycle: u64,
    },
}

impl Event {
    /// The primary cycle stamp of the event (interval events report
    /// their start).
    pub fn cycle(&self) -> u64 {
        match *self {
            Event::AccessStart { cycle, .. }
            | Event::AccessEnd { cycle, .. }
            | Event::RoundBegin { cycle }
            | Event::RoundCommit { cycle, .. }
            | Event::WpqPush { cycle, .. }
            | Event::WpqReject { cycle, .. }
            | Event::WpqDrain { cycle, .. }
            | Event::WpqStall { cycle }
            | Event::CacheAccess { cycle, .. }
            | Event::Crash { cycle }
            | Event::Recovery { cycle, .. }
            | Event::FaultDetected { cycle, .. }
            | Event::FaultRepaired { cycle, .. }
            | Event::LineRetired { cycle, .. }
            | Event::Poisoned { cycle, .. }
            | Event::ServiceEnqueue { cycle, .. }
            | Event::ServiceDequeue { cycle, .. }
            | Event::ServiceBatch { cycle, .. }
            | Event::ServiceComplete { cycle, .. } => cycle,
            Event::Phase { start, .. } => start,
            Event::NvmAccess { arrival, .. } => arrival,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_stable() {
        assert_eq!(Phase::CheckStash.label(), "check_stash");
        assert_eq!(Phase::Eviction.to_string(), "eviction");
        assert_eq!(QueueKind::PosMap.label(), "posmap");
        assert_eq!(AccessKind::Write.label(), "write");
        assert_eq!(CacheLevel::Memory.label(), "memory");
    }

    #[test]
    fn cycle_picks_interval_start() {
        let e = Event::Phase {
            phase: Phase::LoadPath,
            start: 7,
            end: 19,
        };
        assert_eq!(e.cycle(), 7);
        let n = Event::NvmAccess {
            kind: AccessKind::Read,
            channel: 0,
            bank: 3,
            arrival: 40,
            complete: 90,
        };
        assert_eq!(n.cycle(), 40);
    }
}
