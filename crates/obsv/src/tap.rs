//! The [`Tap`] handle that simulator components hold.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::event::Event;
use crate::recorder::Recorder;

/// A cheap, cloneable observation point.
///
/// Components store a `Tap` and call [`Tap::emit`] at interesting
/// moments. Two properties make this safe to leave in hot paths:
///
/// * **Detached is free.** With no recorder attached the closure passed
///   to `emit` is never invoked, so no event is even constructed. The
///   paired-run identity tests rely on this: attaching a recorder must
///   not change a single simulated number, only *observe* them.
/// * **Clones share a clock.** Cloning a `Tap` shares both the recorder
///   and the "now" cell, so a controller can stamp the current simulated
///   cycle once ([`Tap::set_now`]) and every sub-component (WPQ, persist
///   engine) it handed a clone to stamps its events consistently.
///
/// `Default` yields a detached tap with a fresh clock cell, so adding a
/// `Tap` field to an existing struct changes none of its behavior.
#[derive(Debug, Clone, Default)]
pub struct Tap {
    recorder: Option<Arc<dyn Recorder>>,
    now: Arc<AtomicU64>,
}

impl Tap {
    /// A tap wired to `recorder`, with a fresh clock cell at cycle 0.
    pub fn attached(recorder: Arc<dyn Recorder>) -> Self {
        Tap {
            recorder: Some(recorder),
            now: Arc::new(AtomicU64::new(0)),
        }
    }

    /// A detached tap (same as `Default`, spelled out for call sites).
    pub fn detached() -> Self {
        Tap::default()
    }

    /// Whether a recorder is attached (i.e. `emit` will do work).
    pub fn is_attached(&self) -> bool {
        self.recorder.is_some()
    }

    /// Records the event built by `f`, or does nothing when detached.
    ///
    /// The closure is only evaluated when a recorder is attached, so
    /// arbitrary event-construction work in the closure costs nothing
    /// on the detached path.
    #[inline]
    pub fn emit(&self, f: impl FnOnce() -> Event) {
        if let Some(rec) = &self.recorder {
            rec.record(f());
        }
    }

    /// Publishes the current simulated cycle to every clone of this tap.
    #[inline]
    pub fn set_now(&self, cycle: u64) {
        self.now.store(cycle, Ordering::Relaxed);
    }

    /// The most recently published simulated cycle.
    #[inline]
    pub fn now(&self) -> u64 {
        self.now.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::RingBufferRecorder;

    #[test]
    fn detached_tap_never_builds_the_event() {
        let tap = Tap::detached();
        let mut built = false;
        tap.emit(|| {
            built = true;
            Event::Crash { cycle: 0 }
        });
        assert!(!built, "closure must not run on a detached tap");
        assert!(!tap.is_attached());
    }

    #[test]
    fn clones_share_recorder_and_clock() {
        let rec = Arc::new(RingBufferRecorder::new(16));
        let tap = Tap::attached(rec.clone());
        let clone = tap.clone();
        tap.set_now(42);
        assert_eq!(clone.now(), 42);
        clone.emit(|| Event::Crash { cycle: clone.now() });
        let events = rec.events();
        assert_eq!(events, vec![Event::Crash { cycle: 42 }]);
        assert!(tap.is_attached());
    }
}
