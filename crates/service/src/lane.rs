//! The shard worker's execution target: one independent persistence
//! domain serving one address range.
//!
//! A lane is either a bare [`ShardController`] (the controller-level
//! model the fault campaigns use) or a full [`System`] instance — its
//! own cache hierarchy, NVM channels, and ORAM backend — built from
//! [`SystemConfig::for_shard`]. Both expose the same tiny surface to the
//! scheduler: serve one access for a cycle cost, crash-and-recover in
//! place, verify at the end.

use std::sync::Arc;

use psoram_core::{
    Op, OramConfig, OramError, PathOram, ProtocolPolicy, ProtocolVariant, ShardController,
    ShardRange,
};
use psoram_obsv::Recorder;
use psoram_system::{System, SystemConfig};
use serde::{Deserialize, Serialize};

/// Which execution model backs each shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LaneKind {
    /// A bare crash-consistent controller per shard: fastest, and the
    /// model the fault campaigns and benches compare against.
    Controller,
    /// A full per-shard memory hierarchy (caches + NVM + ORAM backend)
    /// instantiated via [`SystemConfig::for_shard`].
    FullSystem,
}

impl LaneKind {
    /// Stable label used in reports and CLI flags.
    pub fn label(self) -> &'static str {
        match self {
            LaneKind::Controller => "controller",
            LaneKind::FullSystem => "full-system",
        }
    }
}

/// One shard's server: the worker-side execution target.
pub enum ShardServer {
    /// A bare controller session.
    Controller(ShardController),
    /// A full system; global addresses are translated to shard-local
    /// byte addresses before entering the hierarchy.
    System {
        /// The per-shard system instance.
        sys: Box<System>,
        /// Global address range this shard owns.
        range: ShardRange,
        /// Bytes per logical block (local block → byte address).
        block_bytes: u64,
    },
}

impl std::fmt::Debug for ShardServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardServer::Controller(c) => f.debug_tuple("Controller").field(c).finish(),
            ShardServer::System { range, .. } => {
                f.debug_struct("System").field("range", range).finish()
            }
        }
    }
}

impl ShardServer {
    /// Builds the server for one shard: its own controller (or full
    /// system) seeded independently of every sibling.
    pub fn build(
        kind: LaneKind,
        variant: ProtocolVariant,
        levels: u32,
        range: ShardRange,
        seed: u64,
        shard: u32,
    ) -> ShardServer {
        let oram_cfg = OramConfig::small_test().with_levels(levels);
        match kind {
            LaneKind::Controller => {
                let oram = PathOram::new(oram_cfg, variant, seed);
                ShardServer::Controller(ShardController::new(Box::new(oram), range))
            }
            LaneKind::FullSystem => {
                let mut sc = SystemConfig::quick_test(variant, 1);
                sc.oram = oram_cfg;
                sc.use_oram = true;
                sc.seed = seed;
                let sc = sc.for_shard(shard);
                let block_bytes = sc.oram.block_bytes as u64;
                assert!(
                    range.len() <= sc.oram.capacity_blocks(),
                    "shard range {range} exceeds system ORAM capacity"
                );
                ShardServer::System {
                    sys: Box::new(System::new(sc)),
                    range,
                    block_bytes,
                }
            }
        }
    }

    /// Serves one access at global address `addr`, returning the
    /// controller-clock cycles it cost and, for controller lanes, the
    /// block value (for read-your-writes checking).
    ///
    /// # Errors
    ///
    /// Propagates routing and controller errors from the underlying
    /// [`ShardController`]; full-system lanes are infallible (the
    /// hierarchy absorbs the access).
    pub fn serve(
        &mut self,
        op: Op,
        addr: u64,
        fill: u8,
    ) -> Result<(u64, Option<Vec<u8>>), OramError> {
        match self {
            ShardServer::Controller(shard) => {
                let payload_bytes = shard.policy().payload_bytes();
                let data = match op {
                    Op::Write => Some(vec![fill; payload_bytes]),
                    Op::Read => None,
                };
                let step = shard.step(op, addr, data)?;
                Ok((step.service_cycles, Some(step.value)))
            }
            ShardServer::System {
                sys,
                range,
                block_bytes,
            } => {
                let local = range.to_local(addr);
                let before = sys.clock();
                sys.access(local * *block_bytes, op == Op::Write);
                Ok((sys.clock().saturating_sub(before), None))
            }
        }
    }

    /// Injects a power failure on this shard only and immediately runs
    /// the hardened recovery path. Returns whether recovery reported a
    /// consistent state and the controller-clock cycles it consumed
    /// (often zero — the scheduler layers its modeled reboot penalty on
    /// top).
    pub fn crash_and_recover(&mut self) -> (bool, u64) {
        match self {
            ShardServer::Controller(shard) => {
                shard.crash_now();
                let (report, cycles) = shard.recover();
                (report.consistent, cycles)
            }
            ShardServer::System { sys, .. } => {
                let oram = sys
                    .oram_mut()
                    .expect("full-system lane always carries an ORAM backend");
                oram.crash_now();
                let before = oram.clock();
                let report = oram.recover();
                let cycles = oram.clock().saturating_sub(before);
                (report.consistent, cycles)
            }
        }
    }

    /// Arms the endurance adversary on this shard only: a wear-only
    /// device fault plan (wear-correlated media faults, every crash-fate
    /// probability zero) plus the wear engine itself, both seeded from
    /// `seed` with the same sub-stream discipline as the faultsim wear
    /// fleet. Sibling shards stay byte-identical to a wear-free run.
    pub fn arm_wear(&mut self, seed: u64, cfg: psoram_nvm::WearConfig) {
        match self {
            ShardServer::Controller(shard) => {
                let p = shard.policy_mut();
                p.enable_device_faults(seed ^ 0x0EA4, psoram_nvm::FaultConfig::wear_only());
                p.enable_wear(seed ^ 0x0EA5, cfg);
            }
            ShardServer::System { sys, .. } => {
                let oram = sys
                    .oram_mut()
                    .expect("full-system lane always carries an ORAM backend");
                oram.enable_device_faults(seed ^ 0x0EA4, psoram_nvm::FaultConfig::wear_only());
                oram.enable_wear(seed ^ 0x0EA5, cfg);
            }
        }
    }

    /// Wear/leveling counters of the armed endurance adversary, `None`
    /// when [`ShardServer::arm_wear`] was never called on this shard.
    pub fn wear_stats(&self) -> Option<psoram_nvm::WearStats> {
        match self {
            ShardServer::Controller(shard) => shard.policy().wear_stats(),
            ShardServer::System { sys, .. } => sys.oram().and_then(|o| o.wear_stats()),
        }
    }

    /// Ground-truth injection counters of the device fault plan, if any.
    pub fn device_fault_stats(&self) -> Option<psoram_nvm::FaultStats> {
        match self {
            ShardServer::Controller(shard) => shard.policy().device_fault_stats(),
            ShardServer::System { sys, .. } => sys.oram().and_then(|o| o.device_fault_stats()),
        }
    }

    /// Spare lines the retirement layer still holds.
    pub fn wear_spares_left(&self) -> Option<u64> {
        match self {
            ShardServer::Controller(shard) => shard.policy().wear_spares_left(),
            ShardServer::System { sys, .. } => sys.oram().and_then(|o| o.wear_spares_left()),
        }
    }

    /// Attaches an event recorder to the underlying controller/system so
    /// persist-domain events land in the same sink as the service-lane
    /// events.
    pub fn attach_recorder(&mut self, recorder: Arc<dyn Recorder>) {
        match self {
            ShardServer::Controller(shard) => shard.policy_mut().attach_recorder(recorder),
            ShardServer::System { sys, .. } => sys.set_recorder(recorder),
        }
    }

    /// End-of-run contents check against the controller's mirror.
    pub fn verify(&mut self, after_crash: bool) -> bool {
        match self {
            ShardServer::Controller(shard) => {
                shard.policy_mut().verify_contents(after_crash).is_ok()
            }
            ShardServer::System { sys, .. } => match sys.oram_mut() {
                Some(oram) => oram.verify_contents(after_crash).is_ok(),
                None => true,
            },
        }
    }

    /// The underlying controller/system clock.
    pub fn clock(&self) -> u64 {
        match self {
            ShardServer::Controller(shard) => shard.clock(),
            ShardServer::System { sys, .. } => sys.clock(),
        }
    }

    /// The shard's final state digest, for cross-run identity checks.
    pub fn state_digest(&self) -> u128 {
        match self {
            ShardServer::Controller(shard) => shard.policy().state_digest(),
            ShardServer::System { sys, .. } => sys.oram().map(|o| o.state_digest()).unwrap_or(0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn range() -> ShardRange {
        ShardRange { lo: 10, hi: 40 }
    }

    #[test]
    fn controller_lane_serves_and_checks_values() {
        let mut s = ShardServer::build(
            LaneKind::Controller,
            ProtocolVariant::PsOram,
            6,
            range(),
            99,
            0,
        );
        let (wc, _) = s.serve(Op::Write, 12, 0xAB).unwrap();
        assert!(wc > 0);
        let (_, val) = s.serve(Op::Read, 12, 0).unwrap();
        let val = val.unwrap();
        assert!(val.iter().all(|&b| b == 0xAB));
        assert!(s.verify(false));
    }

    #[test]
    fn full_system_lane_serves_and_recovers() {
        let mut s = ShardServer::build(
            LaneKind::FullSystem,
            ProtocolVariant::PsOram,
            6,
            range(),
            7,
            2,
        );
        let (c0, _) = s.serve(Op::Write, 11, 1).unwrap();
        assert!(c0 > 0, "a system access must advance the system clock");
        let (consistent, _) = s.crash_and_recover();
        assert!(consistent);
        assert!(s.verify(true));
        assert!(s.state_digest() != 0);
    }

    #[test]
    fn crash_and_recover_is_local_and_consistent() {
        let mut s = ShardServer::build(
            LaneKind::Controller,
            ProtocolVariant::PsOram,
            6,
            range(),
            5,
            1,
        );
        for a in 10..20u64 {
            s.serve(Op::Write, a, a as u8).unwrap();
        }
        let (consistent, _) = s.crash_and_recover();
        assert!(consistent);
        let (_, val) = s.serve(Op::Read, 15, 0).unwrap();
        assert!(val.unwrap().iter().all(|&b| b == 15));
    }
}
