//! The request-queue/worker scheduler: route, batch, execute, collect.
//!
//! [`run_service`] turns one seeded open-loop schedule into a
//! [`ServiceReport`]:
//!
//! 1. **Route.** Every request maps to exactly one shard through the
//!    [`AddressPartition`]; per-shard queues preserve global arrival
//!    order, so per-address program order survives routing.
//! 2. **Execute.** Each shard queue runs on the `psoram-faultsim`
//!    deterministic worker pool ([`par_map`]): per-shard seeds,
//!    input-order collection. A lane is a *virtual-time* simulation —
//!    the worker advances a lane clock by batching overhead, controller
//!    service cycles, and (when a [`ShardCrashPlan`] strikes) recovery
//!    plus a modeled reboot penalty. Nothing reads the wall clock, so
//!    the report is byte-identical at any `jobs` count.
//! 3. **Collect.** Completions merge in shard order; latencies sort;
//!    the collector computes p50/p95/p99 and per-shard and aggregate
//!    throughput.

use std::sync::Arc;

use psoram_core::{Op, ProtocolVariant};
use psoram_faultsim::par_map;
use psoram_nvm::{WearConfig, WearScheme};
use psoram_obsv::{Event, Recorder, RingBufferRecorder};

use crate::lane::{LaneKind, ShardServer};
use crate::partition::AddressPartition;
use crate::report::{
    AggregateReport, LatencySummary, ServiceReport, ShardLaneReport, WearLaneEvidence,
};
use crate::request::{open_loop_schedule, AccessRequest, Completion, CORE_HZ};

/// Fixed dispatch overhead charged once per batch (queue pop, address
/// translation, MAC context setup for the batch).
pub const BATCH_DISPATCH_CYCLES: u64 = 64;

/// Modeled reboot penalty charged to a lane when its shard crashes:
/// power-cycle plus firmware re-init before `recover()` can even run.
/// The controllers account recovery work outside the access clock, so
/// the scheduler owns making crashes *cost* something in lane time.
pub const RECOVERY_REBOOT_CYCLES: u64 = 100_000;

/// Strike plan for one shard: crash it after it has completed
/// `after_requests` requests, then recover through the ordinary
/// hardened path while sibling shards keep serving.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardCrashPlan {
    /// The shard to strike.
    pub shard: u32,
    /// Completed-request count on that shard that triggers the crash.
    pub after_requests: u64,
}

/// Endurance plan for one shard: run it as a near-end-of-life device —
/// pre-aged lines, tiny cell budgets, wear-correlated media faults —
/// while every sibling serves from healthy silicon.
///
/// The degraded shard must *stay up*: transient faults retry, convicted
/// lines retire onto spares and repair from the redundant copy, and the
/// cost of all of that shows up in the lane's latency numbers and (with
/// `trace`) as `LineRetired`/`FaultDetected` events. The spare pool is
/// sized generously (`wear_config` uses 64 spares) because a service
/// shard, unlike a faultsim campaign target, is never allowed to poison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WearShardPlan {
    /// The shard that serves from worn silicon.
    pub shard: u32,
    /// The leveling/retirement design point. [`WearScheme::Remap`] is
    /// the scheme that can actually retire convicted lines; `StartGap`
    /// and `None` survive only as long as no line exhausts its budget.
    pub scheme: WearScheme,
    /// Uniform pre-aging: writes every line already carries at boot
    /// (models years of prior service without simulating them).
    pub preage_writes: u64,
}

impl WearShardPlan {
    /// A near-EOL smoke plan: Remap scheme, lines pre-aged to ~75% of
    /// the stress budget so retirements fire within a few hundred
    /// requests.
    pub fn near_eol(shard: u32) -> Self {
        WearShardPlan {
            shard,
            scheme: WearScheme::Remap,
            preage_writes: 384,
        }
    }

    /// The wear engine configuration this plan arms: the campaign
    /// stress point (tiny budgets so wear is observable in a short run)
    /// with a service-sized spare pool.
    pub fn wear_config(&self) -> WearConfig {
        WearConfig {
            spare_lines: 64,
            preage_writes: self.preage_writes,
            ..WearConfig::stress(self.scheme)
        }
    }
}

/// Full configuration for one service run.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Number of shards (independent persistence domains).
    pub shards: u32,
    /// Number of simulated open-loop clients.
    pub clients: u32,
    /// Aggregate arrival rate, requests per second.
    pub arrival_rate: u64,
    /// Total requests in the run.
    pub requests: u64,
    /// Maximum requests dispatched per batch.
    pub batch_size: usize,
    /// ORAM tree levels per shard.
    pub levels: u32,
    /// Protocol variant backing every shard.
    pub variant: ProtocolVariant,
    /// Schedule and shard seed.
    pub seed: u64,
    /// Execution model per shard.
    pub lane: LaneKind,
    /// Optional mid-load crash on one shard.
    pub crash: Option<ShardCrashPlan>,
    /// Optional endurance adversary on one shard.
    pub wear: Option<WearShardPlan>,
    /// Record service-lane and persist-domain events.
    pub trace: bool,
}

impl ServiceConfig {
    /// The CI smoke configuration: small, fast, still 4 shards. The
    /// arrival rate deliberately exceeds one controller's service
    /// capacity so the single-shard baseline saturates.
    pub fn smoke() -> Self {
        ServiceConfig {
            shards: 4,
            clients: 8,
            arrival_rate: 600_000,
            requests: 2_000,
            batch_size: 8,
            levels: 10,
            variant: ProtocolVariant::PsOram,
            seed: 0x5EED,
            lane: LaneKind::Controller,
            crash: None,
            wear: None,
            trace: false,
        }
    }

    /// The bench configuration (BENCH_06): the paper's L=12 geometry at
    /// an arrival rate well past one controller's service capacity
    /// (~230k acc/s at L=12), so the single-shard baseline saturates
    /// and the sharded front-end's aggregate gain is visible.
    pub fn bench() -> Self {
        ServiceConfig {
            shards: 4,
            clients: 32,
            arrival_rate: 600_000,
            requests: 20_000,
            batch_size: 8,
            levels: 12,
            variant: ProtocolVariant::PsOram,
            seed: 0x5EED,
            lane: LaneKind::Controller,
            crash: None,
            wear: None,
            trace: false,
        }
    }

    /// Per-shard geometry: every shard gets the same tree.
    pub fn per_shard_capacity(&self) -> u64 {
        psoram_core::OramConfig::small_test()
            .with_levels(self.levels)
            .capacity_blocks()
    }

    /// Total logical address space served by the front-end.
    pub fn capacity(&self) -> u64 {
        self.per_shard_capacity() * self.shards as u64
    }

    /// The router's address partition.
    pub fn partition(&self) -> AddressPartition {
        AddressPartition::new(self.capacity(), self.shards)
    }

    /// Shard `shard`'s independent seed (golden-ratio mix of the run
    /// seed — same discipline as `SystemConfig::for_shard` and the
    /// fleet campaign).
    pub fn shard_seed(&self, shard: u32) -> u64 {
        self.seed
            .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(shard as u64 + 1))
    }
}

/// The result of [`run_service`]: the collector's report plus, when
/// tracing was on, the merged event stream (service-lane events
/// interleaved with each shard's persist-domain events, ordered by
/// shard then capture order).
#[derive(Debug)]
pub struct ServiceOutcome {
    /// The deterministic service report.
    pub report: ServiceReport,
    /// Captured events (empty unless `cfg.trace`).
    pub events: Vec<Event>,
}

struct LaneOutcome {
    completions: Vec<Completion>,
    report: ShardLaneReport,
    events: Vec<Event>,
}

/// Deterministic write fill byte for a request: reads assert the last
/// written fill, giving the service an end-to-end read-your-writes
/// check on every single request.
fn fill_byte(r: &AccessRequest) -> u8 {
    (r.addr as u8) ^ (r.id as u8) | 1
}

fn run_lane(cfg: &ServiceConfig, shard: u32, queue: Vec<AccessRequest>) -> LaneOutcome {
    let partition = cfg.partition();
    let range = partition.range_of(shard);
    let mut server = ShardServer::build(
        cfg.lane,
        cfg.variant,
        cfg.levels,
        range,
        cfg.shard_seed(shard),
        shard,
    );
    let wear_armed = match cfg.wear {
        Some(plan) if plan.shard == shard => {
            server.arm_wear(cfg.shard_seed(shard), plan.wear_config());
            true
        }
        _ => false,
    };
    let recorder = if cfg.trace {
        let rec = Arc::new(RingBufferRecorder::new(psoram_obsv::DEFAULT_RING_CAPACITY));
        server.attach_recorder(rec.clone());
        Some(rec)
    } else {
        None
    };
    let record = |rec: &Option<Arc<RingBufferRecorder>>, ev: Event| {
        if let Some(r) = rec {
            r.record(ev);
        }
    };
    for r in &queue {
        record(
            &recorder,
            Event::ServiceEnqueue {
                request: r.id,
                shard,
                cycle: r.arrival_cycle,
            },
        );
    }

    // Last-written fill per local address, for read-your-writes checks
    // on controller lanes.
    let mut expected: Vec<u8> = vec![0; range.len() as usize];
    let mut completions = Vec::with_capacity(queue.len());
    let mut now = 0u64;
    let mut busy = 0u64;
    let mut wait_sum = 0u128;
    let mut batches = 0u64;
    let mut crashes = 0u64;
    let mut recoveries_consistent = 0u64;
    let mut recovery_cycles = 0u64;
    let mut completed = 0u64;
    let mut i = 0usize;
    while i < queue.len() {
        if now < queue[i].arrival_cycle {
            now = queue[i].arrival_cycle;
        }
        let mut end = i + 1;
        while end < queue.len() && end - i < cfg.batch_size && queue[end].arrival_cycle <= now {
            end += 1;
        }
        now += BATCH_DISPATCH_CYCLES;
        batches += 1;
        record(
            &recorder,
            Event::ServiceBatch {
                shard,
                size: (end - i) as u64,
                cycle: now,
            },
        );
        for r in &queue[i..end] {
            let dispatch = now;
            record(
                &recorder,
                Event::ServiceDequeue {
                    request: r.id,
                    shard,
                    wait_cycles: dispatch.saturating_sub(r.arrival_cycle),
                    cycle: dispatch,
                },
            );
            wait_sum += dispatch.saturating_sub(r.arrival_cycle) as u128;
            let fill = fill_byte(r);
            let (cycles, value) = server
                .serve(r.op, r.addr, fill)
                .expect("router guarantees addresses in range; shards never stay crashed");
            let local = range.to_local(r.addr) as usize;
            match r.op {
                Op::Write => expected[local] = fill,
                Op::Read => {
                    if let Some(v) = value {
                        assert!(
                            v.iter().all(|&b| b == expected[local]),
                            "shard {shard} returned stale data for request {}",
                            r.id
                        );
                    }
                }
            }
            busy += cycles;
            now += cycles;
            completed += 1;
            if let Some(plan) = cfg.crash {
                if plan.shard == shard && completed == plan.after_requests {
                    let (consistent, delta) = server.crash_and_recover();
                    crashes += 1;
                    if consistent {
                        recoveries_consistent += 1;
                    }
                    let charge = delta + RECOVERY_REBOOT_CYCLES;
                    recovery_cycles += charge;
                    now += charge;
                }
            }
            completions.push(Completion {
                id: r.id,
                client: r.client,
                shard,
                addr: r.addr,
                arrival_cycle: r.arrival_cycle,
                dispatch_cycle: dispatch,
                complete_cycle: now,
            });
            record(
                &recorder,
                Event::ServiceComplete {
                    request: r.id,
                    shard,
                    latency_cycles: now.saturating_sub(r.arrival_cycle),
                    cycle: now,
                },
            );
        }
        i = end;
    }
    let verify_ok = server.verify(crashes > 0);
    let wear = if wear_armed {
        let stats = server.wear_stats().unwrap_or_default();
        let faults = server.device_fault_stats().unwrap_or_default();
        Some(WearLaneEvidence {
            wear_faults: faults.wear_faults,
            wear_stuck_faults: faults.wear_stuck_faults,
            gap_moves: stats.gap_moves,
            retirements: stats.retirements,
            repairs: stats.repairs,
            spares_left: server.wear_spares_left().unwrap_or(0),
        })
    } else {
        None
    };
    let requests = completions.len() as u64;
    let report = ShardLaneReport {
        shard,
        requests,
        batches,
        queue_wait_mean_cycles: if requests > 0 {
            (wait_sum / requests as u128) as u64
        } else {
            0
        },
        busy_cycles: busy,
        makespan_cycles: now,
        throughput_accesses_per_sec: if now > 0 {
            requests as f64 * CORE_HZ as f64 / now as f64
        } else {
            0.0
        },
        crashes,
        recoveries_consistent,
        recovery_cycles,
        verify_ok,
        state_digest: format!("{:032x}", server.state_digest()),
        wear,
    };
    LaneOutcome {
        completions,
        report,
        events: recorder.map(|r| r.events()).unwrap_or_default(),
    }
}

/// Runs the full service pipeline on `jobs` worker threads (0 = the
/// `PSORAM_JOBS`/default discipline of the faultsim pool) and collects
/// the report. Byte-identical output at any worker count.
pub fn run_service(cfg: &ServiceConfig, jobs: usize) -> ServiceOutcome {
    let partition = cfg.partition();
    let schedule = open_loop_schedule(
        cfg.requests,
        cfg.clients,
        cfg.arrival_rate,
        partition.capacity(),
        cfg.seed,
    );
    let mut queues: Vec<Vec<AccessRequest>> = vec![Vec::new(); cfg.shards as usize];
    for r in schedule {
        queues[partition.shard_of(r.addr) as usize].push(r);
    }
    let work: Vec<(u32, Vec<AccessRequest>)> = queues
        .into_iter()
        .enumerate()
        .map(|(s, q)| (s as u32, q))
        .collect();
    let lanes = par_map(jobs, work, |(shard, queue)| run_lane(cfg, shard, queue));

    let mut latencies: Vec<u64> = Vec::with_capacity(cfg.requests as usize);
    let mut lane_reports = Vec::with_capacity(lanes.len());
    let mut events = Vec::new();
    let mut makespan = 0u64;
    let mut total = 0u64;
    for lane in lanes {
        latencies.extend(lane.completions.iter().map(Completion::latency));
        makespan = makespan.max(lane.report.makespan_cycles);
        total += lane.report.requests;
        lane_reports.push(lane.report);
        events.extend(lane.events);
    }
    latencies.sort_unstable();
    let latency_cycles = LatencySummary::from_sorted(&latencies);
    let report = ServiceReport {
        shards: cfg.shards,
        clients: cfg.clients,
        arrival_rate: cfg.arrival_rate,
        batch_size: cfg.batch_size as u64,
        levels: cfg.levels,
        variant: cfg.variant.label().to_string(),
        lane: cfg.lane.label().to_string(),
        seed: cfg.seed,
        latency_cycles,
        p50_us: LatencySummary::cycles_to_us(latency_cycles.p50),
        p99_us: LatencySummary::cycles_to_us(latency_cycles.p99),
        lanes: lane_reports,
        aggregate: AggregateReport {
            requests: total,
            makespan_cycles: makespan,
            accesses_per_sec: if makespan > 0 {
                total as f64 * CORE_HZ as f64 / makespan as f64
            } else {
                0.0
            },
        },
    };
    ServiceOutcome { report, events }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_covers_every_request_and_shard() {
        let mut cfg = ServiceConfig::smoke();
        cfg.requests = 400;
        let out = run_service(&cfg, 2);
        assert_eq!(out.report.aggregate.requests, 400);
        assert_eq!(out.report.lanes.len(), 4);
        for lane in &out.report.lanes {
            assert!(
                lane.requests > 0,
                "uniform addresses should hit every shard"
            );
            assert!(lane.verify_ok);
            assert_eq!(lane.crashes, 0);
        }
        let s = &out.report.latency_cycles;
        assert!(s.p50 <= s.p95 && s.p95 <= s.p99);
        assert!(out.report.aggregate.accesses_per_sec > 0.0);
        assert!(out.events.is_empty());
    }

    #[test]
    fn tracing_emits_the_service_lane() {
        let mut cfg = ServiceConfig::smoke();
        cfg.requests = 120;
        cfg.trace = true;
        let out = run_service(&cfg, 1);
        let enq = out
            .events
            .iter()
            .filter(|e| matches!(e, Event::ServiceEnqueue { .. }))
            .count();
        let comp = out
            .events
            .iter()
            .filter(|e| matches!(e, Event::ServiceComplete { .. }))
            .count();
        assert_eq!(enq, 120);
        assert_eq!(comp, 120);
        assert!(out
            .events
            .iter()
            .any(|e| matches!(e, Event::ServiceBatch { .. })));
    }

    #[test]
    fn crash_plan_strikes_exactly_one_shard() {
        let mut cfg = ServiceConfig::smoke();
        cfg.requests = 600;
        cfg.crash = Some(ShardCrashPlan {
            shard: 2,
            after_requests: 40,
        });
        let out = run_service(&cfg, 0);
        for lane in &out.report.lanes {
            if lane.shard == 2 {
                assert_eq!(lane.crashes, 1);
                assert_eq!(lane.recoveries_consistent, 1);
                assert!(lane.recovery_cycles >= RECOVERY_REBOOT_CYCLES);
            } else {
                assert_eq!(lane.crashes, 0);
            }
            assert!(lane.verify_ok);
        }
    }

    #[test]
    fn wear_shard_degrades_gracefully_while_siblings_stay_identical() {
        let mut base = ServiceConfig::smoke();
        base.requests = 1200;
        let clean = run_service(&base, 2);
        let mut worn = base.clone();
        worn.wear = Some(WearShardPlan::near_eol(1));
        let out = run_service(&worn, 2);
        assert_eq!(out.report.aggregate.requests, 1200);
        for lane in &out.report.lanes {
            assert!(lane.verify_ok, "shard {} failed verify", lane.shard);
            let clean_lane = &clean.report.lanes[lane.shard as usize];
            if lane.shard == 1 {
                let w = lane.wear.expect("wear shard must carry evidence");
                assert!(w.wear_faults > 0, "near-EOL shard saw no media faults");
                assert!(w.retirements > 0, "no line retired: {w:?}");
                assert!(w.repairs >= w.retirements, "retire without repair: {w:?}");
                assert!(w.spares_left < 64, "retirement consumed no spare");
                assert!(
                    lane.busy_cycles > clean_lane.busy_cycles,
                    "fault retries and repairs must show up in lane time"
                );
            } else {
                assert!(lane.wear.is_none());
                assert_eq!(
                    lane, clean_lane,
                    "sibling shard {} must be byte-identical to the wear-free run",
                    lane.shard
                );
            }
        }
    }

    #[test]
    fn wear_trace_surfaces_line_retirements() {
        let mut cfg = ServiceConfig::smoke();
        cfg.requests = 1200;
        cfg.trace = true;
        cfg.wear = Some(WearShardPlan::near_eol(0));
        let out = run_service(&cfg, 1);
        assert!(
            out.events
                .iter()
                .any(|e| matches!(e, Event::LineRetired { .. })),
            "retirements must be visible in the event stream"
        );
        assert!(
            out.events
                .iter()
                .any(|e| matches!(e, Event::FaultDetected { .. })),
            "detected wear faults must be visible in the event stream"
        );
    }

    #[test]
    fn full_system_lanes_run_end_to_end() {
        let mut cfg = ServiceConfig::smoke();
        cfg.requests = 60;
        cfg.levels = 6;
        cfg.lane = LaneKind::FullSystem;
        let out = run_service(&cfg, 2);
        assert_eq!(out.report.aggregate.requests, 60);
        assert!(out.report.lanes.iter().all(|l| l.verify_ok));
    }
}
