//! The collector's output: per-shard lane reports and the aggregate
//! latency/throughput summary.
//!
//! Everything in a [`ServiceReport`] derives from simulated quantities
//! (core cycles, request counts, seeds), so serializing one is
//! byte-identical across runs and worker counts. Wall-clock numbers
//! never appear here — the bench prints those to stderr.

use serde::Serialize;

use crate::request::CORE_HZ;

/// Nearest-rank percentile over an ascending-sorted slice.
///
/// `pct` is in `[1, 100]`; the nearest-rank index is
/// `ceil(pct · n / 100) − 1`, computed in pure integer arithmetic so the
/// result is deterministic. Returns 0 for an empty slice.
pub fn percentile(sorted: &[u64], pct: u64) -> u64 {
    let n = sorted.len() as u64;
    if n == 0 {
        return 0;
    }
    let rank = ((pct * n + 99) / 100).max(1);
    sorted[(rank - 1) as usize]
}

/// End-to-end latency percentiles in core cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct LatencySummary {
    /// Median latency.
    pub p50: u64,
    /// 95th-percentile latency.
    pub p95: u64,
    /// 99th-percentile (tail) latency.
    pub p99: u64,
    /// Arithmetic mean (integer-truncated).
    pub mean: u64,
    /// Fastest observed request.
    pub min: u64,
    /// Slowest observed request.
    pub max: u64,
}

impl LatencySummary {
    /// Summarizes an ascending-sorted latency sample.
    pub fn from_sorted(sorted: &[u64]) -> Self {
        if sorted.is_empty() {
            return LatencySummary {
                p50: 0,
                p95: 0,
                p99: 0,
                mean: 0,
                min: 0,
                max: 0,
            };
        }
        let sum: u128 = sorted.iter().map(|&v| v as u128).sum();
        LatencySummary {
            p50: percentile(sorted, 50),
            p95: percentile(sorted, 95),
            p99: percentile(sorted, 99),
            mean: (sum / sorted.len() as u128) as u64,
            min: sorted[0],
            max: *sorted.last().unwrap(),
        }
    }

    /// Converts a cycle count to microseconds at [`CORE_HZ`].
    pub fn cycles_to_us(cycles: u64) -> f64 {
        cycles as f64 * 1e6 / CORE_HZ as f64
    }
}

/// Endurance-adversary evidence for a shard that ran with wear armed
/// (see `ServiceConfig::wear`). Absent — and absent from the serialized
/// report — on every wear-free lane, so wear-free runs stay
/// byte-identical to reports produced before wear support existed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct WearLaneEvidence {
    /// Wear-correlated media faults the device plan injected.
    pub wear_faults: u64,
    /// The subset that were stuck-at (cell budget exhausted) faults.
    pub wear_stuck_faults: u64,
    /// Start-Gap moves performed by the leveling layer.
    pub gap_moves: u64,
    /// Lines convicted and retired onto spares.
    pub retirements: u64,
    /// Repair copies written while retiring (content restored from the
    /// redundant copy onto the spare).
    pub repairs: u64,
    /// Spare lines the retirement layer still held at end of run.
    pub spares_left: u64,
}

/// One shard worker's lane summary.
///
/// `Serialize` is hand-written so the `wear` evidence is skipped when
/// absent: a wear-free run serializes exactly as it did before the
/// endurance adversary existed.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardLaneReport {
    /// Shard index.
    pub shard: u32,
    /// Requests routed to and served by this shard.
    pub requests: u64,
    /// Batches the worker dispatched.
    pub batches: u64,
    /// Mean cycles a request waited in the queue before dispatch.
    pub queue_wait_mean_cycles: u64,
    /// Cycles the controller spent actually serving accesses.
    pub busy_cycles: u64,
    /// Lane virtual time at the last completion (arrival of the first
    /// request through completion of the last).
    pub makespan_cycles: u64,
    /// Lane throughput: requests ÷ makespan, in accesses per second.
    pub throughput_accesses_per_sec: f64,
    /// Power failures injected on this shard.
    pub crashes: u64,
    /// Recoveries that reported a consistent state.
    pub recoveries_consistent: u64,
    /// Cycles charged to recovery (controller delta + modeled reboot).
    pub recovery_cycles: u64,
    /// Whether the end-of-run contents check passed.
    pub verify_ok: bool,
    /// The shard controller's final state digest (hex).
    pub state_digest: String,
    /// Endurance evidence, present only on the shard that ran with the
    /// wear adversary armed.
    pub wear: Option<WearLaneEvidence>,
}

impl Serialize for ShardLaneReport {
    fn to_value(&self) -> serde::Value {
        let mut fields = vec![
            ("shard".to_string(), self.shard.to_value()),
            ("requests".to_string(), self.requests.to_value()),
            ("batches".to_string(), self.batches.to_value()),
            (
                "queue_wait_mean_cycles".to_string(),
                self.queue_wait_mean_cycles.to_value(),
            ),
            ("busy_cycles".to_string(), self.busy_cycles.to_value()),
            (
                "makespan_cycles".to_string(),
                self.makespan_cycles.to_value(),
            ),
            (
                "throughput_accesses_per_sec".to_string(),
                self.throughput_accesses_per_sec.to_value(),
            ),
            ("crashes".to_string(), self.crashes.to_value()),
            (
                "recoveries_consistent".to_string(),
                self.recoveries_consistent.to_value(),
            ),
            (
                "recovery_cycles".to_string(),
                self.recovery_cycles.to_value(),
            ),
            ("verify_ok".to_string(), self.verify_ok.to_value()),
            ("state_digest".to_string(), self.state_digest.to_value()),
        ];
        if let Some(w) = &self.wear {
            fields.push(("wear".to_string(), w.to_value()));
        }
        serde::Value::Object(fields)
    }
}

/// Service-wide totals.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct AggregateReport {
    /// Total requests served across all shards.
    pub requests: u64,
    /// Service makespan: the slowest lane's makespan (lanes run
    /// concurrently in real hardware).
    pub makespan_cycles: u64,
    /// Aggregate throughput: requests ÷ makespan at [`CORE_HZ`].
    pub accesses_per_sec: f64,
}

/// The collector's full report for one service run.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ServiceReport {
    /// Number of shards (independent persistence domains).
    pub shards: u32,
    /// Number of simulated open-loop clients.
    pub clients: u32,
    /// Configured aggregate arrival rate (requests per second).
    pub arrival_rate: u64,
    /// Maximum requests dispatched per batch.
    pub batch_size: u64,
    /// ORAM tree levels per shard.
    pub levels: u32,
    /// Protocol variant label.
    pub variant: String,
    /// Lane kind label (`controller` or `full-system`).
    pub lane: String,
    /// Schedule seed.
    pub seed: u64,
    /// End-to-end latency summary in core cycles.
    pub latency_cycles: LatencySummary,
    /// Median latency in microseconds at the modeled 3.2 GHz core.
    pub p50_us: f64,
    /// 99th-percentile latency in microseconds.
    pub p99_us: f64,
    /// Per-shard lane summaries, in shard order.
    pub lanes: Vec<ShardLaneReport>,
    /// Service-wide totals.
    pub aggregate: AggregateReport,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_is_nearest_rank() {
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 50), 50);
        assert_eq!(percentile(&v, 95), 95);
        assert_eq!(percentile(&v, 99), 99);
        assert_eq!(percentile(&v, 100), 100);
        let small = [10u64, 20, 30];
        assert_eq!(percentile(&small, 50), 20);
        assert_eq!(percentile(&small, 99), 30);
        assert_eq!(percentile(&[], 50), 0);
    }

    #[test]
    fn summary_orders_percentiles() {
        let mut v: Vec<u64> = (0..1000).map(|i| (i * 37) % 991).collect();
        v.sort_unstable();
        let s = LatencySummary::from_sorted(&v);
        assert!(s.min <= s.p50 && s.p50 <= s.p95 && s.p95 <= s.p99 && s.p99 <= s.max);
        assert!(s.mean >= s.min && s.mean <= s.max);
    }

    #[test]
    fn cycle_to_us_conversion() {
        assert_eq!(LatencySummary::cycles_to_us(CORE_HZ), 1e6);
        assert_eq!(LatencySummary::cycles_to_us(3_200), 1.0);
    }
}
