//! # psoram-service
//!
//! The sharded, batched multi-tenant ORAM service front-end.
//!
//! PS-ORAM makes a single controller crash-consistent; this crate turns
//! N such controllers into a service. The logical address space is
//! partitioned across N **shards** — each an independent controller
//! instance with its own persistence domain (persist engine, counter
//! tree, fault plan) — fed by a deterministic request-queue/worker
//! scheduler:
//!
//! ```text
//! clients ──▶ open-loop schedule ──▶ router ──▶ per-shard queues
//!                                                │ batch ▼
//!                                         shard workers (par_map)
//!                                                │ completions ▼
//!                                   collector: p50/p95/p99, throughput
//! ```
//!
//! * [`open_loop_schedule`] generates the seeded arrival process
//!   (exponential inter-arrival at a configured aggregate rate, in core
//!   cycles at 3.2 GHz).
//! * [`AddressPartition`] maps every address to exactly one shard.
//! * [`run_service`] executes the per-shard queues on the
//!   `psoram-faultsim` deterministic worker pool: per-shard seeds,
//!   input-order collection — the [`ServiceReport`] is byte-identical at
//!   any worker count.
//! * A [`ShardCrashPlan`] can strike one shard mid-load; recovery runs
//!   through the ordinary hardened `recover()` path on that shard alone
//!   while the siblings keep serving.
//! * A [`WearShardPlan`] runs one shard as a near-end-of-life device:
//!   pre-aged lines, wear-correlated media faults, crash-consistent line
//!   retirement onto spares. The degraded shard must keep serving —
//!   retirements and repairs surface in its [`WearLaneEvidence`] and
//!   latency numbers — while every sibling stays byte-identical to a
//!   wear-free run.
//!
//! # Examples
//!
//! ```
//! use psoram_service::{run_service, ServiceConfig};
//!
//! let mut cfg = ServiceConfig::smoke();
//! cfg.requests = 200;
//! let out = run_service(&cfg, 1);
//! assert_eq!(out.report.aggregate.requests, 200);
//! assert!(out.report.latency_cycles.p99 >= out.report.latency_cycles.p50);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod lane;
mod partition;
mod report;
mod request;
mod scheduler;

pub use lane::{LaneKind, ShardServer};
pub use partition::AddressPartition;
pub use report::{
    percentile, AggregateReport, LatencySummary, ServiceReport, ShardLaneReport, WearLaneEvidence,
};
pub use request::{open_loop_schedule, AccessRequest, Completion, CORE_HZ};
pub use scheduler::{
    run_service, ServiceConfig, ServiceOutcome, ShardCrashPlan, WearShardPlan,
    BATCH_DISPATCH_CYCLES, RECOVERY_REBOOT_CYCLES,
};
