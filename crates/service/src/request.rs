//! Client requests and the open-loop arrival schedule.

use std::collections::HashSet;

use psoram_core::Op;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The modeled core frequency (the paper's 3.2 GHz in-order core); used
/// to convert the configured arrival rate into inter-arrival cycles and
/// simulated cycle spans back into seconds.
pub const CORE_HZ: u64 = 3_200_000_000;

/// One client access request as submitted to the service front-end.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessRequest {
    /// Global request id (submission order).
    pub id: u64,
    /// Simulated client that issued the request.
    pub client: u32,
    /// Read or write.
    pub op: Op,
    /// Global logical block address.
    pub addr: u64,
    /// Core cycle at which the request arrived (open-loop: arrivals
    /// never wait for completions).
    pub arrival_cycle: u64,
}

/// One completed request, as reported by a shard worker to the
/// collector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// Global request id.
    pub id: u64,
    /// Issuing client.
    pub client: u32,
    /// Shard that served the request.
    pub shard: u32,
    /// Global logical block address.
    pub addr: u64,
    /// Arrival cycle (from the schedule).
    pub arrival_cycle: u64,
    /// Cycle the shard worker dispatched the request (queue exit).
    pub dispatch_cycle: u64,
    /// Cycle the access completed end-to-end.
    pub complete_cycle: u64,
}

impl Completion {
    /// End-to-end latency: completion − arrival.
    pub fn latency(&self) -> u64 {
        self.complete_cycle.saturating_sub(self.arrival_cycle)
    }

    /// Time spent queued before dispatch.
    pub fn queue_wait(&self) -> u64 {
        self.dispatch_cycle.saturating_sub(self.arrival_cycle)
    }
}

/// Generates the deterministic open-loop arrival schedule: `requests`
/// requests from `clients` simulated clients at an aggregate
/// `arrival_rate` (requests per second), addresses uniform over
/// `[0, capacity)`.
///
/// Inter-arrival gaps are exponential (a Poisson arrival process — the
/// standard open-loop model), quantized to core cycles at [`CORE_HZ`]
/// with a 1-cycle floor. The access mix is 70% writes / 30% reads, with
/// the first touch of every address forced to a write so reads never
/// observe uninitialized blocks. Everything derives from `seed` alone,
/// so the same seed and config replay the same schedule byte for byte.
///
/// # Panics
///
/// Panics on a degenerate configuration (zero requests, clients, rate,
/// or capacity).
pub fn open_loop_schedule(
    requests: u64,
    clients: u32,
    arrival_rate: u64,
    capacity: u64,
    seed: u64,
) -> Vec<AccessRequest> {
    assert!(requests >= 1, "need at least one request");
    assert!(clients >= 1, "need at least one client");
    assert!(arrival_rate >= 1, "need a positive arrival rate");
    assert!(capacity >= 1, "need a non-empty address space");
    let mean_gap = CORE_HZ as f64 / arrival_rate as f64;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut written: HashSet<u64> = HashSet::new();
    let mut schedule = Vec::with_capacity(requests as usize);
    let mut now = 0u64;
    for id in 0..requests {
        // Exponential gap via inverse transform; u is in [0, 1) so
        // 1 - u is in (0, 1] and the log is finite.
        let u: f64 = rng.gen_range(0.0..1.0);
        let gap = (-(1.0 - u).ln() * mean_gap).max(1.0);
        now = now.saturating_add(gap as u64);
        let client = rng.gen_range(0..clients);
        let addr = rng.gen_range(0..capacity);
        let roll = rng.gen_range(0..10u32);
        let op = if roll < 7 || !written.contains(&addr) {
            written.insert(addr);
            Op::Write
        } else {
            Op::Read
        };
        schedule.push(AccessRequest {
            id,
            client,
            op,
            addr,
            arrival_cycle: now,
        });
    }
    schedule
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_deterministic_and_monotone() {
        let a = open_loop_schedule(500, 16, 100_000, 1 << 20, 7);
        let b = open_loop_schedule(500, 16, 100_000, 1 << 20, 7);
        assert_eq!(a, b);
        for w in a.windows(2) {
            assert!(w[1].arrival_cycle >= w[0].arrival_cycle);
            assert_eq!(w[1].id, w[0].id + 1);
        }
    }

    #[test]
    fn first_touch_is_always_a_write() {
        let sched = open_loop_schedule(2_000, 8, 1_000_000, 64, 3);
        let mut seen = HashSet::new();
        for r in &sched {
            if !seen.contains(&r.addr) {
                assert_eq!(r.op, Op::Write, "first touch of {} must write", r.addr);
                seen.insert(r.addr);
            }
        }
    }

    #[test]
    fn mean_gap_tracks_the_rate() {
        let rate = 200_000u64;
        let sched = open_loop_schedule(4_000, 8, rate, 1 << 20, 11);
        let span = sched.last().unwrap().arrival_cycle as f64;
        let expect = 4_000.0 * CORE_HZ as f64 / rate as f64;
        assert!(
            (span / expect - 1.0).abs() < 0.1,
            "arrival span {span} too far from expected {expect}"
        );
    }

    #[test]
    fn latency_helpers() {
        let c = Completion {
            id: 0,
            client: 0,
            shard: 0,
            addr: 0,
            arrival_cycle: 100,
            dispatch_cycle: 150,
            complete_cycle: 400,
        };
        assert_eq!(c.latency(), 300);
        assert_eq!(c.queue_wait(), 50);
    }
}
