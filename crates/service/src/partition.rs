//! The router's address→shard map: a partition of the logical address
//! space into contiguous per-shard ranges.

use psoram_core::ShardRange;

/// A partition of `[0, capacity)` into `shards` contiguous ranges.
///
/// Ranges differ in size by at most one address (the first
/// `capacity % shards` shards take the extra), cover the whole space,
/// and never overlap — every address routes to exactly one shard. The
/// proptests in `tests/partition_props.rs` pin those three properties.
///
/// # Examples
///
/// ```
/// use psoram_service::AddressPartition;
///
/// let p = AddressPartition::new(10, 3);
/// assert_eq!(p.range_of(0).len(), 4); // 10 = 4 + 3 + 3
/// assert_eq!(p.shard_of(3), 0);
/// assert_eq!(p.shard_of(4), 1);
/// assert_eq!(p.shard_of(9), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AddressPartition {
    capacity: u64,
    shards: u32,
}

impl AddressPartition {
    /// Partitions `[0, capacity)` across `shards` shards.
    ///
    /// # Panics
    ///
    /// Panics when `shards` is zero or exceeds `capacity` (a shard must
    /// own at least one address).
    pub fn new(capacity: u64, shards: u32) -> Self {
        assert!(shards >= 1, "need at least one shard");
        assert!(
            capacity >= shards as u64,
            "capacity {capacity} cannot feed {shards} shards"
        );
        AddressPartition { capacity, shards }
    }

    /// Total addresses partitioned.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Number of shards.
    pub fn shards(&self) -> u32 {
        self.shards
    }

    /// The global address range shard `shard` owns.
    ///
    /// # Panics
    ///
    /// Panics when `shard >= self.shards()`.
    pub fn range_of(&self, shard: u32) -> ShardRange {
        assert!(shard < self.shards, "shard {shard} out of range");
        let base = self.capacity / self.shards as u64;
        let rem = self.capacity % self.shards as u64;
        let s = shard as u64;
        let lo = s * base + s.min(rem);
        let hi = lo + base + u64::from(s < rem);
        ShardRange { lo, hi }
    }

    /// The shard owning global address `addr`.
    ///
    /// # Panics
    ///
    /// Panics when `addr >= self.capacity()`.
    pub fn shard_of(&self, addr: u64) -> u32 {
        assert!(
            addr < self.capacity,
            "address {addr} outside capacity {}",
            self.capacity
        );
        let base = self.capacity / self.shards as u64;
        let rem = self.capacity % self.shards as u64;
        let boundary = rem * (base + 1);
        let shard = if addr < boundary {
            addr / (base + 1)
        } else {
            rem + (addr - boundary) / base
        };
        shard as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn even_split_is_equal_ranges() {
        let p = AddressPartition::new(100, 4);
        for s in 0..4 {
            assert_eq!(p.range_of(s).len(), 25);
        }
        assert_eq!(p.range_of(3).hi, 100);
    }

    #[test]
    fn remainder_goes_to_leading_shards() {
        let p = AddressPartition::new(11, 4);
        let lens: Vec<u64> = (0..4).map(|s| p.range_of(s).len()).collect();
        assert_eq!(lens, vec![3, 3, 3, 2]);
    }

    #[test]
    fn shard_of_agrees_with_range_of() {
        let p = AddressPartition::new(37, 5);
        for addr in 0..37 {
            let s = p.shard_of(addr);
            assert!(p.range_of(s).contains(addr), "addr {addr} shard {s}");
        }
    }

    #[test]
    #[should_panic(expected = "cannot feed")]
    fn rejects_more_shards_than_addresses() {
        AddressPartition::new(3, 4);
    }
}
