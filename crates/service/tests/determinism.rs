//! The service front-end's core contract: the report is a pure function
//! of the configuration — worker count, tracing, and scheduling order
//! never leak into it.

use psoram_service::{run_service, LaneKind, ServiceConfig, ShardCrashPlan};

fn cfg() -> ServiceConfig {
    let mut cfg = ServiceConfig::smoke();
    cfg.requests = 1_200;
    cfg.seed = 0xD0_5EED;
    cfg
}

fn report_json(cfg: &ServiceConfig, jobs: usize) -> String {
    serde_json::to_string(&run_service(cfg, jobs).report).expect("report serializes")
}

#[test]
fn one_worker_and_four_workers_are_byte_identical() {
    let cfg = cfg();
    assert_eq!(report_json(&cfg, 1), report_json(&cfg, 4));
}

#[test]
fn default_jobs_matches_explicit_jobs() {
    let cfg = cfg();
    assert_eq!(report_json(&cfg, 0), report_json(&cfg, 2));
}

#[test]
fn tracing_does_not_perturb_the_report() {
    let mut traced = cfg();
    traced.trace = true;
    let out = run_service(&traced, 1);
    assert!(!out.events.is_empty(), "tracing must actually record");
    let plain = serde_json::to_string(&run_service(&cfg(), 1).report).unwrap();
    assert_eq!(serde_json::to_string(&out.report).unwrap(), plain);
}

#[test]
fn crash_runs_are_deterministic_across_worker_counts() {
    let mut cfg = cfg();
    cfg.crash = Some(ShardCrashPlan {
        shard: 1,
        after_requests: 50,
    });
    assert_eq!(report_json(&cfg, 1), report_json(&cfg, 4));
}

#[test]
fn full_system_lanes_are_deterministic_too() {
    let mut cfg = cfg();
    cfg.requests = 150;
    cfg.levels = 6;
    cfg.lane = LaneKind::FullSystem;
    assert_eq!(report_json(&cfg, 1), report_json(&cfg, 4));
}

#[test]
fn distinct_seeds_diverge() {
    let a = cfg();
    let mut b = cfg();
    b.seed = a.seed + 1;
    assert_ne!(report_json(&a, 1), report_json(&b, 1));
}
