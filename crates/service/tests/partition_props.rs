//! Property tests: the router's address→shard map is a true partition.
//!
//! Three properties over randomized (capacity, shards) pairs:
//! 1. **Cover** — the per-shard ranges tile `[0, capacity)` exactly, in
//!    order, with no gaps or overlaps.
//! 2. **Agree** — `shard_of(addr)` lands in `range_of(shard_of(addr))`
//!    for every address (so routing and range construction can never
//!    disagree about ownership).
//! 3. **Balance** — range sizes differ by at most one address.

use proptest::prelude::*;

use psoram_service::AddressPartition;

proptest! {
    #[test]
    fn ranges_tile_the_address_space(
        shards in 1u32..64,
        extra in 0u64..4096,
    ) {
        let capacity = shards as u64 + extra;
        let p = AddressPartition::new(capacity, shards);
        let mut next = 0u64;
        for s in 0..shards {
            let r = p.range_of(s);
            prop_assert_eq!(r.lo, next, "gap or overlap before shard {}", s);
            prop_assert!(!r.is_empty(), "shard {} owns no addresses", s);
            next = r.hi;
        }
        prop_assert_eq!(next, capacity, "ranges must end exactly at capacity");
    }

    #[test]
    fn shard_of_agrees_with_range_of(
        shards in 1u32..32,
        extra in 0u64..1024,
    ) {
        let capacity = shards as u64 + extra;
        let p = AddressPartition::new(capacity, shards);
        for addr in 0..capacity {
            let s = p.shard_of(addr);
            prop_assert!(s < shards);
            prop_assert!(
                p.range_of(s).contains(addr),
                "addr {} routed to shard {} which does not own it", addr, s
            );
        }
    }

    #[test]
    fn ranges_are_balanced(
        shards in 1u32..64,
        extra in 0u64..4096,
    ) {
        let capacity = shards as u64 + extra;
        let p = AddressPartition::new(capacity, shards);
        let lens: Vec<u64> = (0..shards).map(|s| p.range_of(s).len()).collect();
        let min = *lens.iter().min().unwrap();
        let max = *lens.iter().max().unwrap();
        prop_assert!(max - min <= 1, "unbalanced partition: {:?}", lens);
        prop_assert_eq!(lens.iter().sum::<u64>(), capacity);
    }
}
