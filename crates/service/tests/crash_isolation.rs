//! Per-shard crash isolation: striking one shard mid-load must be
//! invisible — byte for byte — to every sibling shard, and the struck
//! shard must come back through the ordinary hardened recovery path.
//!
//! Each shard is its own persistence domain (own persist engine,
//! counter tree, fault plan), so a crash on shard k cannot perturb any
//! other lane's schedule, latencies, digest, or contents.

use psoram_service::{run_service, ServiceConfig, ShardCrashPlan, RECOVERY_REBOOT_CYCLES};

fn cfg() -> ServiceConfig {
    let mut cfg = ServiceConfig::smoke();
    cfg.requests = 1_500;
    cfg.seed = 0xC0FFEE;
    cfg
}

#[test]
fn crashing_one_shard_leaves_siblings_byte_identical() {
    let clean = run_service(&cfg(), 2).report;

    let mut crashed_cfg = cfg();
    crashed_cfg.crash = Some(ShardCrashPlan {
        shard: 2,
        after_requests: 60,
    });
    let crashed = run_service(&crashed_cfg, 2).report;

    assert_eq!(clean.lanes.len(), crashed.lanes.len());
    for (a, b) in clean.lanes.iter().zip(crashed.lanes.iter()) {
        if a.shard == 2 {
            continue;
        }
        assert_eq!(
            serde_json::to_string(a).unwrap(),
            serde_json::to_string(b).unwrap(),
            "shard {} perturbed by a crash on shard 2",
            a.shard
        );
    }
}

#[test]
fn struck_shard_recovers_consistently_and_serves_on() {
    let mut cfg = cfg();
    cfg.crash = Some(ShardCrashPlan {
        shard: 2,
        after_requests: 60,
    });
    let report = run_service(&cfg, 2).report;
    let lane = report.lanes.iter().find(|l| l.shard == 2).unwrap();
    assert_eq!(lane.crashes, 1);
    assert_eq!(lane.recoveries_consistent, 1);
    assert!(lane.verify_ok, "post-crash contents check must pass");
    assert!(
        lane.recovery_cycles >= RECOVERY_REBOOT_CYCLES,
        "the lane must be charged at least the modeled reboot penalty"
    );

    // The struck shard still serves its full share of requests — the
    // crash delays it, it doesn't drop work.
    let clean = run_service(
        &{
            let mut c = self::cfg();
            c.crash = None;
            c
        },
        2,
    )
    .report;
    let clean_lane = clean.lanes.iter().find(|l| l.shard == 2).unwrap();
    assert_eq!(lane.requests, clean_lane.requests);
    // The reboot penalty can be absorbed by open-loop idle gaps, so the
    // makespan may tie the clean run — but it can never beat it.
    assert!(lane.makespan_cycles >= clean_lane.makespan_cycles);
    assert!(lane.busy_cycles == clean_lane.busy_cycles || lane.busy_cycles > 0);
}

#[test]
fn aggregate_tail_latency_absorbs_the_crash() {
    let clean = run_service(&cfg(), 0).report;
    let mut crashed_cfg = cfg();
    crashed_cfg.crash = Some(ShardCrashPlan {
        shard: 0,
        after_requests: 40,
    });
    let crashed = run_service(&crashed_cfg, 0).report;
    assert_eq!(clean.aggregate.requests, crashed.aggregate.requests);
    assert!(
        crashed.latency_cycles.max >= clean.latency_cycles.max,
        "a mid-load crash cannot make the worst request faster"
    );
}
