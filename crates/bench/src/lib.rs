//! # psoram-bench
//!
//! The experiment harness regenerating every table and figure of the
//! PS-ORAM paper. Each `src/bin/*` binary reproduces one result:
//!
//! | Binary | Paper result |
//! |---|---|
//! | `table1_energy_constants` | Table 1 (drain cost constants) |
//! | `table2_drain_cost` | Table 2 (eADR vs PS-ORAM drain energy/time) |
//! | `table4_mpki` | Table 4 (workload MPKIs through the cache model) |
//! | `fig5_performance` | Figure 5 (normalized execution time, a & b) |
//! | `fig6_traffic` | Figure 6 (NVM read/write traffic) |
//! | `fig7_multichannel` | Figure 7 (1/2/4-channel performance) |
//! | `oram_overhead` | §5.1 ORAM vs non-ORAM overhead |
//!
//! Shared utilities here: run orchestration, normalized tables, geometric
//! means, and JSON result dumps (written to `results/`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::io::Write as _;

use psoram_core::{ProtocolPolicy, ProtocolVariant};
use psoram_faultsim::{
    device_campaign, exhaustive_sweep, random_campaign, random_campaign_traced, CampaignConfig,
    CampaignReport, DeviceCampaignConfig, DeviceCampaignReport, SweepConfig,
};
use psoram_obsv::Event;
use psoram_system::{SimResult, System, SystemConfig};
use psoram_trace::SpecWorkload;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The CLI surface shared by every experiment binary: `--jobs N`
/// (exported as `PSORAM_JOBS` for the deterministic worker pool),
/// `--trace-out FILE` (chrome://tracing JSON timeline), and
/// `--metrics-out FILE` (flat counters/gauges/histograms snapshot).
///
/// One pass over argv consumes the shared flags and leaves everything
/// else in [`CommonCli::rest`] for the binary's own parser — so no
/// binary duplicates the jobs/observability parsing, and new shared
/// flags land everywhere at once. `--jobs 1` restores the legacy serial
/// behavior; the output of every binary is byte-identical at any job
/// count — parallelism only changes wall-clock (see DESIGN.md).
#[derive(Debug, Clone, Default)]
pub struct CommonCli {
    /// Resolved worker count (after applying `--jobs` / `PSORAM_JOBS`).
    pub jobs: usize,
    /// Destination for the chrome://tracing JSON, if requested.
    pub trace_out: Option<String>,
    /// Destination for the metrics snapshot JSON, if requested.
    pub metrics_out: Option<String>,
    /// Arguments the shared pass did not consume, in order.
    pub rest: Vec<String>,
}

impl CommonCli {
    /// Parses the process argv (skipping the binary name).
    ///
    /// # Panics
    ///
    /// Exits the process (status 2) on a malformed shared flag.
    pub fn parse() -> CommonCli {
        Self::from_args(std::env::args().skip(1).collect())
    }

    /// Parses an explicit argument vector (testable entry point).
    ///
    /// # Panics
    ///
    /// Exits the process (status 2) on a malformed shared flag.
    pub fn from_args(args: Vec<String>) -> CommonCli {
        let mut cli = CommonCli::default();
        let mut it = args.into_iter();
        while let Some(a) = it.next() {
            let jobs_value = if a == "--jobs" {
                Some(it.next())
            } else {
                a.strip_prefix("--jobs=").map(|v| Some(v.to_string()))
            };
            if let Some(value) = jobs_value {
                match value.and_then(|v| v.parse::<usize>().ok()) {
                    Some(n) if n >= 1 => {
                        std::env::set_var(psoram_faultsim::par::JOBS_ENV, n.to_string())
                    }
                    _ => {
                        eprintln!("error: --jobs needs a positive integer");
                        std::process::exit(2);
                    }
                }
                continue;
            }
            let mut consumed = false;
            for (flag, slot) in [
                ("--trace-out", &mut cli.trace_out),
                ("--metrics-out", &mut cli.metrics_out),
            ] {
                if a == flag {
                    match it.next() {
                        Some(v) => *slot = Some(v),
                        None => {
                            eprintln!("error: {flag} needs a file path");
                            std::process::exit(2);
                        }
                    }
                    consumed = true;
                } else if let Some(v) = a.strip_prefix(&format!("{flag}=")) {
                    *slot = Some(v.to_string());
                    consumed = true;
                }
            }
            if !consumed {
                cli.rest.push(a);
            }
        }
        cli.jobs = psoram_faultsim::resolve_jobs(0);
        cli
    }
}

/// Writes an observability artifact (chrome trace or metrics snapshot),
/// announcing the path like [`write_results_json`].
///
/// # Panics
///
/// Panics on I/O errors — experiment binaries want loud failures.
pub fn write_obsv_file(path: &str, contents: &str) {
    if let Some(dir) = std::path::Path::new(path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create output dir");
        }
    }
    std::fs::write(path, contents).expect("write observability output");
    println!("[saved {path}]");
}

/// Captures a chrome-trace timeline from one deterministic full-system
/// side run: `records` trace records of `workload` under `variant` with a
/// ring-buffer recorder attached to the whole stack. Used by the figure
/// binaries' `--trace-out`, so the (long) measured sweep itself stays
/// untraced.
pub fn capture_system_trace(
    variant: ProtocolVariant,
    workload: SpecWorkload,
    channels: usize,
    records: usize,
) -> String {
    let rec = std::sync::Arc::new(psoram_obsv::RingBufferRecorder::new(
        psoram_obsv::DEFAULT_RING_CAPACITY,
    ));
    let mut sys = System::new(experiment_config(variant, channels));
    sys.set_recorder(rec.clone());
    sys.run_workload(workload, records);
    let label = format!("{}/{}", workload.name(), variant.label());
    psoram_obsv::chrome_trace_json(&[(label, rec.events())])
}

/// Records per workload for the sweep binaries; override with the
/// `PSORAM_RECORDS` environment variable.
pub fn records_per_workload() -> usize {
    std::env::var("PSORAM_RECORDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(40_000)
}

/// ORAM tree height for the sweep binaries; override with `PSORAM_LEVELS`.
///
/// The default (18) keeps the sparse tree's host-memory footprint tractable
/// for full sweeps; see DESIGN.md's substitution notes.
pub fn experiment_levels() -> u32 {
    std::env::var("PSORAM_LEVELS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(18)
}

/// Builds the experiment system config for `variant` and `channels`.
pub fn experiment_config(variant: ProtocolVariant, channels: usize) -> SystemConfig {
    let mut cfg = SystemConfig::experiment(variant, channels);
    cfg.oram = cfg.oram.with_levels(experiment_levels());
    cfg.oram.data_wpq_capacity = cfg.oram.path_slots();
    cfg.oram.posmap_wpq_capacity = cfg.oram.path_slots();
    cfg
}

/// Warmup records excluded from measurement (simpoint-style); override
/// with `PSORAM_WARMUP`.
pub fn warmup_records() -> usize {
    std::env::var("PSORAM_WARMUP")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| (records_per_workload() / 5).max(2_000))
}

/// Runs one workload under one variant and returns the result.
pub fn run_one(
    variant: ProtocolVariant,
    channels: usize,
    workload: SpecWorkload,
    n: usize,
) -> SimResult {
    let mut sys = System::new(experiment_config(variant, channels));
    sys.run_workload_with_warmup(workload, warmup_records(), n)
}

/// Runs the non-ORAM reference system on one workload.
pub fn run_reference(channels: usize, workload: SpecWorkload, n: usize) -> SimResult {
    let mut cfg = SystemConfig::non_oram_reference(channels);
    cfg.oram = cfg.oram.with_levels(experiment_levels());
    let mut sys = System::new(cfg);
    sys.run_workload_with_warmup(workload, warmup_records(), n)
}

/// The shared experiment harness: one configured context (channel count,
/// records per workload, warmup) that the figure and sweep binaries drive
/// instead of each re-deriving its own config/build/run preamble.
///
/// # Examples
///
/// ```no_run
/// use psoram_bench::SimHarness;
/// use psoram_core::ProtocolVariant;
///
/// let h = SimHarness::new(1);
/// h.banner("Figure 5: performance comparison");
/// h.sweep_vs_baseline(&[ProtocolVariant::PsOram], |w, base, runs| {
///     println!("{w}: {:.3}", runs[0].normalized_time(base));
/// });
/// ```
#[derive(Debug, Clone)]
pub struct SimHarness {
    channels: usize,
    records: usize,
}

impl SimHarness {
    /// A harness over `channels` NVM channels, sized from the
    /// `PSORAM_RECORDS`/`PSORAM_LEVELS`/`PSORAM_WARMUP` environment.
    pub fn new(channels: usize) -> Self {
        SimHarness {
            channels,
            records: records_per_workload(),
        }
    }

    /// Records simulated per workload.
    pub fn records(&self) -> usize {
        self.records
    }

    /// Prints the paper's Table 3 configuration banner.
    pub fn banner(&self, what: &str) {
        print_config_banner(what);
    }

    /// Runs one workload under one variant.
    pub fn run(&self, variant: ProtocolVariant, workload: SpecWorkload) -> SimResult {
        run_one(variant, self.channels, workload, self.records)
    }

    /// Runs the non-ORAM reference system on one workload.
    pub fn run_reference(&self, workload: SpecWorkload) -> SimResult {
        run_reference(self.channels, workload, self.records)
    }

    /// For every SPEC workload: runs the Baseline variant plus each of
    /// `variants`, handing `(workload, baseline, per-variant results)` to
    /// `row` (results align with `variants`). Progress goes to stderr.
    ///
    /// Workloads are independent simulations, so they fan out across the
    /// worker pool (`--jobs` / `PSORAM_JOBS`); `row` is still invoked in
    /// `SpecWorkload::all()` order after collection, so every table the
    /// figure binaries print is byte-identical at any job count.
    pub fn sweep_vs_baseline(
        &self,
        variants: &[ProtocolVariant],
        mut row: impl FnMut(SpecWorkload, &SimResult, &[SimResult]),
    ) {
        let results = psoram_faultsim::par_map(0, SpecWorkload::all().to_vec(), |w| {
            let base = self.run(ProtocolVariant::Baseline, w);
            let runs: Vec<SimResult> = variants.iter().map(|&v| self.run(v, w)).collect();
            eprintln!("[{w} done]");
            (w, base, runs)
        });
        for (w, base, runs) in results {
            row(w, &base, &runs);
        }
    }

    /// Runs the fault-injection campaigns for `mode`
    /// (`"exhaustive"`, `"random"`, or `"both"`), at smoke or full scale,
    /// optionally overriding the campaign seed.
    pub fn crash_campaigns(
        &self,
        mode: &str,
        smoke: bool,
        seed: Option<u64>,
    ) -> Vec<CampaignReport> {
        let mut reports = Vec::new();
        if mode == "exhaustive" || mode == "both" {
            let mut cfg = if smoke {
                SweepConfig::smoke()
            } else {
                SweepConfig::default()
            };
            if let Some(s) = seed {
                cfg.seed = s;
            }
            reports.push(exhaustive_sweep(&cfg));
        }
        if mode == "random" || mode == "both" {
            let mut cfg = if smoke {
                CampaignConfig::smoke()
            } else {
                CampaignConfig::default()
            };
            if let Some(s) = seed {
                cfg.seed = s;
            }
            reports.push(random_campaign(&cfg));
        }
        reports
    }

    /// Runs the device-fault campaign: the randomized crash campaign with
    /// a seeded device fault plan (torn flushes, lost/duplicated WPQ
    /// signals, persisted bit flips, read failures) armed underneath every
    /// Path and Ring design. With `replay` the plan also arms the
    /// freshness adversary (stale replays, cross splices, stale read
    /// serves), which the authenticated counter tree must detect.
    /// Deterministic in `seed` at any job count.
    pub fn device_campaigns(
        &self,
        smoke: bool,
        seed: Option<u64>,
        aggressive: bool,
        replay: bool,
    ) -> DeviceCampaignReport {
        let mut cfg = if smoke {
            DeviceCampaignConfig::smoke()
        } else {
            DeviceCampaignConfig::default()
        };
        if let Some(s) = seed {
            cfg.seed = s;
        }
        cfg.aggressive = aggressive;
        cfg.replay = replay;
        device_campaign(&cfg)
    }

    /// [`SimHarness::crash_campaigns`] with tracing: the random campaign
    /// runs with a per-design ring-buffer recorder and the event tracks
    /// come back alongside the reports (one per design, in sweep order).
    /// The exhaustive sweep is returned untraced. Recorders only observe,
    /// so the reports are byte-identical to [`SimHarness::crash_campaigns`].
    pub fn crash_campaigns_traced(
        &self,
        mode: &str,
        smoke: bool,
        seed: Option<u64>,
    ) -> (Vec<CampaignReport>, Vec<(String, Vec<Event>)>) {
        let mut reports = Vec::new();
        let mut tracks = Vec::new();
        if mode == "exhaustive" || mode == "both" {
            let mut cfg = if smoke {
                SweepConfig::smoke()
            } else {
                SweepConfig::default()
            };
            if let Some(s) = seed {
                cfg.seed = s;
            }
            reports.push(exhaustive_sweep(&cfg));
        }
        if mode == "random" || mode == "both" {
            let mut cfg = if smoke {
                CampaignConfig::smoke()
            } else {
                CampaignConfig::default()
            };
            if let Some(s) = seed {
                cfg.seed = s;
            }
            let (report, t) = random_campaign_traced(&cfg);
            reports.push(report);
            tracks = t;
        }
        (reports, tracks)
    }
}

/// Cycle and NVM-traffic snapshot of one design after a traffic run,
/// as reported by the design-level comparison binaries.
#[derive(Debug, Clone)]
pub struct TrafficRow {
    /// Design name.
    pub name: String,
    /// Core cycles consumed.
    pub cycles: u64,
    /// NVM block reads issued.
    pub reads: u64,
    /// NVM block writes issued.
    pub writes: u64,
}

/// Drives `accesses` uniformly random block writes (from an `StdRng` seeded
/// with `seed`) through a design via the shared [`ProtocolPolicy`] surface
/// and snapshots its cycle and traffic counters.
///
/// # Panics
///
/// Panics if any access fails — traffic runs inject no crashes.
pub fn drive_uniform_writes(
    name: &str,
    oram: &mut dyn ProtocolPolicy,
    accesses: usize,
    seed: u64,
) -> TrafficRow {
    let mut rng = StdRng::seed_from_u64(seed);
    let cap = oram.capacity_blocks();
    let payload = vec![0u8; oram.payload_bytes()];
    for _ in 0..accesses {
        oram.write(rng.gen_range(0..cap), payload.clone())
            .expect("traffic write");
    }
    let stats = oram.nvm_stats();
    TrafficRow {
        name: name.to_string(),
        cycles: oram.clock(),
        reads: stats.reads,
        writes: stats.writes,
    }
}

/// Geometric mean of a slice of positive numbers.
///
/// # Panics
///
/// Panics if `xs` is empty or contains non-positive values.
pub fn geomean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "geomean of empty slice");
    let log_sum: f64 = xs
        .iter()
        .map(|&x| {
            assert!(x > 0.0, "geomean requires positive values");
            x.ln()
        })
        .sum();
    (log_sum / xs.len() as f64).exp()
}

/// A table of per-workload values for several named series, printed in the
/// paper's figure layout (one row per workload, one column per series, plus
/// a geometric-mean row).
#[derive(Debug, Default, Clone)]
pub struct FigureTable {
    series: Vec<String>,
    rows: BTreeMap<String, Vec<f64>>,
    row_order: Vec<String>,
}

impl FigureTable {
    /// Creates a table with the given series (column) names.
    pub fn new(series: &[&str]) -> Self {
        FigureTable {
            series: series.iter().map(|s| s.to_string()).collect(),
            rows: BTreeMap::new(),
            row_order: Vec::new(),
        }
    }

    /// Adds one workload row; `values` must align with the series.
    ///
    /// # Panics
    ///
    /// Panics if `values.len()` differs from the series count.
    pub fn add_row(&mut self, workload: &str, values: Vec<f64>) {
        assert_eq!(values.len(), self.series.len(), "row arity mismatch");
        if !self.rows.contains_key(workload) {
            self.row_order.push(workload.to_string());
        }
        self.rows.insert(workload.to_string(), values);
    }

    /// Per-series geometric means across rows.
    pub fn geomeans(&self) -> Vec<f64> {
        (0..self.series.len())
            .map(|i| {
                let col: Vec<f64> = self.row_order.iter().map(|w| self.rows[w][i]).collect();
                geomean(&col)
            })
            .collect()
    }

    /// Renders the table with a `gmean` footer row.
    pub fn render(&self, title: &str) -> String {
        let mut out = String::new();
        out.push_str(&format!("\n== {title} ==\n"));
        out.push_str(&format!("{:<16}", "workload"));
        for s in &self.series {
            out.push_str(&format!("{s:>16}"));
        }
        out.push('\n');
        for w in &self.row_order {
            out.push_str(&format!("{w:<16}"));
            for v in &self.rows[w] {
                out.push_str(&format!("{v:>16.4}"));
            }
            out.push('\n');
        }
        out.push_str(&format!("{:<16}", "gmean"));
        for g in self.geomeans() {
            out.push_str(&format!("{g:>16.4}"));
        }
        out.push('\n');
        out
    }

    /// Series names.
    pub fn series(&self) -> &[String] {
        &self.series
    }

    /// Looks up one cell.
    pub fn get(&self, workload: &str, series: &str) -> Option<f64> {
        let i = self.series.iter().position(|s| s == series)?;
        self.rows.get(workload).map(|r| r[i])
    }
}

/// Writes a JSON value to `results/<name>.json`, creating the directory.
///
/// # Panics
///
/// Panics on I/O errors — experiment binaries want loud failures.
pub fn write_results_json(name: &str, value: &serde_json::Value) {
    std::fs::create_dir_all("results").expect("create results dir");
    let path = format!("results/{name}.json");
    let mut f = std::fs::File::create(&path).expect("create results file");
    f.write_all(
        serde_json::to_string_pretty(value)
            .expect("serialize")
            .as_bytes(),
    )
    .expect("write results");
    println!("[saved {path}]");
}

/// The paper's Table 3 header, printed by each binary for context.
pub fn print_config_banner(what: &str) {
    println!("PS-ORAM reproduction — {what}");
    println!(
        "config: in-order core 3.2GHz | L1 32KB/2-way | L2 1MB/8-way | \
         Z=4, L={} (paper: 23), stash 200, C_tPos 96 | PCM 400MHz \
         48/60/4/3/1/2 | records/workload={}",
        experiment_levels(),
        records_per_workload()
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[3.0]) - 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn geomean_rejects_zero() {
        geomean(&[0.0, 1.0]);
    }

    #[test]
    fn figure_table_render_and_gmean() {
        let mut t = FigureTable::new(&["a", "b"]);
        t.add_row("w1", vec![1.0, 2.0]);
        t.add_row("w2", vec![4.0, 8.0]);
        let g = t.geomeans();
        assert!((g[0] - 2.0).abs() < 1e-12);
        assert!((g[1] - 4.0).abs() < 1e-12);
        let s = t.render("test");
        assert!(s.contains("w1"));
        assert!(s.contains("gmean"));
        assert_eq!(t.get("w1", "b"), Some(2.0));
        assert_eq!(t.get("w1", "c"), None);
    }

    #[test]
    fn common_cli_splits_shared_flags_from_rest() {
        let cli = CommonCli::from_args(
            [
                "--smoke",
                "--trace-out",
                "t.json",
                "--metrics-out=m.json",
                "--out",
                "r.json",
            ]
            .iter()
            .map(|s| s.to_string())
            .collect(),
        );
        assert_eq!(cli.trace_out.as_deref(), Some("t.json"));
        assert_eq!(cli.metrics_out.as_deref(), Some("m.json"));
        assert_eq!(cli.rest, vec!["--smoke", "--out", "r.json"]);
        assert!(cli.jobs >= 1);
    }

    #[test]
    fn experiment_config_honours_levels() {
        let cfg = experiment_config(ProtocolVariant::PsOram, 2);
        assert_eq!(cfg.oram.levels, experiment_levels());
        assert_eq!(cfg.nvm.channels, 2);
    }
}
