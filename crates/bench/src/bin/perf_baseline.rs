//! Tracked performance baseline (`BENCH_05.json`).
//!
//! Measures the functional speed of the simulator itself — distinct from
//! the *simulated* cycle counts the figure binaries report (see DESIGN.md
//! §"Performance model vs. functional speed"):
//!
//! * AES-128 blocks/sec: byte-wise reference cipher vs the T-table fast
//!   path (the batched-CTR kernel underneath every bucket re-encryption).
//! * CTR keystream throughput through `keystream_into`.
//! * Single-thread ORAM accesses/sec for Path ORAM and Ring ORAM under
//!   their PS variants (payload encryption on — the real hot path).
//! * Freshness-verification overhead: the same Path instance with the
//!   authenticated counter tree armed (inert fault plan — every fetch
//!   verifies tag + counter, no damage is ever injected), reported as
//!   accesses/sec and relative slowdown against the unauthenticated run.
//! * Randomized crash-campaign wall-clock at `--jobs 1` vs `--jobs N`,
//!   asserting the two reports are byte-identical.
//! * Recovery latency over repeated crash→recover cycles: clean, with
//!   the device fault plan armed (authenticate + repair + roll back),
//!   and with the replay adversary armed on top (stale replays and
//!   cross splices that the counter tree must detect during recovery).
//!
//! Usage:
//!   perf_baseline [--smoke] [--out FILE] [--jobs N]
//!
//! `--smoke` shrinks every measurement for CI; the JSON shape is
//! unchanged. Default output file is `BENCH_05.json` in the working
//! directory.

use std::hint::black_box;
use std::time::Instant;

use psoram_bench::drive_uniform_writes;
use psoram_core::ring::{RingConfig, RingOram, RingVariant};
use psoram_core::{OramConfig, PathOram, ProtocolPolicy, ProtocolVariant};
use psoram_crypto::{Aes128, CtrCipher, ReferenceAes128};
use psoram_faultsim::{random_campaign, CampaignConfig};
use psoram_nvm::FaultConfig;

struct Args {
    smoke: bool,
    out: String,
    jobs: usize,
}

fn parse_args() -> Args {
    let mut args = Args {
        smoke: false,
        out: "BENCH_05.json".into(),
        jobs: psoram_faultsim::default_jobs(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => args.smoke = true,
            "--out" => args.out = it.next().unwrap_or_else(|| usage("--out needs a value")),
            "--jobs" => {
                let v = it.next().unwrap_or_else(|| usage("--jobs needs a value"));
                args.jobs = v
                    .parse()
                    .ok()
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| usage("--jobs must be a positive integer"));
            }
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown argument `{other}`")),
        }
    }
    args
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}\n");
    }
    eprintln!(
        "perf_baseline: functional-speed baseline for the simulator\n\n\
         options:\n\
         \x20 --smoke     reduced iteration counts (CI gate)\n\
         \x20 --out FILE  output JSON path (default BENCH_05.json)\n\
         \x20 --jobs N    parallel job count for the campaign comparison\n\
         \x20             (default: all cores)"
    );
    std::process::exit(2);
}

/// Encrypts `blocks` independent counter blocks through `f` and returns
/// blocks/sec, taking the best of three passes (max throughput ≈ least
/// scheduler interference). Counter-mode shape — successive blocks carry
/// no data dependency, exactly like the CTR keystream kernel this
/// baseline exists to track.
fn time_blocks(blocks: u64, mut f: impl FnMut(&[u8; 16]) -> [u8; 16]) -> f64 {
    let mut best = 0.0f64;
    for _ in 0..3 {
        let mut acc = [0u8; 16];
        let t = Instant::now();
        for i in 0..blocks {
            let mut counter = [0x5Au8; 16];
            counter[..8].copy_from_slice(&i.to_be_bytes());
            let out = f(&counter);
            for (a, o) in acc.iter_mut().zip(out) {
                *a ^= o; // fold so no encryption can be elided
            }
        }
        let secs = t.elapsed().as_secs_f64();
        black_box(acc);
        best = best.max(blocks as f64 / secs.max(1e-9));
    }
    best
}

/// Wall-clock recovery latency over `crashes` crash→recover cycles on a
/// PS-ORAM Path instance, with `accesses` of uniform write traffic
/// between crashes.
///
/// With a `mix` given, that fault plan is armed first, so each recovery
/// also authenticates every unit it reads back and performs whatever
/// repairs/rollbacks the injected damage demands — the delta against the
/// clean run is the integrity tax on the recovery path. A poisoned
/// instance (unrepairable damage) is rebuilt and the run continues until
/// `crashes` recoveries have been timed.
struct RecoveryLatency {
    mean_us: f64,
    max_us: f64,
    repairs: u64,
    rollbacks: u64,
    incidents: u64,
    rebuilds: u64,
    replays_detected: u64,
}

fn time_recovery(mix: Option<FaultConfig>, crashes: usize, accesses: usize) -> RecoveryLatency {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    let levels = 10u32;
    let mut cfg = OramConfig::paper_default().with_levels(levels);
    cfg.data_wpq_capacity = cfg.path_slots();
    cfg.posmap_wpq_capacity = cfg.path_slots();
    let build = |epoch: u64| -> Box<dyn ProtocolPolicy> {
        let mut oram: Box<dyn ProtocolPolicy> = Box::new(PathOram::new(
            cfg.clone(),
            ProtocolVariant::PsOram,
            17 ^ epoch,
        ));
        if let Some(mix) = mix {
            oram.enable_device_faults(0xBE9C ^ epoch, mix);
        }
        oram
    };
    let mut oram = build(0);
    let mut rng = StdRng::seed_from_u64(23);
    let cap = oram.capacity_blocks();
    let payload = vec![0u8; oram.payload_bytes()];

    let mut out = RecoveryLatency {
        mean_us: 0.0,
        max_us: 0.0,
        repairs: 0,
        rollbacks: 0,
        incidents: 0,
        rebuilds: 0,
        replays_detected: 0,
    };
    let mut total_secs = 0.0f64;
    let mut measured = 0usize;
    while measured < crashes {
        for _ in 0..accesses {
            // Under an armed plan a write can fail typed (stuck read,
            // poison); the bench tolerates it and lets the rebuild below
            // handle a poisoned instance.
            if oram.write(rng.gen_range(0..cap), payload.clone()).is_err() {
                break;
            }
        }
        if oram.poisoned().is_some() {
            out.rebuilds += 1;
            oram = build(out.rebuilds);
            continue;
        }
        oram.crash_now();
        let t = Instant::now();
        let rec = oram.recover();
        let secs = t.elapsed().as_secs_f64();
        total_secs += secs;
        out.max_us = out.max_us.max(secs * 1e6);
        measured += 1;
        out.repairs += rec.repairs;
        out.rollbacks += rec.rolled_back.len() as u64;
        out.incidents += rec.incidents.len() as u64;
        out.replays_detected += rec.replays_detected + rec.splices_detected;
        if rec.poisoned {
            out.rebuilds += 1;
            oram = build(out.rebuilds);
        }
    }
    out.mean_us = total_secs / crashes as f64 * 1e6;
    out
}

fn main() {
    let args = parse_args();
    let (aes_blocks, ctr_bytes, oram_accesses) = if args.smoke {
        (50_000u64, 1usize << 20, 400usize)
    } else {
        (2_000_000u64, 64usize << 20, 8_000usize)
    };

    eprintln!("[aes: {aes_blocks} blocks, reference vs T-table]");
    let reference = ReferenceAes128::new(&[0x11; 16]);
    let ttable = Aes128::new(&[0x11; 16]);
    let ref_bps = time_blocks(aes_blocks, |b| reference.encrypt_block(b));
    let tt_bps = time_blocks(aes_blocks, |b| ttable.encrypt_block(b));

    eprintln!("[ctr: {ctr_bytes} keystream bytes]");
    let ctr = CtrCipher::new(Aes128::new(&[0x22; 16]));
    let mut buf = vec![0u8; 64 * 1024];
    let t = Instant::now();
    let mut produced = 0usize;
    let mut iv = 0u128;
    while produced < ctr_bytes {
        ctr.keystream_into(iv, &mut buf);
        iv = iv.wrapping_add((buf.len() / 16) as u128);
        produced += buf.len();
        black_box(&buf);
    }
    let ctr_bytes_per_sec = produced as f64 / t.elapsed().as_secs_f64().max(1e-9);

    eprintln!("[oram: {oram_accesses} accesses, Path + Ring, single thread]");
    let levels = 12u32;
    let mut path_cfg = OramConfig::paper_default().with_levels(levels);
    path_cfg.data_wpq_capacity = path_cfg.path_slots();
    path_cfg.posmap_wpq_capacity = path_cfg.path_slots();
    let mut path: Box<dyn ProtocolPolicy> =
        Box::new(PathOram::new(path_cfg.clone(), ProtocolVariant::PsOram, 11));
    let t = Instant::now();
    drive_uniform_writes("Path", &mut *path, oram_accesses, 3);
    let path_aps = oram_accesses as f64 / t.elapsed().as_secs_f64().max(1e-9);

    // Same instance shape with the authenticated counter tree armed and an
    // inert fault plan: every fetch verifies tag + counter against the
    // trusted tree, but no damage ever lands. The delta against the plain
    // run is the freshness-verification tax on the access path.
    eprintln!("[oram: {oram_accesses} accesses, Path with freshness verification armed]");
    let mut path_auth: Box<dyn ProtocolPolicy> =
        Box::new(PathOram::new(path_cfg, ProtocolVariant::PsOram, 11));
    path_auth.enable_device_faults(0xF2E5, FaultConfig::disabled());
    let t = Instant::now();
    drive_uniform_writes("Path+auth", &mut *path_auth, oram_accesses, 3);
    let path_auth_aps = oram_accesses as f64 / t.elapsed().as_secs_f64().max(1e-9);

    let mut ring_cfg = RingConfig {
        levels,
        ..RingConfig::small_test()
    };
    ring_cfg.wpq_capacity = ring_cfg.bucket_physical_slots() * (levels as usize + 1);
    let mut ring: Box<dyn ProtocolPolicy> =
        Box::new(RingOram::new(ring_cfg, RingVariant::PsRing, 11));
    let t = Instant::now();
    drive_uniform_writes("Ring", &mut *ring, oram_accesses, 3);
    let ring_aps = oram_accesses as f64 / t.elapsed().as_secs_f64().max(1e-9);

    let (rec_crashes, rec_accesses) = if args.smoke { (8, 60) } else { (40, 200) };
    eprintln!(
        "[recovery: {rec_crashes} crash->recover cycles, clean vs device faults vs replay mix]"
    );
    // Crash-drain damage only (torn rounds, lost/duplicated signals, bit
    // flips): read faults during the traffic phase would poison and
    // rebuild the instance, shrinking the committed set and making the
    // per-mix means incomparable.
    let device_mix = FaultConfig {
        transient_read: 0.0,
        stuck_read: 0.0,
        ..FaultConfig::campaign_default()
    };
    let replay_mix = FaultConfig {
        transient_read: 0.0,
        stuck_read: 0.0,
        read_replay: 0.0,
        ..FaultConfig::replay_mix()
    };
    let rec_clean = time_recovery(None, rec_crashes, rec_accesses);
    let rec_device = time_recovery(Some(device_mix), rec_crashes, rec_accesses);
    let rec_replay = time_recovery(Some(replay_mix), rec_crashes, rec_accesses);

    eprintln!(
        "[campaign: random smoke sweep, --jobs 1 vs --jobs {}]",
        args.jobs
    );
    let cfg = CampaignConfig::smoke();
    std::env::set_var(psoram_faultsim::par::JOBS_ENV, "1");
    let t = Instant::now();
    let serial_report = random_campaign(&cfg);
    let serial_secs = t.elapsed().as_secs_f64();
    std::env::set_var(psoram_faultsim::par::JOBS_ENV, args.jobs.to_string());
    let t = Instant::now();
    let parallel_report = random_campaign(&cfg);
    let parallel_secs = t.elapsed().as_secs_f64();
    std::env::remove_var(psoram_faultsim::par::JOBS_ENV);
    let identical = serde_json::to_string(&serial_report).expect("serialize")
        == serde_json::to_string(&parallel_report).expect("serialize");
    assert!(
        identical,
        "campaign report differs between --jobs 1 and --jobs {}: \
         the deterministic runner is broken",
        args.jobs
    );

    let report = serde_json::json!({
        "bench": "perf_baseline",
        "smoke": args.smoke,
        "cores": psoram_faultsim::default_jobs(),
        "aes": {
            "blocks": aes_blocks,
            "reference_blocks_per_sec": ref_bps,
            "ttable_blocks_per_sec": tt_bps,
            "ttable_speedup": tt_bps / ref_bps,
        },
        "ctr_keystream": {
            "bytes": produced,
            "bytes_per_sec": ctr_bytes_per_sec,
        },
        "oram_single_thread": {
            "accesses": oram_accesses,
            "levels": levels,
            "path_ps_accesses_per_sec": path_aps,
            "ring_ps_accesses_per_sec": ring_aps,
        },
        "freshness_verification": {
            "accesses": oram_accesses,
            "path_ps_plain_accesses_per_sec": path_aps,
            "path_ps_authenticated_accesses_per_sec": path_auth_aps,
            "verification_slowdown": path_aps / path_auth_aps.max(1e-9),
        },
        "recovery_latency": {
            "crashes": rec_crashes,
            "accesses_between_crashes": rec_accesses,
            "clean": {
                "mean_us": rec_clean.mean_us,
                "max_us": rec_clean.max_us,
            },
            "device_faults": {
                "mean_us": rec_device.mean_us,
                "max_us": rec_device.max_us,
                "repairs": rec_device.repairs,
                "rollbacks": rec_device.rollbacks,
                "incidents": rec_device.incidents,
                "rebuilds": rec_device.rebuilds,
                "slowdown_vs_clean": rec_device.mean_us / rec_clean.mean_us.max(1e-9),
            },
            "replay_mix": {
                "mean_us": rec_replay.mean_us,
                "max_us": rec_replay.max_us,
                "repairs": rec_replay.repairs,
                "rollbacks": rec_replay.rollbacks,
                "incidents": rec_replay.incidents,
                "rebuilds": rec_replay.rebuilds,
                "replays_detected": rec_replay.replays_detected,
                "slowdown_vs_clean": rec_replay.mean_us / rec_clean.mean_us.max(1e-9),
            },
        },
        "campaign_wall_clock": {
            "mode": "random-smoke",
            "jobs_serial": 1,
            "jobs_parallel": args.jobs,
            "serial_secs": serial_secs,
            "parallel_secs": parallel_secs,
            "speedup": serial_secs / parallel_secs.max(1e-9),
            "reports_identical": identical,
        },
    });
    let json = serde_json::to_string_pretty(&report).expect("serialize");
    std::fs::write(&args.out, &json).unwrap_or_else(|e| {
        eprintln!("error: cannot write {}: {e}", args.out);
        std::process::exit(2);
    });
    println!("{json}");
    eprintln!("[saved {}]", args.out);
    eprintln!(
        "AES T-table speedup: {:.2}x | CTR: {:.1} MiB/s | Path: {:.0} acc/s | \
         Ring: {:.0} acc/s | campaign {:.2}s -> {:.2}s at {} job(s)",
        tt_bps / ref_bps,
        ctr_bytes_per_sec / (1024.0 * 1024.0),
        path_aps,
        ring_aps,
        serial_secs,
        parallel_secs,
        args.jobs
    );
    eprintln!(
        "recovery: clean {:.0} us -> device-faults {:.0} us -> replay-mix {:.0} us mean \
         ({} repairs, {} rollbacks, {} rebuilds over {} crashes; \
         {} replays/splices detected under the replay mix)",
        rec_clean.mean_us,
        rec_device.mean_us,
        rec_replay.mean_us,
        rec_device.repairs,
        rec_device.rollbacks,
        rec_device.rebuilds,
        rec_crashes,
        rec_replay.replays_detected
    );
    eprintln!(
        "freshness: {:.0} acc/s plain -> {:.0} acc/s authenticated ({:.2}x slowdown)",
        path_aps,
        path_auth_aps,
        path_aps / path_auth_aps.max(1e-9)
    );
}
