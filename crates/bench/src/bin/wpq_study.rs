//! WPQ sizing study (§4.2.3): performance and eviction batching of
//! PS-ORAM as the persistence domain shrinks from a full path to the
//! 4-entry configuration, plus crash-recovery validation at each size.

use psoram_core::{BlockAddr, CrashPoint, OramConfig, PathOram, ProtocolVariant};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    psoram_bench::print_config_banner("WPQ sizing study");
    let accesses: usize = std::env::var("PSORAM_RECORDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(10_000);
    let levels = 12u32;

    println!(
        "\n{:>10}{:>14}{:>14}{:>16}{:>18}{:>12}",
        "WPQ size", "cycles", "vs full", "batches/round", "drain energy(uJ)", "recovers?"
    );
    let mut baseline_cycles = None;
    let mut rows = Vec::new();
    let full = OramConfig::paper_default().with_levels(levels).path_slots();
    for entries in [full, 24, 12, 8, 4] {
        let mut cfg = OramConfig::paper_default().with_levels(levels);
        cfg.data_wpq_capacity = entries;
        cfg.posmap_wpq_capacity = entries;
        let cap = cfg.capacity_blocks();

        // Performance run.
        let mut oram = PathOram::new(cfg.clone(), ProtocolVariant::PsOram, 11);
        oram.set_payload_encryption(false);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..accesses {
            oram.write(BlockAddr(rng.gen_range(0..cap)), vec![0u8; 8])
                .unwrap();
        }
        let cycles = oram.clock();
        let base = *baseline_cycles.get_or_insert(cycles as f64);
        let batches_per_round =
            oram.stats().eviction_batches as f64 / oram.stats().eviction_rounds as f64;

        // Crash-recovery validation at this size.
        let mut crash_oram = PathOram::new(cfg, ProtocolVariant::PsOram, 13);
        for i in 0..40u64 {
            crash_oram.write(BlockAddr(i), vec![i as u8; 8]).unwrap();
        }
        crash_oram.inject_crash(CrashPoint::DuringEviction(1));
        let _ = crash_oram.read(BlockAddr(3));
        let recovers = if crash_oram.is_crashed() {
            crash_oram.recover().consistent && crash_oram.verify_contents(true).is_ok()
        } else {
            true
        };

        let energy = psoram_energy::DrainCostModel::paper_config(entries)
            .ps_oram()
            .energy_uj();
        println!(
            "{:>10}{:>14}{:>14.3}{:>16.2}{:>18.2}{:>12}",
            entries,
            cycles,
            cycles as f64 / base,
            batches_per_round,
            energy,
            recovers
        );
        rows.push(serde_json::json!({
            "entries": entries,
            "cycles": cycles,
            "batches_per_round": batches_per_round,
            "drain_energy_uj": energy,
            "recovers": recovers,
        }));
    }
    println!(
        "\nShrinking the WPQ multiplies eviction sub-rounds (identity placement keeps\n\
         them consistent) and costs a little time, while the crash-drain energy falls\n\
         to microjoules — the paper's §4.2.3 trade-off."
    );
    psoram_bench::write_results_json("wpq_study", &serde_json::json!(rows));
}
