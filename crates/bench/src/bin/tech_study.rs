//! Memory-technology sensitivity: Table 3(c) lists both PCM and STT-RAM
//! timing for the main memory. This study re-runs the Figure-5 comparison
//! with STT-RAM as the main memory and shows how the persistence overheads
//! shift when the write pulse is 4x cheaper.

use psoram_bench::{geomean, records_per_workload, warmup_records};
use psoram_core::ProtocolVariant;
use psoram_nvm::NvmConfig;
use psoram_system::{System, SystemConfig};
use psoram_trace::SpecWorkload;

fn run(variant: ProtocolVariant, nvm: NvmConfig, w: SpecWorkload, n: usize) -> f64 {
    let mut cfg = SystemConfig::experiment(variant, 1);
    cfg.nvm = nvm;
    let mut sys = System::new(cfg);
    sys.run_workload_with_warmup(w, warmup_records(), n)
        .exec_cycles as f64
}

fn main() {
    psoram_bench::print_config_banner("main-memory technology sensitivity (PCM vs STT-RAM)");
    let n = records_per_workload();
    let variants = [
        ProtocolVariant::Baseline,
        ProtocolVariant::NaivePsOram,
        ProtocolVariant::PsOram,
    ];
    let workloads = [
        SpecWorkload::Mcf,
        SpecWorkload::Bzip2,
        SpecWorkload::Sphinx3,
        SpecWorkload::Lbm,
    ];

    println!(
        "\n{:<16}{:>18}{:>18}{:>18}",
        "variant", "PCM overhead", "STT-RAM overhead", "STT/PCM speedup"
    );
    let mut rows = Vec::new();
    let mut base_pcm = Vec::new();
    let mut base_stt = Vec::new();
    for w in workloads {
        base_pcm.push(run(
            ProtocolVariant::Baseline,
            NvmConfig::paper_pcm(1),
            w,
            n,
        ));
        base_stt.push(run(
            ProtocolVariant::Baseline,
            NvmConfig::paper_sttram(1),
            w,
            n,
        ));
    }
    for v in variants {
        let mut pcm_ratio = Vec::new();
        let mut stt_ratio = Vec::new();
        let mut stt_speedup = Vec::new();
        for (i, w) in workloads.iter().enumerate() {
            let pcm = run(v, NvmConfig::paper_pcm(1), *w, n);
            let stt = run(v, NvmConfig::paper_sttram(1), *w, n);
            pcm_ratio.push(pcm / base_pcm[i]);
            stt_ratio.push(stt / base_stt[i]);
            stt_speedup.push(pcm / stt);
        }
        let (gp, gs, gx) = (
            geomean(&pcm_ratio),
            geomean(&stt_ratio),
            geomean(&stt_speedup),
        );
        println!(
            "{:<16}{:>17.2}%{:>17.2}%{:>17.2}x",
            v.label(),
            (gp - 1.0) * 100.0,
            (gs - 1.0) * 100.0,
            gx
        );
        rows.push(serde_json::json!({
            "variant": v.label(),
            "pcm_overhead": gp - 1.0,
            "stt_overhead": gs - 1.0,
            "stt_speedup": gx,
        }));
    }
    println!(
        "\nSTT-RAM's short write pulse shrinks the absolute cost of every design and\n\
         compresses the *relative* persistence overheads: the cheaper writes are,\n\
         the less Naïve's extra metadata writes hurt — and PS-ORAM stays near zero\n\
         under both technologies."
    );
    psoram_bench::write_results_json("tech_study", &serde_json::json!(rows));
}
