//! Memory-scheduler ablation: read-priority write buffering in the NVM
//! controller (real PCM controllers park writes so the 60-cycle write
//! pulse stays off the read critical path). Shows its interaction with
//! ORAM's read-path-then-write-path traffic.

use psoram_core::{BlockAddr, OramConfig, PathOram, ProtocolVariant};
use psoram_nvm::NvmConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    psoram_bench::print_config_banner("write-buffer scheduler study");
    let accesses: usize = std::env::var("PSORAM_RECORDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(6_000);
    let levels = 14u32;

    println!(
        "\n{:>14}{:>14}{:>12}{:>16}{:>16}",
        "buffer size", "cycles", "vs none", "mean access", "drained writes"
    );
    let mut base = None;
    let mut rows = Vec::new();
    for buffer in [0usize, 32, 128, 512] {
        let mut nvm = NvmConfig::paper_pcm(1);
        nvm.write_buffer_entries = buffer;
        let mut cfg = OramConfig::paper_default().with_levels(levels);
        cfg.data_wpq_capacity = cfg.path_slots();
        cfg.posmap_wpq_capacity = cfg.path_slots();
        let cap = cfg.capacity_blocks();
        let mut oram = PathOram::with_nvm(cfg, ProtocolVariant::PsOram, nvm, 11);
        oram.set_payload_encryption(false);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..accesses {
            oram.write(BlockAddr(rng.gen_range(0..cap)), vec![0u8; 8])
                .unwrap();
        }
        let cycles = oram.clock();
        let b = *base.get_or_insert(cycles as f64);
        println!(
            "{:>14}{:>14}{:>12.3}{:>16.0}{:>16}",
            buffer,
            cycles,
            cycles as f64 / b,
            oram.stats().mean_access_cycles(),
            oram.nvm().drained_writes(),
        );
        rows.push(serde_json::json!({
            "buffer": buffer,
            "cycles": cycles,
            "mean_access_cycles": oram.stats().mean_access_cycles(),
            "drained_writes": oram.nvm().drained_writes(),
        }));
    }
    println!(
        "\nNegative result, and an informative one: write buffering — a standard PCM\n\
         controller optimization for irregular write streams — does NOT help ORAM.\n\
         Path ORAM already batches its writes into full-path bursts that amortize\n\
         the 60-cycle write pulse across banks; a buffer merely defers the same bank\n\
         work into a later window where it collides with the next path read (worst\n\
         at 512 entries: half-buffer drains of 256 writes stall everything behind\n\
         them). The ORAM access protocol is, in effect, its own write scheduler.\n\
         Durability is unaffected either way: it comes from the WPQ persistence\n\
         domain, which commits before requests enter the memory controller."
    );
    psoram_bench::write_results_json("scheduler_study", &serde_json::json!(rows));
}
