//! Hybrid-memory extension study (§4.5 future work): mirror the top tree
//! levels in a fast volatile buffer with write-through persistence, sweep
//! the cached depth, and report latency/traffic savings.

use psoram_core::{BlockAddr, OramConfig, PathOram, ProtocolVariant};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    psoram_bench::print_config_banner("top-of-tree cache study (hybrid memory)");
    let accesses: usize = std::env::var("PSORAM_RECORDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(10_000);
    let levels = 14u32;

    println!(
        "\n{:>14}{:>14}{:>12}{:>14}{:>14}{:>14}",
        "cached levels", "buffer bytes", "cycles", "vs uncached", "NVM reads", "NVM writes"
    );
    let mut base_cycles = None;
    let mut rows = Vec::new();
    for cached in [0u32, 2, 4, 6, 8] {
        let mut cfg = OramConfig::paper_default().with_levels(levels);
        cfg.data_wpq_capacity = cfg.path_slots();
        cfg.posmap_wpq_capacity = cfg.path_slots();
        let cap = cfg.capacity_blocks();
        let mut oram = PathOram::new(cfg, ProtocolVariant::PsOram, 11);
        oram.set_payload_encryption(false);
        oram.set_top_cache_levels(cached);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..accesses {
            oram.write(BlockAddr(rng.gen_range(0..cap)), vec![0u8; 8])
                .unwrap();
        }
        let cycles = oram.clock();
        let base = *base_cycles.get_or_insert(cycles as f64);
        println!(
            "{:>14}{:>14}{:>12}{:>14.3}{:>14}{:>14}",
            cached,
            oram.top_cache_bytes(),
            cycles,
            cycles as f64 / base,
            oram.nvm_stats().reads,
            oram.nvm_stats().writes
        );
        rows.push(serde_json::json!({
            "cached_levels": cached,
            "buffer_bytes": oram.top_cache_bytes(),
            "cycles": cycles,
            "nvm_reads": oram.nvm_stats().reads,
            "nvm_writes": oram.nvm_stats().writes,
        }));
    }
    println!(
        "\nEach cached level removes Z block reads per access while the write-through\n\
         policy keeps NVM write traffic — and therefore crash consistency — unchanged.\n\
         Crash tests for this mode live in crates/core/tests/controller_tests.rs."
    );
    psoram_bench::write_results_json("topcache_study", &serde_json::json!(rows));
}
