//! Regenerates **Table 2**: estimated draining energy and time for
//! eADR-cache / eADR-ORAM vs PS-ORAM (96- and 4-entry WPQs).

use psoram_energy::DrainCostModel;

fn fmt_energy(j: f64) -> String {
    if j >= 1.0 {
        format!("{j:.3}J")
    } else if j >= 1e-3 {
        format!("{:.3}mJ", j * 1e3)
    } else {
        format!("{:.3}uJ", j * 1e6)
    }
}

fn fmt_time(s: f64) -> String {
    if s >= 1e-3 {
        format!("{:.3}ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3}us", s * 1e6)
    } else {
        format!("{:.3}ns", s * 1e9)
    }
}

fn main() {
    psoram_bench::print_config_banner("Table 2: drain energy/time, eADR vs PS-ORAM");
    let m96 = DrainCostModel::paper_config(96);
    let m4 = DrainCostModel::paper_config(4);

    let eadr_cache = m96.eadr_cache();
    let eadr_oram = m96.eadr_oram();
    let ps96 = m96.ps_oram();
    let ps4 = m4.ps_oram();

    println!("\nSystem         |  eADR-cache |   eADR-ORAM | PS-ORAM(96) | PS-ORAM(4)");
    println!("---------------+-------------+-------------+-------------+-----------");
    println!(
        "Energy         | {:>11} | {:>11} | {:>11} | {:>10}",
        fmt_energy(eadr_cache.energy_joules),
        fmt_energy(eadr_oram.energy_joules),
        fmt_energy(ps96.energy_joules),
        fmt_energy(ps4.energy_joules),
    );
    println!(
        "Time           | {:>11} | {:>11} | {:>11} | {:>10}",
        fmt_time(eadr_cache.time_seconds),
        fmt_time(eadr_oram.time_seconds),
        fmt_time(ps96.time_seconds),
        fmt_time(ps4.time_seconds),
    );
    println!(
        "\nNormalized to PS-ORAM (96-entry): eADR-cache {:.0}x, eADR-ORAM {:.0}x",
        m96.energy_ratio_eadr_cache(),
        m96.energy_ratio_eadr_oram(),
    );
    println!(
        "Normalized to PS-ORAM (4-entry):  eADR-cache {:.0}x, eADR-ORAM {:.0}x",
        eadr_cache.energy_joules / ps4.energy_joules,
        eadr_oram.energy_joules / ps4.energy_joules,
    );
    println!("\nPaper reference: eADR-cache 12.653mJ/26.638us; eADR-ORAM 2.286J/4.817ms;");
    println!("PS-ORAM 76.530uJ/161.134ns (96) and 2.83uJ/6.713ns (4); ratios 165x / 29870x.");

    psoram_bench::write_results_json(
        "table2",
        &serde_json::json!({
            "eadr_cache": { "energy_j": eadr_cache.energy_joules, "time_s": eadr_cache.time_seconds },
            "eadr_oram": { "energy_j": eadr_oram.energy_joules, "time_s": eadr_oram.time_seconds },
            "ps_oram_96": { "energy_j": ps96.energy_joules, "time_s": ps96.time_seconds },
            "ps_oram_4": { "energy_j": ps4.energy_joules, "time_s": ps4.time_seconds },
            "ratio_energy_eadr_oram_vs_ps96": m96.energy_ratio_eadr_oram(),
            "ratio_energy_eadr_cache_vs_ps96": m96.energy_ratio_eadr_cache(),
            "ratio_time_eadr_oram_vs_ps96": m96.time_ratio_eadr_oram(),
        }),
    );
}
