//! Tracked endurance benchmark (`BENCH_07.json`).
//!
//! Three endurance artifacts in one report, all in **simulated**
//! quantities (seeds, cycles, counters), so the JSON is byte-identical
//! across runs, worker counts, and machines:
//!
//! * **Lifetime projection** — the 14 calibrated SPEC workload models
//!   drive per-line write rates through each hardened design's measured
//!   hot-line profile under every wear-leveling scheme
//!   (none / Start-Gap / remap-on-retire), yielding years-to-failure
//!   per (workload, design, scheme) cell.
//! * **Wear torture** — 500+ seeded runs (84 per design × scheme cell
//!   at the default config) on pre-aged, tiny-budget silicon with
//!   crashes landing mid-gap-move and mid-retirement. The verdict the
//!   binary enforces: zero silent corruption — every wear-induced fault
//!   ends detected, repaired, retired, typed-rolled-back, or refused.
//! * **Wear fleet** — N sibling instances with exactly one near-EOL
//!   shard: its retirements/repairs and latency tail are reported while
//!   every healthy sibling is byte-identical to a wear-free fleet.
//!
//! The drain-cost table (`psoram-energy`) is folded in so the lifetime
//! story carries its energy context: what one flush-on-crash costs
//! eADR-style architectures vs the PS-ORAM WPQ drain that the wear
//! engine's mapping commits piggyback on.
//!
//! Usage:
//!   lifetime_campaign [--smoke] [--seed N] [--out FILE] [--jobs N] [--quiet]

use psoram_energy::DrainCostModel;
use psoram_faultsim::{
    lifetime_campaign, wear_campaign, wear_fleet_campaign, LifetimeCampaignConfig,
    WearCampaignConfig, WearFleetConfig,
};
use psoram_nvm::WearScheme;

struct Args {
    smoke: bool,
    seed: Option<u64>,
    out: String,
    jobs: usize,
    quiet: bool,
}

fn parse_args() -> Args {
    let common = psoram_bench::CommonCli::parse();
    let mut args = Args {
        smoke: false,
        seed: None,
        out: "BENCH_07.json".into(),
        jobs: common.jobs,
        quiet: false,
    };
    let mut it = common.rest.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => args.smoke = true,
            "--quiet" => args.quiet = true,
            "--seed" => {
                let v = it.next().unwrap_or_else(|| usage("--seed needs a value"));
                args.seed = Some(
                    v.parse()
                        .unwrap_or_else(|_| usage("--seed must be an integer")),
                );
            }
            "--out" => args.out = it.next().unwrap_or_else(|| usage("--out needs a value")),
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown argument `{other}`")),
        }
    }
    args
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}\n");
    }
    eprintln!(
        "lifetime_campaign: endurance adversary — lifetime projection,\n\
         wear torture, and the wear-aware fleet (BENCH_07)\n\n\
         options:\n\
         \x20 --smoke     reduced workload (CI gate)\n\
         \x20 --seed N    override the campaign seed\n\
         \x20 --out FILE  output JSON path (default BENCH_07.json)\n\
         \x20 --jobs N    worker threads (report is identical at any count)\n\
         \x20 --quiet     suppress the human-readable summary"
    );
    std::process::exit(2);
}

/// Per-(design, scheme) aggregate of the torture runs — the committed
/// artifact carries the 6 cells, not the 500+ individual run records.
fn torture_cells(report: &psoram_faultsim::WearCampaignReport) -> Vec<serde_json::Value> {
    let mut cells: Vec<(String, String)> = Vec::new();
    for r in &report.runs {
        let key = (r.design.clone(), r.scheme.clone());
        if !cells.contains(&key) {
            cells.push(key);
        }
    }
    cells
        .into_iter()
        .map(|(design, scheme)| {
            let runs: Vec<_> = report
                .runs
                .iter()
                .filter(|r| r.design == design && r.scheme == scheme)
                .collect();
            serde_json::json!({
                "design": design,
                "scheme": scheme,
                "runs": runs.len() as u64,
                "wear_faults_injected": runs.iter().map(|r| r.wear_faults_injected).sum::<u64>(),
                "wear_stuck_injected": runs.iter().map(|r| r.wear_stuck_injected).sum::<u64>(),
                "retirements": runs.iter().map(|r| r.retirements).sum::<u64>(),
                "repairs": runs.iter().map(|r| r.repairs).sum::<u64>(),
                "gap_moves": runs.iter().map(|r| r.gap_moves).sum::<u64>(),
                "map_commits": runs.iter().map(|r| r.map_commits).sum::<u64>(),
                "map_reverts": runs.iter().map(|r| r.map_reverts).sum::<u64>(),
                "failsafe_runs": runs.iter().filter(|r| r.failsafe).count() as u64,
                "silent_violations": runs.iter().map(|r| r.silent_violations).sum::<u64>(),
            })
        })
        .collect()
}

fn main() {
    let args = parse_args();
    psoram_bench::print_config_banner("endurance campaigns (BENCH_07)");

    let mut life_cfg = if args.smoke {
        LifetimeCampaignConfig::smoke()
    } else {
        LifetimeCampaignConfig::default()
    };
    let mut wear_cfg = if args.smoke {
        WearCampaignConfig::smoke()
    } else {
        WearCampaignConfig::default()
    };
    let mut fleet_cfg = WearFleetConfig::smoke();
    if let Some(seed) = args.seed {
        life_cfg.seed = seed;
        wear_cfg.seed = seed;
        fleet_cfg.fleet.seed = seed;
    }
    life_cfg.jobs = args.jobs;
    wear_cfg.jobs = args.jobs;
    fleet_cfg.fleet.jobs = args.jobs;
    eprintln!(
        "[lifetime: {} probe accesses, 14 workloads; torture: {} runs; fleet: {} instances]",
        life_cfg.probe_accesses,
        wear_cfg.total_runs(),
        fleet_cfg.fleet.instances,
    );

    let lifetime = lifetime_campaign(&life_cfg);
    let torture = wear_campaign(&wear_cfg);
    let fleet = wear_fleet_campaign(&fleet_cfg);

    // Worker-count identity self-check on the projection (the cheapest
    // of the three artifacts to re-run serially).
    let serial = lifetime_campaign(&LifetimeCampaignConfig {
        jobs: 1,
        ..life_cfg.clone()
    });
    assert_eq!(
        serde_json::to_string(&serial).expect("serialize"),
        serde_json::to_string(&lifetime).expect("serialize"),
        "lifetime projection differs between --jobs 1 and --jobs {}: \
         the deterministic runner is broken",
        args.jobs
    );

    let m96 = DrainCostModel::paper_config(96);
    let m4 = DrainCostModel::paper_config(4);
    let report = serde_json::json!({
        "bench": "lifetime_campaign",
        "smoke": args.smoke,
        "lifetime": serde_json::to_value(&lifetime),
        "wear_torture": {
            "seed": torture.seed,
            "runs": torture.runs.len() as u64,
            "zero_silent_corruption": torture.zero_silent_corruption(),
            "total_wear_faults": torture.total_wear_faults(),
            "total_retirements": torture.total_retirements(),
            "failsafe_runs": torture.failsafe_runs(),
            "cells": torture_cells(&torture),
        },
        "wear_fleet": serde_json::to_value(&fleet),
        "drain_cost": {
            "wpq_entries": 96,
            "eadr_cache": serde_json::to_value(&m96.eadr_cache()),
            "eadr_oram": serde_json::to_value(&m96.eadr_oram()),
            "ps_oram_wpq96": serde_json::to_value(&m96.ps_oram()),
            "ps_oram_wpq4": serde_json::to_value(&m4.ps_oram()),
            "energy_ratio_eadr_cache": m96.energy_ratio_eadr_cache(),
            "energy_ratio_eadr_oram": m96.energy_ratio_eadr_oram(),
        },
    });

    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    if let Err(e) = std::fs::write(&args.out, &json) {
        eprintln!("error: cannot write --out {}: {e}", args.out);
        std::process::exit(2);
    }
    println!("[saved {}]", args.out);

    if !args.quiet {
        for scheme in WearScheme::all() {
            // Scientific notation: at the simulated small-tree geometry
            // the hot line takes a large share of every access's drain,
            // so absolute lifetimes are tiny — the cross-scheme ratio is
            // the signal (see EXPERIMENTS.md).
            eprintln!(
                "  lifetime mean ({:>9}): {:>12.3e} years ({:.1}x none)",
                scheme.label(),
                lifetime.mean_years(scheme.label()),
                lifetime.mean_years(scheme.label())
                    / lifetime
                        .mean_years(WearScheme::None.label())
                        .max(f64::MIN_POSITIVE),
            );
        }
        eprintln!(
            "  torture: {} runs, {} wear faults, {} retirements, {} fail-safes, silent corruption: {}",
            torture.runs.len(),
            torture.total_wear_faults(),
            torture.total_retirements(),
            torture.failsafe_runs(),
            if torture.zero_silent_corruption() { "none" } else { "DETECTED" },
        );
        let w = &fleet.wear;
        eprintln!(
            "  fleet: worn instance {} absorbed {} faults ({} retirements, {} repairs), \
             p50 {} cyc, p99 {} cyc{}",
            w.instance,
            w.wear_faults_injected,
            w.retirements,
            w.repairs,
            w.p50_cycles,
            w.p99_cycles,
            if w.poisoned { " [fail-safe latch]" } else { "" },
        );
    }

    // The verdicts the binary enforces.
    let mut failed = false;
    if !torture.zero_silent_corruption() {
        eprintln!("FAIL (torture): a wear run diverged silently from the shadow oracle");
        failed = true;
    }
    if torture.total_wear_faults() == 0 {
        eprintln!("FAIL (torture): the endurance adversary injected nothing");
        failed = true;
    }
    let expected_rows =
        14 * psoram_faultsim::wear_sweep_set().len() * psoram_nvm::WearScheme::all().len();
    if lifetime.rows.len() != expected_rows {
        eprintln!(
            "FAIL (lifetime): {} rows, expected {expected_rows}",
            lifetime.rows.len()
        );
        failed = true;
    }
    if lifetime
        .rows
        .iter()
        .any(|r| !r.years_to_failure.is_finite() || r.years_to_failure <= 0.0)
    {
        eprintln!("FAIL (lifetime): a cell projected a non-finite or non-positive lifetime");
        failed = true;
    }
    for lane in &fleet.lanes {
        if lane.instance != fleet.wear.instance && !lane.verify_ok {
            eprintln!(
                "FAIL (fleet): healthy sibling {} failed verify",
                lane.instance
            );
            failed = true;
        }
    }
    if !fleet.wear.poisoned && !fleet.lanes[fleet.wear.instance as usize].verify_ok {
        eprintln!("FAIL (fleet): the worn instance neither verified nor failed safe");
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    if !args.quiet {
        eprintln!(
            "PASS: zero silent corruption across {} wear runs; {} lifetime cells projected",
            torture.runs.len(),
            lifetime.rows.len()
        );
    }
}
