//! Stash occupancy study: the §5.1 sizing argument ("to minimize the
//! possibility of stash overflow, the ORAM utilization rate is set to
//! 50%"; Table 3 sizes the stash at 200 entries).
//!
//! Sweeps the utilization and reports the stash high-water mark over long
//! random runs, demonstrating why 200 entries is comfortable at 50%.

use psoram_core::{BlockAddr, OramConfig, PathOram, ProtocolVariant};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    psoram_bench::print_config_banner("stash occupancy study");
    let accesses: usize = std::env::var("PSORAM_RECORDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(20_000);

    println!(
        "\n{:>12}{:>12}{:>16}{:>16}{:>14}",
        "utilization", "levels", "max stash", "max temp-pos", "leftover evts"
    );
    let mut rows = Vec::new();
    for util in [0.3f64, 0.5, 0.7, 0.9] {
        for levels in [10u32, 12] {
            let mut cfg = OramConfig::paper_default().with_levels(levels);
            cfg.utilization = util;
            cfg.stash_capacity = 4096; // headroom so we can observe the peak
            cfg.temp_posmap_capacity = 4096;
            cfg.data_wpq_capacity = cfg.path_slots();
            cfg.posmap_wpq_capacity = cfg.path_slots();
            let cap = cfg.capacity_blocks();
            let mut oram = PathOram::new(cfg, ProtocolVariant::PsOram, 11);
            oram.set_payload_encryption(false);
            let mut rng = StdRng::seed_from_u64(3);
            for _ in 0..accesses {
                let addr = BlockAddr(rng.gen_range(0..cap));
                oram.write(addr, vec![0u8; 8]).expect("stash headroom");
            }
            println!(
                "{:>12.1}{:>12}{:>16}{:>16}{:>14}",
                util,
                levels,
                oram.stash_max_occupancy(),
                oram.temp_posmap_len(),
                oram.stats().eviction_leftovers
            );
            rows.push(serde_json::json!({
                "utilization": util,
                "levels": levels,
                "max_stash": oram.stash_max_occupancy(),
                "eviction_leftovers": oram.stats().eviction_leftovers,
            }));
        }
    }
    println!(
        "\nAt 50% utilization the peak stash stays far below Table 3's 200 entries;\n\
         pushing utilization toward 90% makes occupancy climb — the paper's sizing rationale."
    );
    psoram_bench::write_results_json("stash_study", &serde_json::json!(rows));
}
