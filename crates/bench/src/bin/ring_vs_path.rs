//! Extension experiment: PS-ORAM's crash-consistency machinery applied to
//! **Ring ORAM** (the paper's "general ORAM protocols" claim), compared
//! with Path ORAM on bandwidth and persistence overhead.

use psoram_core::ring::{RingConfig, RingOram, RingVariant};
use psoram_core::{BlockAddr, OramConfig, PathOram, ProtocolVariant};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

struct Row {
    name: &'static str,
    cycles: u64,
    reads: u64,
    writes: u64,
}

fn main() {
    psoram_bench::print_config_banner("Ring ORAM vs Path ORAM (extension)");
    let accesses: usize = std::env::var("PSORAM_RECORDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(8_000);
    let levels = 12u32;
    let mut rows: Vec<Row> = Vec::new();

    for (name, variant) in
        [("Path-Baseline", ProtocolVariant::Baseline), ("PS-ORAM", ProtocolVariant::PsOram)]
    {
        let mut cfg = OramConfig::paper_default().with_levels(levels);
        cfg.data_wpq_capacity = cfg.path_slots();
        cfg.posmap_wpq_capacity = cfg.path_slots();
        let cap = cfg.capacity_blocks();
        let mut oram = PathOram::new(cfg, variant, 11);
        oram.set_payload_encryption(false);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..accesses {
            oram.write(BlockAddr(rng.gen_range(0..cap)), vec![0u8; 8]).unwrap();
        }
        rows.push(Row {
            name,
            cycles: oram.clock(),
            reads: oram.nvm_stats().reads,
            writes: oram.nvm_stats().writes,
        });
    }

    for (name, variant) in
        [("Ring-Baseline", RingVariant::Baseline), ("PS-Ring-ORAM", RingVariant::PsRing)]
    {
        let mut cfg = RingConfig { levels, ..RingConfig::small_test() };
        cfg.wpq_capacity = cfg.bucket_physical_slots() * (levels as usize + 1);
        let cap = cfg.capacity_blocks();
        let mut oram = RingOram::new(cfg, variant, 11);
        let mut rng = StdRng::seed_from_u64(3);
        let mut clock = 0u64;
        for _ in 0..accesses {
            let (_, done) = oram
                .access_at(BlockAddr(rng.gen_range(0..cap)), Some(vec![0u8; 8]), clock)
                .unwrap();
            clock = done;
        }
        rows.push(Row {
            name,
            cycles: clock,
            reads: oram.nvm_stats().reads,
            writes: oram.nvm_stats().writes,
        });
    }

    println!(
        "\n{:<16}{:>14}{:>14}{:>14}{:>16}{:>16}",
        "design", "cycles", "NVM reads", "NVM writes", "reads/access", "writes/access"
    );
    for r in &rows {
        println!(
            "{:<16}{:>14}{:>14}{:>14}{:>16.1}{:>16.1}",
            r.name,
            r.cycles,
            r.reads,
            r.writes,
            r.reads as f64 / accesses as f64,
            r.writes as f64 / accesses as f64
        );
    }
    let path_pers = rows[1].cycles as f64 / rows[0].cycles as f64 - 1.0;
    let ring_pers = rows[3].cycles as f64 / rows[2].cycles as f64 - 1.0;
    println!(
        "\nPersistence overhead: Path ORAM {:+.2}%, Ring ORAM {:+.2}% — the PS-ORAM\n\
         mechanisms (temporary PosMap, atomic WPQ rounds, live-copy preservation)\n\
         carry over to Ring ORAM at comparable cost, supporting the paper's\n\
         'general ORAM protocols' claim. Ring ORAM's per-access bandwidth advantage\n\
         (one block per bucket on reads) is visible in the reads/access column.",
        path_pers * 100.0,
        ring_pers * 100.0
    );
    psoram_bench::write_results_json(
        "ring_vs_path",
        &serde_json::json!(rows
            .iter()
            .map(|r| serde_json::json!({
                "name": r.name, "cycles": r.cycles, "reads": r.reads, "writes": r.writes
            }))
            .collect::<Vec<_>>()),
    );
}
