//! Extension experiment: PS-ORAM's crash-consistency machinery applied to
//! **Ring ORAM** (the paper's "general ORAM protocols" claim), compared
//! with Path ORAM on bandwidth and persistence overhead.
//!
//! All four designs are driven through the shared [`ProtocolPolicy`]
//! surface — the same traffic loop exercises both controllers.

use psoram_bench::{drive_uniform_writes, TrafficRow};
use psoram_core::ring::{RingConfig, RingOram, RingVariant};
use psoram_core::{OramConfig, PathOram, ProtocolPolicy, ProtocolVariant};

fn main() {
    let obsv = psoram_bench::CommonCli::parse();
    psoram_bench::print_config_banner("Ring ORAM vs Path ORAM (extension)");
    let accesses: usize = std::env::var("PSORAM_RECORDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(8_000);
    let levels = 12u32;

    let path = |variant| -> Box<dyn ProtocolPolicy> {
        let mut cfg = OramConfig::paper_default().with_levels(levels);
        cfg.data_wpq_capacity = cfg.path_slots();
        cfg.posmap_wpq_capacity = cfg.path_slots();
        let mut oram = PathOram::new(cfg, variant, 11);
        oram.set_payload_encryption(false);
        Box::new(oram)
    };
    let ring = |variant| -> Box<dyn ProtocolPolicy> {
        let mut cfg = RingConfig {
            levels,
            ..RingConfig::small_test()
        };
        cfg.wpq_capacity = cfg.bucket_physical_slots() * (levels as usize + 1);
        Box::new(RingOram::new(cfg, variant, 11))
    };
    // The four designs share no state, so each worker constructs its own
    // controller and drives it to completion; `par_map` returns rows in
    // input order, keeping the table identical at any `--jobs` count.
    // Each design records into its own buffer, so traces merge in input
    // order too.
    let tracing = obsv.trace_out.is_some() || obsv.metrics_out.is_some();
    let results: Vec<(
        TrafficRow,
        (String, Vec<psoram_obsv::Event>),
        psoram_obsv::MetricsRegistry,
    )> = psoram_faultsim::par_map(0, (0..4usize).collect(), |i| {
        let (name, mut oram): (&str, Box<dyn ProtocolPolicy>) = match i {
            0 => ("Path-Baseline", path(ProtocolVariant::Baseline)),
            1 => ("PS-ORAM", path(ProtocolVariant::PsOram)),
            2 => ("Ring-Baseline", ring(RingVariant::Baseline)),
            _ => ("PS-Ring-ORAM", ring(RingVariant::PsRing)),
        };
        let rec = std::sync::Arc::new(psoram_obsv::RingBufferRecorder::new(
            psoram_obsv::DEFAULT_RING_CAPACITY,
        ));
        if tracing {
            oram.attach_recorder(rec.clone());
        }
        let row = drive_uniform_writes(name, &mut *oram, accesses, 3);
        let mut reg = psoram_obsv::MetricsRegistry::new();
        if tracing {
            oram.publish_metrics(name, &mut reg);
        }
        (row, (name.to_string(), rec.events()), reg)
    });
    let rows: Vec<TrafficRow> = results.iter().map(|(r, _, _)| r.clone()).collect();

    if let Some(path_out) = &obsv.trace_out {
        let tracks: Vec<(String, Vec<psoram_obsv::Event>)> =
            results.iter().map(|(_, t, _)| t.clone()).collect();
        psoram_bench::write_obsv_file(path_out, &psoram_obsv::chrome_trace_json(&tracks));
    }
    if let Some(path_out) = &obsv.metrics_out {
        let mut merged = psoram_obsv::MetricsRegistry::new();
        for (_, (label, events), reg) in &results {
            merged.merge(reg);
            merged.ingest_events(&format!("trace.{label}"), events);
        }
        psoram_bench::write_obsv_file(path_out, &merged.to_json_string());
    }

    println!(
        "\n{:<16}{:>14}{:>14}{:>14}{:>16}{:>16}",
        "design", "cycles", "NVM reads", "NVM writes", "reads/access", "writes/access"
    );
    for r in &rows {
        println!(
            "{:<16}{:>14}{:>14}{:>14}{:>16.1}{:>16.1}",
            r.name,
            r.cycles,
            r.reads,
            r.writes,
            r.reads as f64 / accesses as f64,
            r.writes as f64 / accesses as f64
        );
    }
    let path_pers = rows[1].cycles as f64 / rows[0].cycles as f64 - 1.0;
    let ring_pers = rows[3].cycles as f64 / rows[2].cycles as f64 - 1.0;
    println!(
        "\nPersistence overhead: Path ORAM {:+.2}%, Ring ORAM {:+.2}% — the PS-ORAM\n\
         mechanisms (temporary PosMap, atomic WPQ rounds, live-copy preservation)\n\
         carry over to Ring ORAM at comparable cost, supporting the paper's\n\
         'general ORAM protocols' claim. Ring ORAM's per-access bandwidth advantage\n\
         (one block per bucket on reads) is visible in the reads/access column.",
        path_pers * 100.0,
        ring_pers * 100.0
    );
    psoram_bench::write_results_json(
        "ring_vs_path",
        &serde_json::json!(rows
            .iter()
            .map(|r| serde_json::json!({
                "name": r.name, "cycles": r.cycles, "reads": r.reads, "writes": r.writes
            }))
            .collect::<Vec<_>>()),
    );
}
