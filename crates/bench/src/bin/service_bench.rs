//! Tracked service-throughput benchmark (`BENCH_06.json`).
//!
//! Drives the sharded request-queue/worker front-end (`psoram-service`)
//! and reports end-to-end latency percentiles and aggregate throughput
//! in **simulated** time — every number in the JSON derives from core
//! cycles and seeds, so the file is byte-identical across runs, worker
//! counts, and machines. Wall-clock goes to stderr only (opt back in
//! with `--wallclock`, which adds a machine-varying section).
//!
//! Two points are always measured:
//!
//! * **baseline** — one shard: a single controller absorbing the whole
//!   open-loop arrival stream. At the default rate the controller
//!   saturates, so throughput is service-limited and queues grow.
//! * **sharded** — N shards (default 4): the same stream routed across
//!   independent persistence domains; aggregate throughput must beat
//!   the single-controller point (`speedup` in the report).
//!
//! Usage:
//!
//! ```text
//! service_bench [--smoke] [--out FILE] [--jobs N]
//!               [--shards N] [--clients N] [--rate REQ_PER_SEC]
//!               [--requests N] [--batch N] [--levels N] [--seed N]
//!               [--lane controller|full-system]
//!               [--crash-shard K[:AFTER]] [--wallclock]
//!               [--trace-out FILE] [--metrics-out FILE]
//! ```
//!
//! `--crash-shard K[:AFTER]` strikes shard K after AFTER completed
//! requests (default 1/4 of its expected share): the struck lane runs
//! the hardened recovery path plus a modeled reboot penalty while the
//! sibling lanes are — provably, see `crash_isolation.rs` — untouched.

use std::time::Instant;

use psoram_service::{run_service, LaneKind, ServiceConfig, ServiceOutcome, ShardCrashPlan};

struct Args {
    out: String,
    smoke: bool,
    wallclock: bool,
    jobs: usize,
    trace_out: Option<String>,
    metrics_out: Option<String>,
    cfg: ServiceConfig,
}

fn parse_args() -> Args {
    let common = psoram_bench::CommonCli::parse();
    let mut args = Args {
        out: "BENCH_06.json".into(),
        smoke: false,
        wallclock: false,
        jobs: common.jobs,
        trace_out: common.trace_out,
        metrics_out: common.metrics_out,
        cfg: ServiceConfig::bench(),
    };
    let mut crash: Option<(u32, Option<u64>)> = None;
    let mut it = common.rest.into_iter();
    let num = |it: &mut dyn Iterator<Item = String>, flag: &str| -> u64 {
        it.next()
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| usage(&format!("{flag} needs a non-negative integer")))
    };
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => {
                args.smoke = true;
                let keep = args.cfg.crash;
                args.cfg = ServiceConfig::smoke();
                args.cfg.crash = keep;
            }
            "--wallclock" => args.wallclock = true,
            "--out" => args.out = it.next().unwrap_or_else(|| usage("--out needs a value")),
            "--shards" => args.cfg.shards = num(&mut it, "--shards") as u32,
            "--clients" => args.cfg.clients = num(&mut it, "--clients") as u32,
            "--rate" => args.cfg.arrival_rate = num(&mut it, "--rate"),
            "--requests" => args.cfg.requests = num(&mut it, "--requests"),
            "--batch" => args.cfg.batch_size = num(&mut it, "--batch") as usize,
            "--levels" => args.cfg.levels = num(&mut it, "--levels") as u32,
            "--seed" => args.cfg.seed = num(&mut it, "--seed"),
            "--lane" => {
                args.cfg.lane = match it.next().as_deref() {
                    Some("controller") => LaneKind::Controller,
                    Some("full-system") => LaneKind::FullSystem,
                    _ => usage("--lane must be controller or full-system"),
                }
            }
            "--crash-shard" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| usage("--crash-shard needs K or K:AFTER"));
                let (k, after) = match v.split_once(':') {
                    Some((k, n)) => (k.parse().ok(), n.parse().ok().map(Some)),
                    None => (v.parse().ok(), Some(None)),
                };
                match (k, after) {
                    (Some(k), Some(after)) => crash = Some((k, after)),
                    _ => usage("--crash-shard must be K or K:AFTER (integers)"),
                }
            }
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown argument `{other}`")),
        }
    }
    if args.cfg.shards == 0 || args.cfg.requests == 0 {
        usage("--shards and --requests must be positive");
    }
    if let Some((shard, after)) = crash {
        if shard >= args.cfg.shards {
            usage("--crash-shard index must be below --shards");
        }
        // Default strike point: a quarter of the shard's expected share.
        let after = after.unwrap_or((args.cfg.requests / args.cfg.shards as u64 / 4).max(1));
        args.cfg.crash = Some(ShardCrashPlan {
            shard,
            after_requests: after,
        });
    }
    args
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}\n");
    }
    eprintln!(
        "service_bench: sharded multi-tenant ORAM front-end benchmark\n\n\
         options:\n\
         \x20 --smoke              reduced size for CI (4 shards, L=10)\n\
         \x20 --out FILE           output JSON path (default BENCH_06.json)\n\
         \x20 --shards N           persistence domains (default 4)\n\
         \x20 --clients N          simulated open-loop clients\n\
         \x20 --rate N             aggregate arrival rate, requests/sec\n\
         \x20 --requests N         total requests\n\
         \x20 --batch N            max requests per dispatched batch\n\
         \x20 --levels N           ORAM tree levels per shard\n\
         \x20 --seed N             schedule/shard seed\n\
         \x20 --lane KIND          controller (default) or full-system\n\
         \x20 --crash-shard K[:A]  crash shard K after A completions\n\
         \x20 --wallclock          add machine-varying wall-clock JSON\n\
         \x20 --jobs N             worker threads (report is identical\n\
         \x20                      at any count)\n\
         \x20 --trace-out FILE     chrome://tracing timeline of the\n\
         \x20                      sharded run\n\
         \x20 --metrics-out FILE   metrics snapshot of the sharded run"
    );
    std::process::exit(2);
}

fn timed(cfg: &ServiceConfig, jobs: usize) -> (ServiceOutcome, f64) {
    let t = Instant::now();
    let out = run_service(cfg, jobs);
    (out, t.elapsed().as_secs_f64())
}

fn main() {
    let args = parse_args();
    let cfg = &args.cfg;
    psoram_bench::print_config_banner("service front-end (BENCH_06)");
    eprintln!(
        "[service: {} requests, {} shards x L={}, {} clients @ {} req/s, batch {}, lane {}]",
        cfg.requests,
        cfg.shards,
        cfg.levels,
        cfg.clients,
        cfg.arrival_rate,
        cfg.batch_size,
        cfg.lane.label(),
    );

    // Point 1: single-controller baseline — same stream, one shard, no
    // crash plan (the plan targets a shard index of the sharded run).
    let mut base_cfg = cfg.clone();
    base_cfg.shards = 1;
    base_cfg.crash = None;
    let (base, base_secs) = timed(&base_cfg, args.jobs);

    // Point 2: the sharded front-end, traced when an observability sink
    // was requested (tracing provably does not perturb the report — see
    // `determinism.rs`).
    let mut sharded_cfg = cfg.clone();
    sharded_cfg.trace = args.trace_out.is_some() || args.metrics_out.is_some();
    let (sharded, sharded_secs) = timed(&sharded_cfg, args.jobs);

    // Worker-count identity self-check, like perf_baseline's campaign
    // comparison: the report must be byte-identical at 1 worker.
    let mut check_cfg = sharded_cfg.clone();
    check_cfg.trace = false;
    let serial = run_service(&check_cfg, 1);
    assert_eq!(
        serde_json::to_string(&serial.report).expect("serialize"),
        serde_json::to_string(&sharded.report).expect("serialize"),
        "service report differs between --jobs 1 and --jobs {}: \
         the deterministic scheduler is broken",
        args.jobs
    );

    if let Some(path) = &args.trace_out {
        let label = format!("service/{}x{}", cfg.shards, cfg.lane.label());
        let json = psoram_obsv::chrome_trace_json(&[(label, sharded.events.clone())]);
        psoram_bench::write_obsv_file(path, &json);
    }
    if let Some(path) = &args.metrics_out {
        let mut reg = psoram_obsv::MetricsRegistry::new();
        reg.ingest_events("service", &sharded.events);
        psoram_bench::write_obsv_file(path, &reg.to_json_string());
    }

    let speedup = sharded.report.aggregate.accesses_per_sec
        / base.report.aggregate.accesses_per_sec.max(1e-9);
    // The wall-clock section is opt-in because it varies by machine —
    // the default report must stay byte-identical everywhere.
    let report = if args.wallclock {
        serde_json::json!({
            "bench": "service_bench",
            "smoke": args.smoke,
            "baseline_single_shard": serde_json::to_value(&base.report),
            "sharded": serde_json::to_value(&sharded.report),
            "speedup": speedup,
            "wallclock": {
                "baseline_secs": base_secs,
                "sharded_secs": sharded_secs,
            },
        })
    } else {
        serde_json::json!({
            "bench": "service_bench",
            "smoke": args.smoke,
            "baseline_single_shard": serde_json::to_value(&base.report),
            "sharded": serde_json::to_value(&sharded.report),
            "speedup": speedup,
        })
    };

    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&args.out, &json).unwrap_or_else(|e| {
        eprintln!("error: cannot write --out {}: {e}", args.out);
        std::process::exit(2);
    });
    println!("[saved {}]", args.out);

    let b = &base.report;
    let s = &sharded.report;
    println!(
        "baseline  1 shard : p50 {:>9} cyc  p99 {:>9} cyc  {:>10.0} acc/s",
        b.latency_cycles.p50, b.latency_cycles.p99, b.aggregate.accesses_per_sec
    );
    println!(
        "sharded  {:>2} shards: p50 {:>9} cyc  p99 {:>9} cyc  {:>10.0} acc/s  ({speedup:.2}x)",
        s.shards, s.latency_cycles.p50, s.latency_cycles.p99, s.aggregate.accesses_per_sec
    );
    for lane in &s.lanes {
        println!(
            "  shard {}: {:>6} reqs {:>5} batches  wait~{:>8} cyc  {:>10.0} acc/s  crashes {}  verify {}",
            lane.shard,
            lane.requests,
            lane.batches,
            lane.queue_wait_mean_cycles,
            lane.throughput_accesses_per_sec,
            lane.crashes,
            if lane.verify_ok { "ok" } else { "FAIL" },
        );
    }
    eprintln!("[wall-clock: baseline {base_secs:.2}s, sharded {sharded_secs:.2}s]");

    if s.lanes.iter().any(|l| !l.verify_ok) {
        eprintln!("FAIL: a shard failed its end-of-run contents check");
        std::process::exit(1);
    }
    if speedup <= 1.0 {
        eprintln!(
            "WARN: sharded aggregate did not beat the single-controller \
             baseline (speedup {speedup:.2}x) — rate {} req/s may not \
             saturate one controller at L={}",
            cfg.arrival_rate, cfg.levels
        );
    }
}
