//! Regenerates **Table 4**: the 14 workloads and their measured MPKIs
//! through the real cache hierarchy, against the paper's targets.

use psoram_bench::{records_per_workload, run_reference};
use psoram_trace::SpecWorkload;

fn main() {
    psoram_bench::print_config_banner("Table 4: workloads and MPKIs");
    let n = records_per_workload();
    println!(
        "\n{:<16}{:>12}{:>12}{:>10}",
        "workload", "paper MPKI", "measured", "delta%"
    );
    let mut rows = Vec::new();
    for w in SpecWorkload::all() {
        let r = run_reference(1, w, n);
        let measured = r.mpki();
        let target = w.paper_mpki();
        let delta = (measured - target) / target * 100.0;
        println!(
            "{:<16}{:>12.2}{:>12.2}{:>9.1}%",
            w.name(),
            target,
            measured,
            delta
        );
        rows.push(serde_json::json!({
            "workload": w.name(),
            "paper_mpki": target,
            "measured_mpki": measured,
        }));
    }
    psoram_bench::write_results_json("table4", &serde_json::json!(rows));
}
