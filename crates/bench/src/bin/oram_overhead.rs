//! Regenerates the §5.1 context numbers: baseline ORAM overhead vs a
//! non-ORAM NVM system (paper: 2–24x, avg ~11x at 1 channel; 1.8–21x,
//! avg ~6.5x at 4 channels).

use psoram_bench::{geomean, records_per_workload, run_one, run_reference, FigureTable};
use psoram_core::ProtocolVariant;
use psoram_trace::SpecWorkload;

fn main() {
    psoram_bench::print_config_banner("§5.1: ORAM overhead vs non-ORAM NVM system");
    let n = records_per_workload();
    let mut table = FigureTable::new(&["1-channel", "4-channel"]);
    let mut per_channel = [Vec::new(), Vec::new()];

    for w in SpecWorkload::all() {
        let mut row = Vec::new();
        for (ci, ch) in [1usize, 4].iter().enumerate() {
            let oram = run_one(ProtocolVariant::Baseline, *ch, w, n);
            let plain = run_reference(*ch, w, n);
            let ratio = oram.exec_cycles as f64 / plain.exec_cycles as f64;
            row.push(ratio);
            per_channel[ci].push(ratio);
        }
        table.add_row(w.name(), row);
        eprintln!("[{w} done]");
    }

    print!("{}", table.render("ORAM slowdown over non-ORAM NVM"));
    let g1 = geomean(&per_channel[0]);
    let g4 = geomean(&per_channel[1]);
    let minmax = |v: &[f64]| {
        (
            v.iter().cloned().fold(f64::INFINITY, f64::min),
            v.iter().cloned().fold(0.0f64, f64::max),
        )
    };
    let (lo1, hi1) = minmax(&per_channel[0]);
    let (lo4, hi4) = minmax(&per_channel[1]);
    println!("\nSummary:");
    println!("  1-channel: {lo1:.1}x – {hi1:.1}x, gmean {g1:.1}x (paper: 2x–24x, avg ~11x)");
    println!("  4-channel: {lo4:.1}x – {hi4:.1}x, gmean {g4:.1}x (paper: 1.8x–21x, avg ~6.5x)");

    psoram_bench::write_results_json(
        "oram_overhead",
        &serde_json::json!({
            "gmean_1ch": g1, "gmean_4ch": g4,
            "range_1ch": [lo1, hi1], "range_4ch": [lo4, hi4],
        }),
    );
}
