//! Regenerates **Figure 6**: NVM read and write traffic of each design,
//! normalized to Baseline (single channel).

use psoram_bench::{FigureTable, SimHarness};
use psoram_core::ProtocolVariant;
use psoram_trace::SpecWorkload;

fn main() {
    let obsv = psoram_bench::CommonCli::parse();
    let harness = SimHarness::new(1);
    harness.banner("Figure 6: NVM read/write traffic");

    let variants = [
        ProtocolVariant::FullNvm,
        ProtocolVariant::NaivePsOram,
        ProtocolVariant::PsOram,
        ProtocolVariant::RcrBaseline,
        ProtocolVariant::RcrPsOram,
    ];
    let labels = ["FullNVM", "Naive-PS", "PS-ORAM", "Rcr-Base", "Rcr-PS"];
    let mut reads = FigureTable::new(&labels);
    let mut writes = FigureTable::new(&labels);
    let mut rcr_ps_vs_base = Vec::new();
    let mut reg = psoram_obsv::MetricsRegistry::new();

    harness.sweep_vs_baseline(&variants, |w, base, runs| {
        use psoram_obsv::MetricsSource as _;
        base.publish(&format!("{}.Baseline", w.name()), &mut reg);
        for (v, r) in variants.iter().zip(runs) {
            r.publish(&format!("{}.{}", w.name(), v.label()), &mut reg);
        }
        reads.add_row(
            w.name(),
            runs.iter()
                .map(|r| r.total_reads() as f64 / base.total_reads() as f64)
                .collect(),
        );
        writes.add_row(
            w.name(),
            runs.iter()
                .map(|r| r.total_writes() as f64 / base.total_writes() as f64)
                .collect(),
        );
        rcr_ps_vs_base.push(runs[4].total_writes() as f64 / runs[3].total_writes() as f64);
    });

    if let Some(path) = &obsv.metrics_out {
        psoram_bench::write_obsv_file(path, &reg.to_json_string());
    }
    if let Some(path) = &obsv.trace_out {
        // A small deterministic side run (the measured sweep stays
        // untraced, so recording cannot perturb the reported numbers).
        let trace = psoram_bench::capture_system_trace(
            ProtocolVariant::PsOram,
            SpecWorkload::Mcf,
            1,
            2_000,
        );
        psoram_bench::write_obsv_file(path, &trace);
    }

    print!(
        "{}",
        reads.render("Figure 6(a): reads normalized to Baseline")
    );
    print!(
        "{}",
        writes.render("Figure 6(b): writes normalized to Baseline")
    );

    let gr = reads.geomeans();
    let gw = writes.geomeans();
    let rcr_ratio = psoram_bench::geomean(&rcr_ps_vs_base);
    println!("\nSummary (gmean vs Baseline):");
    println!(
        "  reads : Rcr-Baseline +{:.2}% / Rcr-PS-ORAM +{:.2}% (paper: ~+90.28%/+90.54%)",
        (gr[3] - 1.0) * 100.0,
        (gr[4] - 1.0) * 100.0
    );
    println!(
        "  reads : others ~unchanged: FullNVM {:+.2}%, Naive {:+.2}%, PS {:+.2}%",
        (gr[0] - 1.0) * 100.0,
        (gr[1] - 1.0) * 100.0,
        (gr[2] - 1.0) * 100.0
    );
    println!(
        "  writes: FullNVM +{:.2}% (paper: +111.63%)",
        (gw[0] - 1.0) * 100.0
    );
    println!(
        "  writes: Naive-PS +{:.2}% (paper: high)",
        (gw[1] - 1.0) * 100.0
    );
    println!(
        "  writes: PS-ORAM +{:.2}% (paper: +4.84%)",
        (gw[2] - 1.0) * 100.0
    );
    println!(
        "  writes: Rcr-PS over Rcr-Base +{:.2}% (paper: +15.54%)",
        (rcr_ratio - 1.0) * 100.0
    );

    psoram_bench::write_results_json(
        "fig6",
        &serde_json::json!({
            "gmean_reads_normalized": labels.iter().zip(&gr).map(|(l, v)| (l.to_string(), v)).collect::<std::collections::BTreeMap<_, _>>(),
            "gmean_writes_normalized": labels.iter().zip(&gw).map(|(l, v)| (l.to_string(), v)).collect::<std::collections::BTreeMap<_, _>>(),
            "rcr_ps_writes_over_rcr_base": rcr_ratio,
        }),
    );
}
