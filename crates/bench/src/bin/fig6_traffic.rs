//! Regenerates **Figure 6**: NVM read and write traffic of each design,
//! normalized to Baseline (single channel).

use psoram_bench::{records_per_workload, run_one, FigureTable};
use psoram_core::ProtocolVariant;
use psoram_trace::SpecWorkload;

fn main() {
    psoram_bench::print_config_banner("Figure 6: NVM read/write traffic");
    let n = records_per_workload();

    let variants = [
        ProtocolVariant::FullNvm,
        ProtocolVariant::NaivePsOram,
        ProtocolVariant::PsOram,
        ProtocolVariant::RcrBaseline,
        ProtocolVariant::RcrPsOram,
    ];
    let labels = ["FullNVM", "Naive-PS", "PS-ORAM", "Rcr-Base", "Rcr-PS"];
    let mut reads = FigureTable::new(&labels);
    let mut writes = FigureTable::new(&labels);
    let mut rcr_ps_vs_base = Vec::new();

    for w in SpecWorkload::all() {
        let base = run_one(ProtocolVariant::Baseline, 1, w, n);
        let mut read_row = Vec::new();
        let mut write_row = Vec::new();
        let mut rcr = [0u64; 2];
        for (i, v) in variants.iter().enumerate() {
            let r = run_one(*v, 1, w, n);
            read_row.push(r.total_reads() as f64 / base.total_reads() as f64);
            write_row.push(r.total_writes() as f64 / base.total_writes() as f64);
            if i == 3 {
                rcr[0] = r.total_writes();
            }
            if i == 4 {
                rcr[1] = r.total_writes();
            }
        }
        rcr_ps_vs_base.push(rcr[1] as f64 / rcr[0] as f64);
        reads.add_row(w.name(), read_row);
        writes.add_row(w.name(), write_row);
        eprintln!("[{w} done]");
    }

    print!("{}", reads.render("Figure 6(a): reads normalized to Baseline"));
    print!("{}", writes.render("Figure 6(b): writes normalized to Baseline"));

    let gr = reads.geomeans();
    let gw = writes.geomeans();
    let rcr_ratio = psoram_bench::geomean(&rcr_ps_vs_base);
    println!("\nSummary (gmean vs Baseline):");
    println!("  reads : Rcr-Baseline +{:.2}% / Rcr-PS-ORAM +{:.2}% (paper: ~+90.28%/+90.54%)",
        (gr[3] - 1.0) * 100.0, (gr[4] - 1.0) * 100.0);
    println!("  reads : others ~unchanged: FullNVM {:+.2}%, Naive {:+.2}%, PS {:+.2}%",
        (gr[0] - 1.0) * 100.0, (gr[1] - 1.0) * 100.0, (gr[2] - 1.0) * 100.0);
    println!("  writes: FullNVM +{:.2}% (paper: +111.63%)", (gw[0] - 1.0) * 100.0);
    println!("  writes: Naive-PS +{:.2}% (paper: high)", (gw[1] - 1.0) * 100.0);
    println!("  writes: PS-ORAM +{:.2}% (paper: +4.84%)", (gw[2] - 1.0) * 100.0);
    println!("  writes: Rcr-PS over Rcr-Base +{:.2}% (paper: +15.54%)", (rcr_ratio - 1.0) * 100.0);

    psoram_bench::write_results_json(
        "fig6",
        &serde_json::json!({
            "gmean_reads_normalized": labels.iter().zip(&gr).map(|(l, v)| (l.to_string(), v)).collect::<std::collections::BTreeMap<_, _>>(),
            "gmean_writes_normalized": labels.iter().zip(&gw).map(|(l, v)| (l.to_string(), v)).collect::<std::collections::BTreeMap<_, _>>(),
            "rcr_ps_writes_over_rcr_base": rcr_ratio,
        }),
    );
}
