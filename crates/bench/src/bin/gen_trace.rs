//! Materializes a synthetic workload into a replayable JSON trace file.
//!
//! ```text
//! cargo run --release -p psoram-bench --bin gen_trace -- \
//!     --workload lbm --records 20000 --seed 7 --out lbm.trace.json
//! ```
//!
//! Replay with `sim -- --trace lbm.trace.json`.

use psoram_trace::{SpecWorkload, Trace, TraceGenerator};

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut workload = SpecWorkload::Mcf;
    let mut records = 20_000usize;
    let mut seed = 7u64;
    let mut out = String::from("trace.json");
    let mut i = 0;
    while i < argv.len() {
        let val = |i: &mut usize| -> String {
            *i += 1;
            argv.get(*i).cloned().unwrap_or_else(|| {
                eprintln!("missing value for {}", argv[*i - 1]);
                std::process::exit(2);
            })
        };
        match argv[i].as_str() {
            "--workload" | "-w" => {
                let v = val(&mut i);
                workload = SpecWorkload::all()
                    .into_iter()
                    .find(|w| w.name().to_lowercase().contains(&v.to_lowercase()))
                    .unwrap_or_else(|| {
                        eprintln!("unknown workload {v}");
                        std::process::exit(2);
                    });
            }
            "--records" | "-n" => records = val(&mut i).parse().expect("numeric --records"),
            "--seed" | "-s" => seed = val(&mut i).parse().expect("numeric --seed"),
            "--out" | "-o" => out = val(&mut i),
            other => {
                eprintln!("unknown argument {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let spec = workload.spec();
    let trace = Trace::capture(workload.name(), TraceGenerator::new(&spec, seed), records);
    trace.save(&out).expect("write trace file");
    println!(
        "wrote {} records of {} ({} instructions) to {out}",
        trace.len(),
        trace.name(),
        trace.instructions()
    );
}
