//! Stash-occupancy tail study: Path ORAM theory says the stash occupancy
//! distribution has an exponentially decaying tail (why a 200-entry stash
//! with 50% utilization "never" overflows). This binary measures the
//! distribution over a long run and reports the log-linear tail.

use psoram_core::{BlockAddr, OramConfig, PathOram, ProtocolVariant};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    psoram_bench::print_config_banner("stash occupancy tail study");
    let accesses: usize = std::env::var("PSORAM_RECORDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(60_000);

    let mut cfg = OramConfig::paper_default().with_levels(12);
    cfg.stash_capacity = 4096;
    cfg.temp_posmap_capacity = 4096;
    cfg.data_wpq_capacity = cfg.path_slots();
    cfg.posmap_wpq_capacity = cfg.path_slots();
    let cap = cfg.capacity_blocks();
    let mut oram = PathOram::new(cfg, ProtocolVariant::PsOram, 17);
    oram.set_payload_encryption(false);

    let mut histogram = vec![0u64; 256];
    let mut rng = StdRng::seed_from_u64(3);
    for _ in 0..accesses {
        oram.write(BlockAddr(rng.gen_range(0..cap)), vec![0u8; 8])
            .unwrap();
        let occ = oram.stash_len().min(255);
        histogram[occ] += 1;
    }

    println!("\npost-access stash occupancy distribution ({accesses} accesses):");
    println!(
        "{:>10}{:>12}{:>14}{:>18}",
        "occupancy", "count", "P(X >= s)", "log10 P(X >= s)"
    );
    let total: u64 = histogram.iter().sum();
    let mut tail = total;
    let mut rows = Vec::new();
    for (occ, &count) in histogram.iter().enumerate() {
        if count == 0 && tail == 0 {
            break;
        }
        let p = tail as f64 / total as f64;
        if p > 0.0 && (count > 0 || (occ % 2 == 0 && occ < 8)) {
            println!("{:>10}{:>12}{:>14.6}{:>18.2}", occ, count, p, p.log10());
        }
        rows.push(serde_json::json!({ "occupancy": occ, "count": count, "tail_p": p }));
        tail -= count;
    }
    let max_occ = histogram.iter().rposition(|&c| c > 0).unwrap_or(0);
    println!(
        "\nmax observed: {max_occ}; high-water mark incl. mid-access transients: {}",
        oram.stash_max_occupancy()
    );
    println!(
        "The survival probability falls roughly one decade every few entries —\n\
         the exponential tail behind Table 3's comfortable 200-entry stash."
    );
    psoram_bench::write_results_json("stash_tail_study", &serde_json::json!(rows));
}
