//! Regenerates **Figure 5**: normalized execution time of the persistent
//! ORAM designs over 14 workloads (Z=4, 1 channel, 1 core).
//!
//! * (a) non-recursive: FullNVM, FullNVM(STT), Naive-PS-ORAM, PS-ORAM,
//!   normalized to Baseline.
//! * (b) recursive: Rcr-Baseline and Rcr-PS-ORAM, normalized to the
//!   non-recursive Baseline (as in the paper), plus the Rcr-PS-ORAM /
//!   Rcr-Baseline ratio the text reports (~3.65%).

use psoram_bench::{FigureTable, SimHarness};
use psoram_core::ProtocolVariant;
use psoram_trace::SpecWorkload;

fn main() {
    let obsv = psoram_bench::CommonCli::parse();
    let harness = SimHarness::new(1);
    harness.banner("Figure 5: performance comparison");

    let variants = [
        ProtocolVariant::FullNvm,
        ProtocolVariant::FullNvmStt,
        ProtocolVariant::NaivePsOram,
        ProtocolVariant::PsOram,
        ProtocolVariant::RcrBaseline,
        ProtocolVariant::RcrPsOram,
    ];
    let mut table_a = FigureTable::new(&["FullNVM", "FullNVM(STT)", "Naive-PS", "PS-ORAM"]);
    let mut table_b = FigureTable::new(&["Rcr-Baseline", "Rcr-PS-ORAM", "Rcr-PS/Rcr-Base"]);
    let mut reg = psoram_obsv::MetricsRegistry::new();

    harness.sweep_vs_baseline(&variants, |w, base, runs| {
        use psoram_obsv::MetricsSource as _;
        base.publish(&format!("{}.Baseline", w.name()), &mut reg);
        for (v, r) in variants.iter().zip(runs) {
            r.publish(&format!("{}.{}", w.name(), v.label()), &mut reg);
        }
        table_a.add_row(
            w.name(),
            runs[..4].iter().map(|r| r.normalized_time(base)).collect(),
        );
        let (rb, rp) = (&runs[4], &runs[5]);
        table_b.add_row(
            w.name(),
            vec![
                rb.normalized_time(base),
                rp.normalized_time(base),
                rp.exec_cycles as f64 / rb.exec_cycles as f64,
            ],
        );
    });

    if let Some(path) = &obsv.metrics_out {
        psoram_bench::write_obsv_file(path, &reg.to_json_string());
    }
    if let Some(path) = &obsv.trace_out {
        // A small deterministic side run (the measured sweep stays
        // untraced, so recording cannot perturb the reported numbers).
        let trace = psoram_bench::capture_system_trace(
            ProtocolVariant::PsOram,
            SpecWorkload::Mcf,
            1,
            2_000,
        );
        psoram_bench::write_obsv_file(path, &trace);
    }

    print!(
        "{}",
        table_a.render("Figure 5(a): exec time normalized to Baseline")
    );
    print!(
        "{}",
        table_b.render("Figure 5(b): recursive designs, normalized to Baseline")
    );

    let ga = table_a.geomeans();
    let gb = table_b.geomeans();
    println!("\nSummary (gmean overhead vs Baseline):");
    println!(
        "  FullNVM       +{:.2}%   (paper: +90.54%)",
        (ga[0] - 1.0) * 100.0
    );
    println!(
        "  FullNVM(STT)  +{:.2}%   (paper: +37.69%)",
        (ga[1] - 1.0) * 100.0
    );
    println!(
        "  Naive-PS-ORAM +{:.2}%   (paper: +73.92%)",
        (ga[2] - 1.0) * 100.0
    );
    println!(
        "  PS-ORAM       +{:.2}%   (paper: +4.29%)",
        (ga[3] - 1.0) * 100.0
    );
    println!(
        "  Rcr-Baseline  +{:.2}%   (paper: +68.93%)",
        (gb[0] - 1.0) * 100.0
    );
    println!(
        "  Rcr-PS-ORAM   +{:.2}%   (paper: +75.10%)",
        (gb[1] - 1.0) * 100.0
    );
    println!(
        "  Rcr-PS vs Rcr-Base +{:.2}% (paper: +3.65%)",
        (gb[2] - 1.0) * 100.0
    );

    psoram_bench::write_results_json(
        "fig5",
        &serde_json::json!({
            "gmean_overhead_pct": {
                "FullNVM": (ga[0] - 1.0) * 100.0,
                "FullNVM(STT)": (ga[1] - 1.0) * 100.0,
                "Naive-PS-ORAM": (ga[2] - 1.0) * 100.0,
                "PS-ORAM": (ga[3] - 1.0) * 100.0,
                "Rcr-Baseline": (gb[0] - 1.0) * 100.0,
                "Rcr-PS-ORAM": (gb[1] - 1.0) * 100.0,
                "Rcr-PS-over-Rcr-Base": (gb[2] - 1.0) * 100.0,
            }
        }),
    );
}
