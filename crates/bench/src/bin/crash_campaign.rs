//! Fault-injection campaign runner (`psoram-faultsim` front-end).
//!
//! Runs the exhaustive crash-point sweep and/or the randomized
//! multi-crash campaign against the design matrix (non-persistent
//! baseline, PS-ORAM, PS-Ring-ORAM), prints a JSON report, and exits
//! non-zero if any design deviates from its crash-consistency claim —
//! including the *baseline failing to fail*, which would mean the
//! harness lost its detection power.
//!
//! Usage:
//!   crash_campaign [--smoke] [--mode exhaustive|random|both]
//!                  [--seed N] [--out FILE] [--quiet] [--jobs N]
//!                  [--device-faults] [--aggressive-faults] [--replay-faults]
//!                  [--trace-out FILE] [--metrics-out FILE]
//!
//! `--jobs` fans the per-design campaigns out across worker threads; the
//! report is byte-identical at any job count (each design variant derives
//! its RNG from the campaign seed, never from execution order).
//!
//! `--device-faults` appends the device-fault campaign: the random
//! campaign re-run with a seeded device fault plan (torn flushes,
//! lost/duplicated WPQ signals, persisted bit flips, read failures)
//! armed underneath every Path and Ring design. Hardened designs must
//! repair, roll back with typed errors, or fail safe — never diverge
//! silently — while the unhardened baselines must keep failing.
//!
//! `--replay-faults` (implies `--device-faults`) additionally arms the
//! freshness adversary: stale replays, cross-address splices, and stale
//! read serves against persisted units. Hardened designs must detect
//! every injected replay through the authenticated counter tree, while
//! the unhardened baselines must blindly serve stale data at least once
//! (detection power).

use psoram_bench::SimHarness;
use psoram_faultsim::{CampaignReport, DeviceCampaignReport};

struct Args {
    smoke: bool,
    mode: String,
    seed: Option<u64>,
    out: Option<String>,
    trace_out: Option<String>,
    metrics_out: Option<String>,
    quiet: bool,
    device_faults: bool,
    aggressive_faults: bool,
    replay_faults: bool,
}

fn parse_args() -> Args {
    // The shared pass (psoram_bench::CommonCli) consumes --jobs,
    // --trace-out, and --metrics-out; this parser only owns the
    // campaign-specific flags left in `rest`.
    let common = psoram_bench::CommonCli::parse();
    let mut args = Args {
        smoke: false,
        mode: "both".into(),
        seed: None,
        out: None,
        trace_out: common.trace_out,
        metrics_out: common.metrics_out,
        quiet: false,
        device_faults: false,
        aggressive_faults: false,
        replay_faults: false,
    };
    let mut it = common.rest.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => args.smoke = true,
            "--quiet" => args.quiet = true,
            "--device-faults" => args.device_faults = true,
            "--aggressive-faults" => args.aggressive_faults = true,
            "--replay-faults" => {
                args.replay_faults = true;
                args.device_faults = true;
            }
            "--mode" => args.mode = it.next().unwrap_or_else(|| usage("--mode needs a value")),
            "--seed" => {
                let v = it.next().unwrap_or_else(|| usage("--seed needs a value"));
                args.seed = Some(
                    v.parse()
                        .unwrap_or_else(|_| usage("--seed must be an integer")),
                );
            }
            "--out" => args.out = Some(it.next().unwrap_or_else(|| usage("--out needs a value"))),
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown argument `{other}`")),
        }
    }
    if !matches!(args.mode.as_str(), "exhaustive" | "random" | "both") {
        usage("--mode must be exhaustive, random, or both");
    }
    if args.aggressive_faults && !args.device_faults {
        usage("--aggressive-faults requires --device-faults");
    }
    args
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}\n");
    }
    eprintln!(
        "crash_campaign: systematic fault injection & recovery verification\n\n\
         options:\n\
         \x20 --smoke            reduced workload (CI gate)\n\
         \x20 --mode MODE        exhaustive | random | both (default both)\n\
         \x20 --seed N           override the campaign seed\n\
         \x20 --out FILE         write the JSON report to FILE (default stdout)\n\
         \x20 --trace-out FILE   write a chrome://tracing timeline of the random\n\
         \x20                    campaign (one track per design)\n\
         \x20 --metrics-out FILE write a flat metrics snapshot (per-design counters\n\
         \x20                    incl. per-crash-point timing attribution)\n\
         \x20 --jobs N           worker threads (default: all cores; 1 = serial);\n\
         \x20                    the report is byte-identical at any job count\n\
         \x20 --device-faults    append the device-fault campaign (seeded torn\n\
         \x20                    flushes, signal loss, bit flips, read failures)\n\
         \x20 --aggressive-faults use the aggressive fault mix (implies more\n\
         \x20                    fail-safe rebuilds; requires --device-faults)\n\
         \x20 --replay-faults    arm the freshness adversary (stale replays,\n\
         \x20                    cross splices, stale read serves) in the device\n\
         \x20                    campaign; implies --device-faults\n\
         \x20 --quiet            suppress the human-readable summary"
    );
    std::process::exit(2);
}

fn summarize(report: &CampaignReport) {
    eprintln!("== {} campaign (seed {}) ==", report.mode, report.seed);
    for v in &report.variants {
        eprintln!(
            "  {:<22} accesses {:>5}  crashes {:>4} (step {:>4}, mid-evict {:>4}, nested {:>3})  \
             recoveries {:>4}  violations {:>4}  [{}]",
            v.label,
            v.accesses,
            v.crashes_injected,
            v.step_boundary_crashes,
            v.during_eviction_crashes,
            v.nested_crashes,
            v.recoveries,
            v.violations_total,
            if v.matches_expectation {
                "ok"
            } else {
                "UNEXPECTED"
            },
        );
    }
}

/// A campaign is sound only if it both clears the consistent designs and
/// convicts the non-persistent baseline: a sweep in which the baseline
/// passes has lost its teeth.
fn verdict(report: &CampaignReport) -> Result<(), String> {
    for v in &report.variants {
        if v.expected_consistent && v.violations_total > 0 {
            return Err(format!(
                "{}: {} violation(s) in a design that claims crash consistency (first: {:?})",
                v.label,
                v.violations_total,
                v.violations.first()
            ));
        }
        if v.crashes_injected == 0 {
            return Err(format!(
                "{}: no crash ever fired — the schedule is broken",
                v.label
            ));
        }
    }
    // Detection power: at least one non-consistent design must violate.
    let baseline_convicted = report
        .variants
        .iter()
        .any(|v| !v.expected_consistent && v.violations_total > 0);
    if !baseline_convicted {
        return Err("no violation detected on any non-persistent baseline: \
                    the oracle has no detection power"
            .into());
    }
    Ok(())
}

fn summarize_device(report: &DeviceCampaignReport) {
    eprintln!(
        "== device-fault campaign (seed {}, {} mix{}) ==",
        report.seed,
        if report.aggressive {
            "aggressive"
        } else {
            "default"
        },
        if report.replay {
            " + replay adversary"
        } else {
            ""
        }
    );
    for v in &report.variants {
        eprintln!(
            "  {:<22} crashes {:>4}  injected {:>5} (torn {:>3}, signal {:>3}, flips {:>4})  \
             repairs {:>4}  rollbacks {:>3}  failsafes {:>3}  rebuilds {:>2}  violations {:>4}  [{}]",
            v.report.label,
            v.report.crashes_injected,
            v.device.injected.total_injected(),
            v.device.injected.torn_flushes,
            v.device.injected.signal_losses + v.device.injected.duplicated_signals,
            v.device.injected.bit_flips,
            v.device.repairs,
            v.device.rollbacks,
            v.device.detected_failsafes,
            v.device.failsafe_rebuilds,
            v.report.violations_total,
            if v.report.matches_expectation {
                "ok"
            } else {
                "UNEXPECTED"
            },
        );
        if report.replay {
            eprintln!(
                "  {:<22}   replay: injected {:>3} (stale {:>2}, splice {:>2})  \
                 detected {:>3}  stale serves {:>3}/{:>3} caught  poisons {:>3}",
                "",
                v.device.injected.stale_replays + v.device.injected.cross_splices,
                v.device.injected.stale_replays,
                v.device.injected.cross_splices,
                v.device.replays_detected + v.device.splices_detected,
                v.device.stale_serves_detected,
                v.device.stale_serves,
                v.device.fetch_poisons,
            );
        }
    }
}

/// The device campaign is sound only if the injector actually fired, no
/// hardened design diverged silently, and the unhardened baselines kept
/// failing (detection power). With the replay adversary armed, every
/// hardened design must additionally account for every injected stale
/// replay / cross splice and catch every stale read serve, and at least
/// one unhardened baseline must blindly serve stale data.
fn device_verdict(report: &DeviceCampaignReport) -> Result<(), String> {
    for v in &report.variants {
        if v.device.hardened && !v.report.matches_expectation {
            return Err(format!(
                "{}: {} silent violation(s) under device faults (first: {:?})",
                v.report.label,
                v.report.violations_total,
                v.report.violations.first()
            ));
        }
        if v.report.crashes_injected == 0 {
            return Err(format!(
                "{}: no crash ever fired — the schedule is broken",
                v.report.label
            ));
        }
    }
    if report.total_injected() == 0 {
        return Err("the device fault plan injected nothing — the injector is broken".into());
    }
    let baseline_convicted = report
        .variants
        .iter()
        .any(|v| !v.device.hardened && v.report.violations_total > 0);
    if !baseline_convicted {
        return Err("no violation detected on any unhardened design under \
                    device faults: the oracle has no detection power"
            .into());
    }
    if report.replay {
        if report.total_replays_injected() == 0 {
            return Err("the replay adversary injected nothing — the injector is broken".into());
        }
        if !report.all_replays_detected() {
            let v = report
                .variants
                .iter()
                .filter(|v| v.device.hardened)
                .find(|v| {
                    let d = &v.device;
                    d.replays_detected + d.splices_detected
                        < d.injected.stale_replays + d.injected.cross_splices
                        || d.stale_serves_detected != d.stale_serves
                })
                .map(|v| v.report.label.as_str())
                .unwrap_or("?");
            return Err(format!(
                "{v}: a hardened design let an injected replay/splice or a \
                 stale read serve go undetected"
            ));
        }
        let baseline_blind = report.variants.iter().any(|v| {
            !v.device.hardened && v.device.stale_serves > 0 && v.device.stale_serves_detected == 0
        });
        if !baseline_blind {
            return Err("no unhardened design blindly served stale data: the \
                        replay oracle has no detection power"
                .into());
        }
    }
    Ok(())
}

fn main() {
    let args = parse_args();

    // Fail fast on an unwritable report path before spending minutes on
    // the campaigns themselves.
    for path in [&args.out, &args.trace_out, &args.metrics_out]
        .into_iter()
        .flatten()
    {
        if let Err(e) = std::fs::write(path, b"[]") {
            eprintln!("error: cannot write to {path}: {e}");
            std::process::exit(2);
        }
    }

    let harness = SimHarness::new(1);
    let (reports, tracks) = if args.trace_out.is_some() {
        harness.crash_campaigns_traced(&args.mode, args.smoke, args.seed)
    } else {
        (
            harness.crash_campaigns(&args.mode, args.smoke, args.seed),
            Vec::new(),
        )
    };

    if let Some(path) = &args.trace_out {
        psoram_bench::write_obsv_file(path, &psoram_obsv::chrome_trace_json(&tracks));
    }
    if let Some(path) = &args.metrics_out {
        use psoram_obsv::MetricsSource as _;
        let mut reg = psoram_obsv::MetricsRegistry::new();
        for report in &reports {
            for v in &report.variants {
                v.publish(&format!("{}.{}", report.mode, v.label), &mut reg);
            }
        }
        for (label, events) in &tracks {
            reg.ingest_events(&format!("trace.{label}"), events);
        }
        psoram_bench::write_obsv_file(path, &reg.to_json_string());
    }

    let device_report = args.device_faults.then(|| {
        harness.device_campaigns(
            args.smoke,
            args.seed,
            args.aggressive_faults,
            args.replay_faults,
        )
    });

    // With --device-faults the output array gains the device report as its
    // final element; without the flag the output is byte-identical to the
    // previous behavior (the golden artifacts never set the flag).
    let json = match &device_report {
        Some(dev) => {
            let mut vals: Vec<serde_json::Value> =
                reports.iter().map(serde_json::to_value).collect();
            vals.push(serde_json::to_value(dev));
            serde_json::to_string_pretty(&vals).expect("report serializes")
        }
        None => serde_json::to_string_pretty(&reports).expect("report serializes"),
    };
    match &args.out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &json) {
                eprintln!("error: cannot write --out {path}: {e}");
                std::process::exit(2);
            }
        }
        None => println!("{json}"),
    }

    let mut failed = false;
    for report in &reports {
        if !args.quiet {
            summarize(report);
        }
        if let Err(e) = verdict(report) {
            eprintln!("FAIL ({}): {e}", report.mode);
            failed = true;
        } else if !args.quiet {
            eprintln!(
                "PASS ({}): PS designs clean, baseline data loss detected",
                report.mode
            );
        }
    }
    if let Some(dev) = &device_report {
        if !args.quiet {
            summarize_device(dev);
        }
        if let Err(e) = device_verdict(dev) {
            eprintln!("FAIL (device): {e}");
            failed = true;
        } else if !args.quiet {
            eprintln!(
                "PASS (device): hardened designs repaired, rolled back with typed \
                 errors, or failed safe; unhardened data loss detected{}",
                if dev.replay {
                    format!(
                        "; all {} injected replays/splices detected",
                        dev.total_replays_injected()
                    )
                } else {
                    String::new()
                }
            );
        }
    }
    if failed {
        std::process::exit(1);
    }
}
