//! Regenerates **Figure 7**: performance in 1/2/4-channel memory systems
//! for Baseline, PS-ORAM, Rcr-Baseline, Rcr-PS-ORAM.

use psoram_bench::{geomean, records_per_workload, run_one};
use psoram_core::ProtocolVariant;
use psoram_trace::SpecWorkload;

fn main() {
    psoram_bench::print_config_banner("Figure 7: multi-channel performance");
    let n = records_per_workload();
    let variants = [
        ProtocolVariant::Baseline,
        ProtocolVariant::PsOram,
        ProtocolVariant::RcrBaseline,
        ProtocolVariant::RcrPsOram,
    ];

    // cycles[variant][channel_idx] = gmean exec cycles across workloads.
    let mut cycles = vec![[0.0f64; 3]; variants.len()];
    for (vi, v) in variants.iter().enumerate() {
        for (ci, ch) in [1usize, 2, 4].iter().enumerate() {
            let per_wl: Vec<f64> = SpecWorkload::all()
                .iter()
                .map(|w| run_one(*v, *ch, *w, n).exec_cycles as f64)
                .collect();
            cycles[vi][ci] = geomean(&per_wl);
            eprintln!("[{v} {ch}ch done]");
        }
    }

    println!(
        "\n{:<14}{:>14}{:>14}{:>14}",
        "variant", "1-channel", "2-channel", "4-channel"
    );
    for (vi, v) in variants.iter().enumerate() {
        println!(
            "{:<14}{:>14.0}{:>14.0}{:>14.0}",
            v.label(),
            cycles[vi][0],
            cycles[vi][1],
            cycles[vi][2]
        );
    }

    let speedup = |vi: usize, ci: usize| (cycles[vi][0] / cycles[vi][ci] - 1.0) * 100.0;
    let vs_base =
        |vi: usize, base: usize, ci: usize| (cycles[vi][ci] / cycles[base][ci] - 1.0) * 100.0;
    println!("\nSummary:");
    println!(
        "  PS-ORAM speedup over its 1ch: 2ch +{:.2}% / 4ch +{:.2}% (paper: +51.26%/+53.76%)",
        speedup(1, 1),
        speedup(1, 2)
    );
    println!(
        "  Rcr-PS-ORAM speedup over its 1ch: 2ch +{:.2}% / 4ch +{:.2}% (paper: +46.50%/+55.21%)",
        speedup(3, 1),
        speedup(3, 2)
    );
    println!(
        "  PS-ORAM slower than Baseline: 2ch +{:.2}% / 4ch +{:.2}% (paper: +4.94%/+5.32%)",
        vs_base(1, 0, 1),
        vs_base(1, 0, 2)
    );
    println!(
        "  Rcr-PS-ORAM slower than Rcr-Baseline: 2ch +{:.2}% / 4ch +{:.2}% (paper: +2.12%/+5.36%)",
        vs_base(3, 2, 1),
        vs_base(3, 2, 2)
    );

    psoram_bench::write_results_json(
        "fig7",
        &serde_json::json!({
            "gmean_cycles": variants
                .iter()
                .enumerate()
                .map(|(vi, v)| (v.label().to_string(), cycles[vi].to_vec()))
                .collect::<std::collections::BTreeMap<_, _>>(),
        }),
    );
}
