//! Regenerates **Table 1**: energy cost constants for crash-time draining.

use psoram_energy::constants;

fn main() {
    psoram_bench::print_config_banner("Table 1: energy cost estimation");
    println!("\n| Operation                                          | Energy Cost    |");
    println!("|----------------------------------------------------|----------------|");
    println!(
        "| Accessing Data from SRAM                           | {:.0}pJ/Byte      |",
        constants::SRAM_ACCESS_PJ_PER_BYTE
    );
    println!(
        "| Moving data from L1D to NVM                        | {:.3}nJ/Byte  |",
        constants::L1_TO_NVM_NJ_PER_BYTE
    );
    println!(
        "| Moving data from L2, stash, PosMap and WPQs to NVM | {:.3}nJ/Byte  |",
        constants::L2_TO_NVM_NJ_PER_BYTE
    );
    psoram_bench::write_results_json(
        "table1",
        &serde_json::json!({
            "sram_access_pj_per_byte": constants::SRAM_ACCESS_PJ_PER_BYTE,
            "l1_to_nvm_nj_per_byte": constants::L1_TO_NVM_NJ_PER_BYTE,
            "l2_to_nvm_nj_per_byte": constants::L2_TO_NVM_NJ_PER_BYTE,
        }),
    );
}
