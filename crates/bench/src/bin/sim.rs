//! General-purpose simulation driver: pick a workload, variant, channel
//! count and scale, get a result (optionally as JSON).
//!
//! ```text
//! cargo run --release -p psoram-bench --bin sim -- \
//!     --workload mcf --variant ps-oram --channels 2 --records 50000 \
//!     --levels 16 --warmup 5000 --json
//! ```

use psoram_core::ProtocolVariant;
use psoram_system::{System, SystemConfig};
use psoram_trace::SpecWorkload;

fn parse_workload(s: &str) -> Option<SpecWorkload> {
    SpecWorkload::all()
        .into_iter()
        .find(|w| w.name().to_lowercase().contains(&s.to_lowercase()))
}

fn parse_variant(s: &str) -> Option<ProtocolVariant> {
    let key = s.to_lowercase().replace(['-', '_'], "");
    ProtocolVariant::all()
        .into_iter()
        .find(|v| v.label().to_lowercase().replace(['-', '(', ')'], "") == key)
        .or(match key.as_str() {
            "baseline" => Some(ProtocolVariant::Baseline),
            "psoram" | "ps" => Some(ProtocolVariant::PsOram),
            "naive" | "naivepsoram" => Some(ProtocolVariant::NaivePsOram),
            "fullnvm" => Some(ProtocolVariant::FullNvm),
            "fullnvmstt" | "stt" => Some(ProtocolVariant::FullNvmStt),
            "rcrbaseline" | "rcr" => Some(ProtocolVariant::RcrBaseline),
            "rcrpsoram" | "rcrps" => Some(ProtocolVariant::RcrPsOram),
            _ => None,
        })
}

struct Args {
    workload: SpecWorkload,
    variant: ProtocolVariant,
    channels: usize,
    records: usize,
    warmup: usize,
    levels: u32,
    json: bool,
    trace: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: sim [--workload NAME | --trace FILE] [--variant NAME] [--channels N] \
         [--records N] [--warmup N] [--levels L] [--json]\n\
         workloads: {}\n\
         variants:  {}",
        SpecWorkload::all().map(|w| w.name()).join(", "),
        ProtocolVariant::all().map(|v| v.label()).join(", "),
    );
    std::process::exit(2)
}

fn parse_args() -> Args {
    let mut args = Args {
        workload: SpecWorkload::Sphinx3,
        variant: ProtocolVariant::PsOram,
        channels: 1,
        records: 40_000,
        warmup: 8_000,
        levels: 18,
        json: false,
        trace: None,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let take = |i: &mut usize| -> String {
            *i += 1;
            argv.get(*i).cloned().unwrap_or_else(|| usage())
        };
        match argv[i].as_str() {
            "--workload" | "-w" => {
                let v = take(&mut i);
                args.workload = parse_workload(&v).unwrap_or_else(|| usage());
            }
            "--variant" | "-v" => {
                let v = take(&mut i);
                args.variant = parse_variant(&v).unwrap_or_else(|| usage());
            }
            "--channels" | "-c" => args.channels = take(&mut i).parse().unwrap_or_else(|_| usage()),
            "--records" | "-n" => args.records = take(&mut i).parse().unwrap_or_else(|_| usage()),
            "--warmup" => args.warmup = take(&mut i).parse().unwrap_or_else(|_| usage()),
            "--levels" | "-l" => args.levels = take(&mut i).parse().unwrap_or_else(|_| usage()),
            "--json" => args.json = true,
            "--trace" | "-t" => args.trace = Some(take(&mut i)),
            "--help" | "-h" => usage(),
            _ => usage(),
        }
        i += 1;
    }
    args
}

fn main() {
    let a = parse_args();
    let mut cfg = SystemConfig::experiment(a.variant, a.channels);
    cfg.oram = cfg.oram.with_levels(a.levels);
    cfg.oram.data_wpq_capacity = cfg.oram.path_slots();
    cfg.oram.posmap_wpq_capacity = cfg.oram.path_slots();
    let mut sys = System::new(cfg);
    let r = match &a.trace {
        Some(path) => {
            let trace = psoram_trace::Trace::load(path).unwrap_or_else(|e| {
                eprintln!("cannot load trace {path}: {e}");
                std::process::exit(1);
            });
            let n = trace.len().min(a.records);
            let name = trace.name().to_string();
            sys.run_trace(trace.records().iter().copied(), n, &name)
        }
        None => sys.run_workload_with_warmup(a.workload, a.warmup, a.records),
    };

    if a.json {
        println!(
            "{}",
            serde_json::to_string_pretty(&r).expect("serializable result")
        );
        return;
    }
    println!("workload  : {}", r.workload);
    println!(
        "variant   : {} ({} channels, L={})",
        r.variant, a.channels, a.levels
    );
    match &a.trace {
        Some(path) => println!("records   : {} replayed from {path}", r.accesses),
        None => println!("records   : {} measured (+{} warmup)", a.records, a.warmup),
    }
    println!("instrs    : {}", r.instructions);
    println!("cycles    : {}", r.exec_cycles);
    println!("IPC       : {:.4}", r.ipc());
    println!("MPKI      : {:.2}", r.mpki());
    println!(
        "NVM reads : {} ({} on-chip)",
        r.nvm.reads, r.oram.onchip_nvm_reads
    );
    println!(
        "NVM writes: {} ({} on-chip)",
        r.nvm.writes, r.oram.onchip_nvm_writes
    );
    println!(
        "ORAM      : {} accesses, mean {:.0} cycles, {} backups, {} dirty flushes",
        r.oram.accesses,
        r.oram.mean_access_cycles(),
        r.oram.backups_created,
        r.oram.dirty_entries_flushed
    );
}
