//! Ablation benchmarks for the design choices called out in DESIGN.md:
//! dirty-entry tracking (PS vs Naïve), WPQ sizing (atomic round vs
//! identity-placement sub-batches), PLB capacity, and sparse-tree scaling.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use psoram_core::{BlockAddr, OramConfig, PathOram, ProtocolVariant, RecursivePosMap};

/// Ablation 1 — dirty-entry tracking: PS-ORAM vs Naïve metadata flushing.
/// The interesting output is the *simulated* write count, but the host-time
/// difference tracks the extra WPQ work too.
fn ablation_dirty_tracking(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_dirty_tracking");
    for variant in [ProtocolVariant::PsOram, ProtocolVariant::NaivePsOram] {
        group.bench_function(variant.label(), |b| {
            let cfg = OramConfig::small_test();
            let cap = cfg.capacity_blocks();
            let mut oram = PathOram::new(cfg, variant, 5);
            let mut i = 0u64;
            b.iter(|| {
                i += 1;
                oram.write(black_box(BlockAddr(i % cap)), vec![0; 8])
                    .unwrap()
            });
        });
    }
    group.finish();
}

/// Ablation 2 — WPQ sizing: full-path-sized WPQ (one atomic round) vs
/// 4-entry WPQ (identity placement + sub-batches).
fn ablation_wpq_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_wpq_size");
    for entries in [96usize, 28, 4] {
        group.bench_with_input(
            BenchmarkId::from_parameter(entries),
            &entries,
            |b, &entries| {
                let cfg = OramConfig::small_test().with_wpq_capacity(entries, entries);
                let cap = cfg.capacity_blocks();
                let mut oram = PathOram::new(cfg, ProtocolVariant::PsOram, 5);
                let mut i = 0u64;
                b.iter(|| {
                    i += 1;
                    oram.write(black_box(BlockAddr(i % cap)), vec![0; 8])
                        .unwrap()
                });
            },
        );
    }
    group.finish();
}

/// Ablation 3 — PLB capacity: recursion depth actually walked per access.
fn ablation_plb_capacity(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_plb_capacity");
    let cfg = OramConfig::paper_default();
    for plb in [16usize, 128, 1024] {
        group.bench_with_input(BenchmarkId::from_parameter(plb), &plb, |b, &plb| {
            let mut rec = RecursivePosMap::new(&cfg, 1 << 40, plb, 9);
            let mut i = 0u64;
            b.iter(|| {
                i = i.wrapping_add(4097);
                black_box(
                    rec.access(BlockAddr(i % cfg.capacity_blocks()))
                        .total_reads(),
                )
            });
        });
    }
    group.finish();
}

/// Ablation 4 — sparse-tree scaling: host cost of a path read/write as the
/// tree height grows (the sparse store is what makes L=23 feasible at all).
fn ablation_tree_height(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_tree_height");
    // Every access materializes fresh sparse-tree buckets at paper scale;
    // keep the iteration budget small so the L=23 row stays within memory.
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(200));
    group.measurement_time(std::time::Duration::from_millis(600));
    for levels in [10u32, 14, 18, 23] {
        group.bench_with_input(
            BenchmarkId::from_parameter(levels),
            &levels,
            |b, &levels| {
                let mut cfg = OramConfig::paper_default().with_levels(levels);
                cfg.data_wpq_capacity = cfg.path_slots();
                cfg.posmap_wpq_capacity = cfg.path_slots();
                let cap = cfg.capacity_blocks();
                let mut oram = PathOram::new(cfg, ProtocolVariant::PsOram, 5);
                oram.set_payload_encryption(false);
                let mut i = 0u64;
                b.iter(|| {
                    i = i.wrapping_add(0x2545F491);
                    black_box(oram.read(BlockAddr(i % cap)).unwrap())
                });
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    ablation_dirty_tracking,
    ablation_wpq_size,
    ablation_plb_capacity,
    ablation_tree_height
);
criterion_main!(benches);
