//! Crypto-kernel microbenchmarks: the T-table AES fast path against the
//! byte-wise reference cipher, the batched CTR keystream, and a
//! full-bucket re-encryption (the shape of the controllers' per-access
//! crypto work: Z=4 slots, one CTR stream per slot).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use psoram_crypto::{Aes128, CtrCipher, ReferenceAes128};

fn bench_aes_single_block(c: &mut Criterion) {
    let reference = ReferenceAes128::new(&[7u8; 16]);
    let ttable = Aes128::new(&[7u8; 16]);
    let block = [0x5Au8; 16];
    c.bench_function("aes128_block_reference", |b| {
        b.iter(|| black_box(reference.encrypt_block(black_box(&block))));
    });
    c.bench_function("aes128_block_ttable", |b| {
        b.iter(|| black_box(ttable.encrypt_block(black_box(&block))));
    });
}

fn bench_ctr_keystream(c: &mut Criterion) {
    let cipher = CtrCipher::new(Aes128::new(&[7u8; 16]));
    let mut buf = vec![0u8; 4096];
    c.bench_function("ctr_keystream_into_4KiB", |b| {
        let mut iv = 0u128;
        b.iter(|| {
            cipher.keystream_into(black_box(iv), &mut buf);
            iv = iv.wrapping_add(256);
            black_box(buf[0])
        });
    });
}

fn bench_bucket_reencrypt(c: &mut Criterion) {
    // A Path ORAM bucket: Z=4 slots, 64-byte payloads, one IV per slot —
    // decrypt on fetch plus encrypt on write-back is two passes of this.
    const Z: usize = 4;
    const SLOT: usize = 64;
    let cipher = CtrCipher::new(Aes128::new(&[7u8; 16]));
    let mut bucket = vec![[0xA5u8; SLOT]; Z];
    c.bench_function("bucket_reencrypt_z4_64B", |b| {
        let mut epoch = 0u128;
        b.iter(|| {
            for (slot, payload) in bucket.iter_mut().enumerate() {
                cipher.apply_keystream(epoch + slot as u128, payload);
            }
            epoch = epoch.wrapping_add(Z as u128);
            black_box(bucket[0][0])
        });
    });
}

criterion_group!(
    benches,
    bench_aes_single_block,
    bench_ctr_keystream,
    bench_bucket_reencrypt
);
criterion_main!(benches);
