//! Full ORAM-access latency (host time) per protocol variant — the cost of
//! *simulating* each design, complementing the simulated-cycle results of
//! the fig5 binary.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use psoram_core::{BlockAddr, OramConfig, PathOram, ProtocolVariant};

fn bench_variants(c: &mut Criterion) {
    let mut group = c.benchmark_group("oram_access");
    for variant in ProtocolVariant::all() {
        group.bench_function(variant.label(), |b| {
            let cfg = OramConfig::small_test();
            let cap = cfg.capacity_blocks();
            let mut oram = PathOram::new(cfg, variant, 7);
            let mut i = 0u64;
            b.iter(|| {
                i = i.wrapping_add(0x9E3779B9);
                black_box(oram.read(BlockAddr(i % cap)).unwrap())
            });
        });
    }
    group.finish();
}

fn bench_ring(c: &mut Criterion) {
    use psoram_core::ring::{RingConfig, RingOram, RingVariant};
    let mut group = c.benchmark_group("ring_access");
    for variant in [RingVariant::Baseline, RingVariant::PsRing] {
        group.bench_function(variant.to_string(), |b| {
            let cfg = RingConfig::small_test();
            let cap = cfg.capacity_blocks();
            let mut oram = RingOram::new(cfg, variant, 7);
            let mut i = 0u64;
            b.iter(|| {
                i = i.wrapping_add(0x9E3779B9);
                black_box(oram.read(BlockAddr(i % cap)).unwrap())
            });
        });
    }
    group.finish();
}

fn bench_integrity(c: &mut Criterion) {
    let mut group = c.benchmark_group("integrity");
    for enabled in [false, true] {
        group.bench_function(if enabled { "on" } else { "off" }, |b| {
            let cfg = OramConfig::small_test();
            let cap = cfg.capacity_blocks();
            let mut oram = PathOram::new(cfg, ProtocolVariant::PsOram, 7);
            if enabled {
                oram.enable_integrity();
            }
            let mut i = 0u64;
            b.iter(|| {
                i = i.wrapping_add(0x9E3779B9);
                black_box(oram.read(BlockAddr(i % cap)).unwrap())
            });
        });
    }
    group.finish();
}

fn bench_crash_recovery(c: &mut Criterion) {
    c.bench_function("crash_and_recover", |b| {
        let mut oram = PathOram::new(OramConfig::small_test(), ProtocolVariant::PsOram, 7);
        for i in 0..50u64 {
            oram.write(BlockAddr(i), vec![0; 8]).unwrap();
        }
        b.iter(|| {
            oram.crash_now();
            black_box(oram.recover())
        });
    });
}

criterion_group!(
    benches,
    bench_variants,
    bench_ring,
    bench_integrity,
    bench_crash_recovery
);
criterion_main!(benches);
