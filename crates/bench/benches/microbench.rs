//! Microbenchmarks of the PS-ORAM building blocks: AES, stash, PosMap,
//! tree addressing, and the WPQ persistence domain.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use psoram_core::{Block, BlockAddr, Leaf, OramConfig, OramTree, PosMap, Stash, TempPosMap};
use psoram_crypto::{Aes128, CtrCipher};
use psoram_nvm::{PersistenceDomain, WpqEntry};

fn bench_crypto(c: &mut Criterion) {
    let aes = Aes128::new(&[7u8; 16]);
    let cipher = CtrCipher::new(aes.clone());
    c.bench_function("aes128_block", |b| {
        let block = [0x5Au8; 16];
        b.iter(|| black_box(aes.encrypt_block(black_box(&block))));
    });
    c.bench_function("ctr_encrypt_64B", |b| {
        let mut buf = [0u8; 64];
        b.iter(|| {
            cipher.apply_keystream(black_box(42), &mut buf);
            black_box(buf[0])
        });
    });
}

fn bench_stash(c: &mut Criterion) {
    c.bench_function("stash_insert_lookup_drain_200", |b| {
        b.iter_batched(
            || Stash::new(256),
            |mut stash| {
                for i in 0..200u64 {
                    stash
                        .insert(Block::new(BlockAddr(i), Leaf(i % 64), vec![0; 8]))
                        .unwrap();
                }
                black_box(stash.get(BlockAddr(100)).is_some());
                stash.drain_matching(|_| true)
            },
            BatchSize::SmallInput,
        );
    });
}

fn bench_posmap(c: &mut Criterion) {
    let mut pm = PosMap::new(1 << 23, 9);
    c.bench_function("posmap_lookup", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(0x9E37);
            black_box(pm.get(BlockAddr(i % (1 << 25))))
        });
    });
    c.bench_function("posmap_persist", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(1);
            pm.persist(BlockAddr(i % 4096), Leaf(i % (1 << 23)));
        });
    });
    let mut temp = TempPosMap::new(96);
    c.bench_function("temp_posmap_insert_remove", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            temp.insert(BlockAddr(i % 64), Leaf(i)).unwrap();
            temp.remove(BlockAddr(i % 64))
        });
    });
}

fn bench_tree(c: &mut Criterion) {
    let cfg = OramConfig::paper_default(); // L = 23
    let tree = OramTree::new(&cfg);
    c.bench_function("tree_path_indices_L23", |b| {
        let mut l = 0u64;
        b.iter(|| {
            l = (l + 0x9E3779B9) % cfg.num_leaves();
            black_box(tree.path_indices(Leaf(l)))
        });
    });
    c.bench_function("tree_read_write_path_L18", |b| {
        let cfg = OramConfig::paper_default().with_levels(18);
        let mut tree = OramTree::new(&cfg);
        let mut l = 0u64;
        b.iter(|| {
            l = (l + 12345) % cfg.num_leaves();
            let leaf = Leaf(l);
            let idx = tree.bucket_at(leaf, 18);
            tree.write_slot(idx, 0, Some(Block::new(BlockAddr(l), leaf, vec![0; 8])));
            black_box(tree.read_path(leaf).len())
        });
    });
}

fn bench_wpq(c: &mut Criterion) {
    c.bench_function("wpq_round_96_entries", |b| {
        b.iter_batched(
            || PersistenceDomain::<u64, u32>::new(96, 96),
            |mut pd| {
                pd.begin_round().unwrap();
                for i in 0..96u64 {
                    pd.push_data(WpqEntry {
                        addr: i * 64,
                        value: i,
                    })
                    .unwrap();
                    pd.push_posmap(WpqEntry {
                        addr: i * 8,
                        value: i as u32,
                    })
                    .unwrap();
                }
                pd.commit_round().unwrap();
                black_box(pd.drain())
            },
            BatchSize::SmallInput,
        );
    });
}

criterion_group!(
    benches,
    bench_crypto,
    bench_stash,
    bench_posmap,
    bench_tree,
    bench_wpq
);
criterion_main!(benches);
