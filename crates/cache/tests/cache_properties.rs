//! Property-based tests for the cache model.

use proptest::prelude::*;

use psoram_cache::{Cache, CacheConfig, Hierarchy, HierarchyConfig, MemOp};

fn tiny_config() -> CacheConfig {
    CacheConfig {
        size_bytes: 1024,
        ways: 2,
        line_bytes: 64,
        access_cycles: 1,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// An access immediately after a fill always hits.
    #[test]
    fn fill_then_hit(addrs in prop::collection::vec(0u64..(1 << 16), 1..100)) {
        let mut c = Cache::new(tiny_config());
        for &a in &addrs {
            if !c.access(a, false) {
                c.fill(a, false);
            }
            prop_assert!(c.access(a, false), "just-filled line must hit: {a:#x}");
        }
    }

    /// Resident lines never exceed capacity (conservation under eviction).
    #[test]
    fn capacity_respected(addrs in prop::collection::vec(0u64..(1 << 20), 1..200)) {
        let cfg = tiny_config();
        let mut c = Cache::new(cfg);
        let mut resident = std::collections::HashSet::new();
        for &a in &addrs {
            let line = a / 64 * 64;
            if !c.access(a, false) {
                if let Some(ev) = c.fill(a, false) {
                    resident.remove(&ev.addr);
                }
                resident.insert(line);
            }
        }
        prop_assert!(resident.len() <= 16, "more lines than capacity: {}", resident.len());
        // Every line we believe resident actually is.
        for &l in &resident {
            prop_assert!(c.contains(l), "bookkeeping mismatch at {l:#x}");
        }
    }

    /// Dirty data is never silently dropped: every dirty line leaving the
    /// hierarchy appears as a memory write.
    #[test]
    fn dirty_writeback_conservation(
        addrs in prop::collection::vec(0u64..(1 << 14), 1..300),
    ) {
        let mut h = Hierarchy::new(HierarchyConfig {
            l1d: CacheConfig { size_bytes: 256, ways: 2, line_bytes: 64, access_cycles: 1 },
            l2: CacheConfig { size_bytes: 512, ways: 2, line_bytes: 64, access_cycles: 10 },
        });
        let mut dirtied = std::collections::HashSet::new();
        let mut written_back = std::collections::HashSet::new();
        for &a in &addrs {
            let line = a / 64 * 64;
            let r = h.access(a, true);
            dirtied.insert(line);
            for op in &r.memory_ops {
                if let MemOp::Write(w) = op {
                    written_back.insert(*w);
                    // Memory writes only ever carry lines we dirtied.
                    prop_assert!(dirtied.contains(w), "phantom writeback {w:#x}");
                }
            }
        }
    }

    /// The fill read of a miss always targets the missing line itself.
    #[test]
    fn miss_reads_its_own_line(addrs in prop::collection::vec(0u64..(1 << 20), 1..100)) {
        let mut h = Hierarchy::new(HierarchyConfig::paper_default());
        for &a in &addrs {
            let r = h.access(a, false);
            if let Some(MemOp::Read(line)) = r.memory_ops.first() {
                prop_assert_eq!(*line, a / 64 * 64);
            }
        }
    }

    /// Hierarchy counters are consistent: hits + misses == accesses per
    /// level, and LLC misses never exceed L1 misses.
    #[test]
    fn counters_consistent(ops in prop::collection::vec((0u64..(1 << 16), any::<bool>()), 1..200)) {
        let mut h = Hierarchy::new(HierarchyConfig::paper_default());
        for (a, w) in &ops {
            h.access(*a, *w);
        }
        let s = h.stats();
        prop_assert_eq!(s.accesses, ops.len() as u64);
        prop_assert_eq!(s.l1d.accesses(), ops.len() as u64);
        prop_assert!(s.llc_misses <= s.l1d.misses);
        prop_assert!(s.l2.accesses() >= s.l1d.misses); // includes L1 writebacks
    }
}
