//! A generic set-associative write-back, write-allocate cache with LRU.

use serde::{Deserialize, Serialize};

/// Geometry and latency of one cache level.
///
/// # Examples
///
/// ```
/// use psoram_cache::CacheConfig;
///
/// let l1 = CacheConfig::paper_l1d();
/// assert_eq!(l1.size_bytes, 32 * 1024);
/// assert_eq!(l1.ways, 2);
/// assert_eq!(l1.num_sets(), 256);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Associativity.
    pub ways: usize,
    /// Line size in bytes (64 B throughout the paper).
    pub line_bytes: usize,
    /// Access latency in core cycles (hit cost).
    pub access_cycles: u64,
}

impl CacheConfig {
    /// Table 3 L1 data cache: 32 KB, 2-way LRU, 2-cycle access.
    pub fn paper_l1d() -> Self {
        CacheConfig {
            size_bytes: 32 * 1024,
            ways: 2,
            line_bytes: 64,
            access_cycles: 2,
        }
    }

    /// Table 3 L1 instruction cache: 32 KB, 2-way LRU, 2-cycle access.
    pub fn paper_l1i() -> Self {
        Self::paper_l1d()
    }

    /// Table 3 shared L2: 1 MB, 8-way LRU, 20-cycle access.
    pub fn paper_l2() -> Self {
        CacheConfig {
            size_bytes: 1024 * 1024,
            ways: 8,
            line_bytes: 64,
            access_cycles: 20,
        }
    }

    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry does not divide evenly.
    pub fn num_sets(&self) -> usize {
        let lines = self.size_bytes / self.line_bytes;
        assert_eq!(
            lines % self.ways,
            0,
            "cache geometry does not divide evenly"
        );
        lines / self.ways
    }
}

/// Hit/miss counters for one cache level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed.
    pub misses: u64,
    /// Dirty lines evicted (write-back traffic).
    pub writebacks: u64,
}

impl CacheStats {
    /// Total accesses observed.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Miss ratio in `[0, 1]`; zero when no accesses were made.
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses() as f64
        }
    }
}

impl psoram_obsv::MetricsSource for CacheStats {
    fn publish(&self, prefix: &str, reg: &mut psoram_obsv::MetricsRegistry) {
        use psoram_obsv::MetricsRegistry as R;
        reg.set_counter(&R::key(prefix, "hits"), self.hits);
        reg.set_counter(&R::key(prefix, "misses"), self.misses);
        reg.set_counter(&R::key(prefix, "writebacks"), self.writebacks);
        reg.set_gauge(&R::key(prefix, "miss_ratio"), self.miss_ratio());
    }
}

/// Result of inserting a line: the victim, if a dirty line was displaced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Eviction {
    /// Base address of the displaced line.
    pub addr: u64,
    /// Whether the displaced line was dirty (needs writing back).
    pub dirty: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    /// LRU timestamp; larger = more recently used.
    lru: u64,
}

const INVALID_LINE: Line = Line {
    tag: 0,
    valid: false,
    dirty: false,
    lru: 0,
};

/// A set-associative write-back, write-allocate cache with true LRU.
///
/// # Examples
///
/// ```
/// use psoram_cache::{Cache, CacheConfig};
///
/// let mut c = Cache::new(CacheConfig::paper_l1d());
/// assert!(!c.access(0x40, false)); // cold miss
/// c.fill(0x40, false);
/// assert!(c.access(0x40, false)); // hit
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    sets: Vec<Vec<Line>>,
    clock: u64,
    stats: CacheStats,
}

impl Cache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if the geometry does not divide evenly (see
    /// [`CacheConfig::num_sets`]).
    pub fn new(config: CacheConfig) -> Self {
        let sets = vec![vec![INVALID_LINE; config.ways]; config.num_sets()];
        Cache {
            config,
            sets,
            clock: 0,
            stats: CacheStats::default(),
        }
    }

    fn index_and_tag(&self, addr: u64) -> (usize, u64) {
        let line = addr / self.config.line_bytes as u64;
        let set = (line % self.sets.len() as u64) as usize;
        let tag = line / self.sets.len() as u64;
        (set, tag)
    }

    /// Looks up `addr`; on a hit updates LRU (and the dirty bit for writes)
    /// and returns `true`. On a miss returns `false` without allocating —
    /// call [`Cache::fill`] once the lower level has supplied the line.
    pub fn access(&mut self, addr: u64, is_write: bool) -> bool {
        self.clock += 1;
        let (set_idx, tag) = self.index_and_tag(addr);
        let clock = self.clock;
        for line in &mut self.sets[set_idx] {
            if line.valid && line.tag == tag {
                line.lru = clock;
                line.dirty |= is_write;
                self.stats.hits += 1;
                return true;
            }
        }
        self.stats.misses += 1;
        false
    }

    /// Allocates the line containing `addr`, marking it dirty for writes.
    /// Returns the eviction needed to make room, if any.
    pub fn fill(&mut self, addr: u64, is_write: bool) -> Option<Eviction> {
        self.clock += 1;
        let (set_idx, tag) = self.index_and_tag(addr);
        let sets_len = self.sets.len() as u64;
        let line_bytes = self.config.line_bytes as u64;
        let clock = self.clock;
        let set = &mut self.sets[set_idx];
        let victim_idx = set
            .iter()
            .enumerate()
            .min_by_key(|(_, l)| if l.valid { l.lru + 1 } else { 0 })
            .map(|(i, _)| i)
            .expect("cache set is never empty");
        let victim = set[victim_idx];
        set[victim_idx] = Line {
            tag,
            valid: true,
            dirty: is_write,
            lru: clock,
        };
        if victim.valid {
            if victim.dirty {
                self.stats.writebacks += 1;
            }
            let victim_addr = (victim.tag * sets_len + set_idx as u64) * line_bytes;
            Some(Eviction {
                addr: victim_addr,
                dirty: victim.dirty,
            })
        } else {
            None
        }
    }

    /// Invalidates the line containing `addr` if present, returning whether
    /// it was dirty.
    pub fn invalidate(&mut self, addr: u64) -> Option<bool> {
        let (set_idx, tag) = self.index_and_tag(addr);
        for line in &mut self.sets[set_idx] {
            if line.valid && line.tag == tag {
                line.valid = false;
                return Some(line.dirty);
            }
        }
        None
    }

    /// `true` if the line containing `addr` is resident.
    pub fn contains(&self, addr: u64) -> bool {
        let (set_idx, tag) = self.index_and_tag(addr);
        self.sets[set_idx].iter().any(|l| l.valid && l.tag == tag)
    }

    /// The hit/miss statistics so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// The cache geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Hit latency in core cycles.
    pub fn access_cycles(&self) -> u64 {
        self.config.access_cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 4 sets x 2 ways x 64 B = 512 B.
        Cache::new(CacheConfig {
            size_bytes: 512,
            ways: 2,
            line_bytes: 64,
            access_cycles: 1,
        })
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = tiny();
        assert!(!c.access(0, false));
        assert!(c.fill(0, false).is_none());
        assert!(c.access(0, false));
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = tiny();
        // Set 0 holds lines 0 and 4*64 .. conflict at stride 4 lines.
        let a = 0u64;
        let b = 4 * 64;
        let d = 8 * 64;
        c.fill(a, false);
        c.fill(b, false);
        c.access(a, false); // a is now MRU
        let ev = c.fill(d, false).expect("set is full, must evict");
        assert_eq!(ev.addr, b, "b was LRU");
        assert!(c.contains(a));
        assert!(!c.contains(b));
    }

    #[test]
    fn victim_address_reconstruction_roundtrips() {
        let mut c = tiny();
        let addr = 13 * 4 * 64; // arbitrary line mapping to set 0
        c.fill(addr, true);
        c.fill(4 * 64 * 99, false);
        let ev = c.fill(4 * 64 * 100, false).expect("evicts one of them");
        assert!(ev.addr == addr || ev.addr == 4 * 64 * 99);
        if ev.addr == addr {
            assert!(ev.dirty);
        }
    }

    #[test]
    fn dirty_eviction_flagged_and_counted() {
        let mut c = tiny();
        c.fill(0, true); // dirty
        c.fill(4 * 64, false);
        let ev = c.fill(8 * 64, false).unwrap();
        assert_eq!(ev.addr, 0);
        assert!(ev.dirty);
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn write_hit_sets_dirty_bit() {
        let mut c = tiny();
        c.fill(0, false);
        assert!(c.access(0, true)); // write hit dirties the line
        c.fill(4 * 64, false);
        let ev = c.fill(8 * 64, false).unwrap();
        assert!(ev.dirty);
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = tiny();
        c.fill(0, true);
        assert_eq!(c.invalidate(0), Some(true));
        assert!(!c.contains(0));
        assert_eq!(c.invalidate(0), None);
    }

    #[test]
    fn sub_line_addresses_share_a_line() {
        let mut c = tiny();
        c.fill(0x40, false);
        assert!(c.access(0x47, false));
        assert!(c.access(0x7F, false));
        assert!(!c.access(0x80, false));
    }

    #[test]
    fn miss_ratio_computed() {
        let mut c = tiny();
        c.access(0, false);
        c.fill(0, false);
        c.access(0, false);
        assert!((c.stats().miss_ratio() - 0.5).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "divide evenly")]
    fn bad_geometry_panics() {
        let _ = Cache::new(CacheConfig {
            size_bytes: 500,
            ways: 3,
            line_bytes: 64,
            access_cycles: 1,
        });
    }
}
