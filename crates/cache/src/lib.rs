//! # psoram-cache
//!
//! Set-associative write-back cache models for the PS-ORAM full-system
//! simulator: a generic LRU [`Cache`] and the paper's two-level
//! [`Hierarchy`] (32 KB 2-way L1 I/D, 1 MB 8-way shared L2 — Table 3).
//!
//! The hierarchy returns, for each CPU access, the on-chip latency plus the
//! list of memory-side operations (line fill, dirty writeback) that the LLC
//! miss generates; the system simulator forwards those to the ORAM
//! controller.
//!
//! # Examples
//!
//! ```
//! use psoram_cache::{Hierarchy, HierarchyConfig};
//!
//! let mut h = Hierarchy::new(HierarchyConfig::paper_default());
//! let first = h.access(0x1000, false);
//! assert_eq!(first.memory_ops.len(), 1); // cold miss: one line fill
//! let second = h.access(0x1000, false);
//! assert!(second.memory_ops.is_empty()); // now an L1 hit
//! assert!(second.latency_cycles < first.latency_cycles);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod hierarchy;

pub use cache::{Cache, CacheConfig, CacheStats, Eviction};
pub use hierarchy::{Hierarchy, HierarchyConfig, HierarchyResult, HierarchyStats, HitLevel, MemOp};
