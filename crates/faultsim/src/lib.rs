//! # psoram-faultsim — systematic fault injection & recovery verification
//!
//! The crash tests in `psoram-core` each probe one hand-picked failure;
//! this crate turns crash consistency into a *searched* property:
//!
//! * **Exhaustive sweep** ([`exhaustive_sweep`]): for each design, a long
//!   workload arms a crash on every access, covering all five step
//!   boundaries and every reachable `DuringEviction(k)` persist-unit
//!   index, recovering and continuing after each one.
//! * **Randomized campaign** ([`random_campaign`]): seeded multi-crash
//!   runs — random traffic, random crash points, repeated
//!   crash→recover→continue cycles, and *nested* crashes that strike
//!   while a previous recovery is still being verified. Deterministic
//!   under a fixed seed.
//! * **Device-fault campaign** ([`device_campaign`]): the randomized
//!   campaign re-run on damaged silicon — a seeded device fault plan
//!   tears flushes, loses/duplicates WPQ signals, flips persisted bits,
//!   and fails reads underneath every design. Hardened designs must
//!   repair, roll back with typed errors, or fail safe; never diverge
//!   silently.
//! * **Fleet campaigns** ([`fleet_campaign`]): N independent instances
//!   of a design run side by side from per-instance seeds; a power
//!   fault can strike exactly one instance mid-load, and the
//!   per-instance reports prove recovery stays local — the sharded
//!   service's failure model (per-shard recovery, no global
//!   stop-the-world).
//! * **Differential oracle** ([`ShadowOracle`]): an independent shadow
//!   map of logical address → last durably committed value. After every
//!   recovery it asserts that no committed write is lost and no
//!   interrupted write surfaces as anything but its old or new value,
//!   on top of the designs' own recoverability checks.
//! * **Structured reports** ([`CampaignReport`]): JSON (serde) records of
//!   crashes, recoveries, and each violation pinned to the exact crash
//!   point and access index, so any failure replays deterministically.
//! * **Deterministic parallel runner** ([`par_map`]): per-design runs fan
//!   out across cores (each derives its RNG stream from the seed and the
//!   design alone) and results come back in input order, so every report
//!   is byte-identical to the serial runner at any `PSORAM_JOBS` setting.
//!
//! The expectation is differential by design: PS-ORAM designs must come
//! out violation-free, while the non-persistent baseline must *fail* the
//! oracle — a sweep in which the baseline passes means the harness has
//! lost its teeth.
//!
//! # Examples
//!
//! ```
//! use psoram_faultsim::{sweep_variant, DesignVariant, SweepConfig};
//! use psoram_core::ProtocolVariant;
//!
//! let cfg = SweepConfig { accesses: 40, ..SweepConfig::smoke() };
//! let report = sweep_variant(DesignVariant::Path(ProtocolVariant::PsOram), &cfg);
//! assert!(report.crashes_injected > 0);
//! assert_eq!(report.violations_total, 0, "PS-ORAM must survive every crash");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod campaign;
mod device;
mod driver;
mod fleet;
mod lifetime;
mod oracle;
pub mod par;
mod report;
mod sweep;
mod target;

pub use campaign::{
    campaign_variant, campaign_variant_traced, random_campaign, random_campaign_traced,
    CampaignConfig,
};
pub use device::{
    device_campaign, device_campaign_variant, device_sweep_set, DeviceCampaignConfig,
    DeviceCampaignReport, DeviceFaultSummary, DeviceVariantReport,
};
pub use fleet::{
    fleet_campaign, wear_fleet_campaign, FleetConfig, FleetLaneReport, WearFleetConfig,
    WearFleetReport, WearShardEvidence,
};
pub use lifetime::{
    lifetime_campaign, wear_campaign, wear_sweep_set, LifetimeCampaignConfig,
    LifetimeCampaignReport, LifetimeRow, WearCampaignConfig, WearCampaignReport, WearRunReport,
};
pub use oracle::{CommitModel, PendingWrite, ShadowOracle};
pub use par::{default_jobs, par_map, resolve_jobs};
pub use report::{
    CampaignReport, CrashPointCost, VariantReport, ViolationKind, ViolationRecord,
    MAX_RECORDED_VIOLATIONS,
};
pub use sweep::{exhaustive_sweep, sweep_variant, SweepConfig};
pub use target::{DesignVariant, FaultTarget};
