//! Endurance campaigns: wearing silicon instead of merely faulty silicon.
//!
//! The device campaigns assume an ageless medium — fault probabilities
//! never drift. This module drops that assumption twice over:
//!
//! * [`wear_campaign`] is the torture side: hundreds of seeded runs in
//!   which per-line write budgets drain, wear-coupled media faults
//!   concentrate on hot lines, stuck lines are convicted and retired
//!   onto spares mid-run, and crashes land in the middle of gap moves
//!   and retirements. The contract mirrors the device campaigns': a
//!   hardened design may lose to a worn-out device, but **never
//!   silently** — every wear-induced fault must end detected, repaired,
//!   retired, rolled back under a typed error, or refused by the
//!   fail-safe latch.
//! * [`lifetime_campaign`] is the projection side: the 14 calibrated
//!   SPEC workload models drive per-line write rates through each
//!   design's measured hot-line profile under every wear-leveling
//!   scheme (none / Start-Gap / remap-on-retire), yielding
//!   years-to-failure per (workload, design, scheme) cell.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use psoram_nvm::{FaultConfig, WearConfig, WearScheme};
use psoram_trace::{SpecWorkload, TraceGenerator};

use crate::driver::Driver;
use crate::par::par_map;
use crate::target::DesignVariant;

/// The modeled core clock (matches `psoram_trace`'s 1-IPC in-order core
/// and the service layer's `CORE_HZ`).
pub const CORE_HZ: u64 = 3_200_000_000;

const SECONDS_PER_YEAR: f64 = 365.25 * 24.0 * 3600.0;

/// The hardened designs whose zero-silent-corruption contract the wear
/// campaign enforces (baselines have nothing to promise a wearing
/// device).
pub fn wear_sweep_set() -> Vec<DesignVariant> {
    vec![
        DesignVariant::Path(psoram_core::ProtocolVariant::PsOram),
        DesignVariant::Ring(psoram_core::ring::RingVariant::PsRing),
    ]
}

/// Parameters of a wear-torture campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct WearCampaignConfig {
    /// Master seed: every run's RNG stream derives from
    /// `(seed, design, scheme, run)` alone, so reports are
    /// byte-identical at any job count.
    pub seed: u64,
    /// Seeded runs per (design, scheme) cell.
    pub runs_per_cell: u64,
    /// Workload accesses per run (on top of the prefill).
    pub accesses: u64,
    /// Power faults injected per run (each lands mid-traffic, so staged
    /// gap moves and retirements are exposed to the crash).
    pub crashes: u64,
    /// Distinct logical addresses the workload touches.
    pub working_set: u64,
    /// Arm the full campaign fault mix on top of the wear arm
    /// (`false` = wear-induced faults only).
    pub mixed_faults: bool,
    /// Worker threads (`0` = default pool sizing).
    pub jobs: usize,
}

impl Default for WearCampaignConfig {
    fn default() -> Self {
        WearCampaignConfig {
            seed: 0x0EAF,
            // 2 hardened designs x 3 schemes x 84 seeds = 504 runs.
            runs_per_cell: 84,
            accesses: 30,
            crashes: 2,
            working_set: 16,
            mixed_faults: false,
            jobs: 0,
        }
    }
}

impl WearCampaignConfig {
    /// A reduced configuration for quick smoke runs.
    pub fn smoke() -> Self {
        WearCampaignConfig {
            runs_per_cell: 6,
            accesses: 20,
            ..Self::default()
        }
    }

    /// Total runs this configuration executes.
    pub fn total_runs(&self) -> u64 {
        wear_sweep_set().len() as u64 * WearScheme::all().len() as u64 * self.runs_per_cell
    }
}

/// One wear-torture run's evidence.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WearRunReport {
    /// Design label.
    pub design: String,
    /// Wear-leveling scheme label.
    pub scheme: String,
    /// The run's derived seed.
    pub seed: u64,
    /// Accesses completed (prefill included).
    pub accesses: u64,
    /// Ground truth: wear faults the plan injected.
    pub wear_faults_injected: u64,
    /// Ground truth: stuck (conviction-grade) wear faults injected.
    pub wear_stuck_injected: u64,
    /// Lines retired onto spares.
    pub retirements: u64,
    /// Repairs from the redundant copy onto fresh spares.
    pub repairs: u64,
    /// Start-Gap rotations performed.
    pub gap_moves: u64,
    /// Mapping commit rounds and crash rollbacks.
    pub map_commits: u64,
    /// Mapping rollbacks at crash.
    pub map_reverts: u64,
    /// Whether the run ended in the fail-safe poison latch (a *detected*
    /// end state — the spare pool ran dry and the design refused
    /// service rather than serve stuck bits).
    pub failsafe: bool,
    /// Silent divergences from the shadow oracle — the number that must
    /// be zero.
    pub silent_violations: u64,
    /// The differential verdict from the underlying crash harness.
    pub matches_expectation: bool,
}

/// A whole wear campaign: one report per seeded run, in
/// (design, scheme, run) order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WearCampaignReport {
    /// Always `"wear"`.
    pub mode: String,
    /// Master seed.
    pub seed: u64,
    /// Per-run evidence.
    pub runs: Vec<WearRunReport>,
}

impl WearCampaignReport {
    /// The campaign's headline contract: every run reported zero silent
    /// corruption — wear-induced faults were detected, repaired,
    /// retired, typed-rolled-back, or refused, never served.
    pub fn zero_silent_corruption(&self) -> bool {
        self.runs
            .iter()
            .all(|r| r.silent_violations == 0 && r.matches_expectation)
    }

    /// Total retirements across the campaign.
    pub fn total_retirements(&self) -> u64 {
        self.runs.iter().map(|r| r.retirements).sum()
    }

    /// Total ground-truth wear faults injected.
    pub fn total_wear_faults(&self) -> u64 {
        self.runs.iter().map(|r| r.wear_faults_injected).sum()
    }

    /// Runs that ended in the fail-safe latch.
    pub fn failsafe_runs(&self) -> u64 {
        self.runs.iter().filter(|r| r.failsafe).count() as u64
    }
}

/// Derives one run's seed from the campaign seed and its cell
/// coordinates (golden-ratio mixing, same discipline as the fleet).
fn run_seed(seed: u64, cell: u64, run: u64) -> u64 {
    seed.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(cell * 1013 + run + 1))
}

/// Executes one wear-torture run.
fn wear_run(
    cfg: &WearCampaignConfig,
    variant: DesignVariant,
    scheme: WearScheme,
    cell: u64,
    run: u64,
) -> WearRunReport {
    let s = run_seed(cfg.seed, cell, run);
    let mut rng = StdRng::seed_from_u64(s ^ 0x0EA4);
    let mut d = Driver::new(variant, s, 0);
    d.device = true;
    d.device_summary.hardened = true;
    let working_set = cfg.working_set.min(d.target.capacity_blocks());
    d.prefill(working_set);
    // Arms only after prefill, so the committed shadow starts honest.
    let faults = if cfg.mixed_faults {
        FaultConfig::wear_mix()
    } else {
        FaultConfig::wear_only()
    };
    d.target.enable_device_faults(s ^ 0xFA_17, faults);
    // Stress endurance: tiny budgets, pre-aged lines, a small spare
    // pool — a device deep into its life from the first access.
    d.target.enable_wear(s ^ 0x0EA5, WearConfig::stress(scheme));

    let crash_every = if cfg.crashes > 0 {
        (cfg.accesses / (cfg.crashes + 1)).max(1)
    } else {
        u64::MAX
    };
    for access in 0..cfg.accesses {
        if d.aborted || d.poisoned {
            break;
        }
        let attempt = d.target.access_attempts();
        let addr = rng.gen_range(0..working_set);
        let crashed = if rng.gen_bool(0.6) {
            let value = d.next_payload();
            d.do_write(addr, value)
        } else {
            d.do_read(addr)
        };
        if crashed {
            d.handle_crash(attempt, None, addr, None);
        }
        if access % crash_every == crash_every - 1 && !d.poisoned && !d.aborted {
            // Power fault at rest: staged gap moves and retirements from
            // the drained rounds face the crash/revert path.
            d.crash_at_rest();
        }
    }

    let wear = d.target.wear_stats().unwrap_or_default();
    let injected = d.target.device_fault_stats().unwrap_or_default();
    let failsafe = d.poisoned;
    let design = d.target.label();
    let report = d.finish();
    WearRunReport {
        design,
        scheme: scheme.label().to_string(),
        seed: s,
        accesses: report.accesses,
        wear_faults_injected: injected.wear_faults,
        wear_stuck_injected: injected.wear_stuck_faults,
        retirements: wear.retirements,
        repairs: wear.repairs,
        gap_moves: wear.gap_moves,
        map_commits: wear.map_commits,
        map_reverts: wear.map_reverts,
        failsafe,
        silent_violations: report.violations_total,
        matches_expectation: report.matches_expectation,
    }
}

/// Runs the wear-torture campaign: `runs_per_cell` seeded runs for every
/// (hardened design, wear-leveling scheme) cell, fanned out over the
/// deterministic worker pool. Byte-identical at any job count.
pub fn wear_campaign(cfg: &WearCampaignConfig) -> WearCampaignReport {
    let mut cells: Vec<(DesignVariant, WearScheme, u64, u64)> = Vec::new();
    let mut cell_ix = 0u64;
    for variant in wear_sweep_set() {
        for scheme in WearScheme::all() {
            for run in 0..cfg.runs_per_cell {
                cells.push((variant, scheme, cell_ix, run));
            }
            cell_ix += 1;
        }
    }
    let runs = par_map(cfg.jobs, cells, |(variant, scheme, cell, run)| {
        wear_run(cfg, variant, scheme, cell, run)
    });
    WearCampaignReport {
        mode: "wear".into(),
        seed: cfg.seed,
        runs,
    }
}

// ── lifetime projection ────────────────────────────────────────────────

/// Parameters of a lifetime-projection campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct LifetimeCampaignConfig {
    /// Master seed (drives trace generation and the probe controllers).
    pub seed: u64,
    /// Trace records sampled per workload for the access-rate model.
    pub trace_records: usize,
    /// Accesses driven through each (design, scheme) probe to measure
    /// the hot-line write profile.
    pub probe_accesses: u64,
    /// Cell endurance the projection assumes (mean writes per line).
    pub mean_endurance: f64,
    /// Spare lines per device the remap scheme can retire onto.
    pub spare_lines: u64,
    /// Worker threads (`0` = default pool sizing).
    pub jobs: usize,
}

impl Default for LifetimeCampaignConfig {
    fn default() -> Self {
        LifetimeCampaignConfig {
            seed: 0x11FE,
            trace_records: 20_000,
            probe_accesses: 240,
            mean_endurance: 1e7,
            spare_lines: 64,
            jobs: 0,
        }
    }
}

impl LifetimeCampaignConfig {
    /// A reduced configuration for quick smoke runs.
    pub fn smoke() -> Self {
        LifetimeCampaignConfig {
            trace_records: 4_000,
            probe_accesses: 80,
            ..Self::default()
        }
    }
}

/// One (workload, design, scheme) cell of the lifetime projection.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LifetimeRow {
    /// SPEC workload name.
    pub workload: String,
    /// Design label.
    pub design: String,
    /// Wear-leveling scheme label.
    pub scheme: String,
    /// ORAM accesses per second the workload sustains (trace model).
    pub accesses_per_sec: f64,
    /// Hottest physical line's writes per ORAM access (probe measure).
    pub hot_line_writes_per_access: f64,
    /// Physical lines the probe touched.
    pub lines_touched: u64,
    /// Start-Gap rotations during the probe.
    pub gap_moves: u64,
    /// Projected years until the hottest line exhausts its budget
    /// (remap multiplies the budget by the spare-chain factor).
    pub years_to_failure: f64,
}

/// The lifetime-projection report: 14 workloads × designs × schemes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LifetimeCampaignReport {
    /// Always `"lifetime"`.
    pub mode: String,
    /// Master seed.
    pub seed: u64,
    /// Assumed mean cell endurance (writes per line).
    pub mean_endurance: f64,
    /// Per-cell projections, in (workload, design, scheme) order.
    pub rows: Vec<LifetimeRow>,
}

impl LifetimeCampaignReport {
    /// The best (longest-lived) scheme label for a (workload, design)
    /// pair, for report summaries.
    pub fn best_scheme(&self, workload: &str, design: &str) -> Option<&LifetimeRow> {
        self.rows
            .iter()
            .filter(|r| r.workload == workload && r.design == design)
            .max_by(|a, b| a.years_to_failure.total_cmp(&b.years_to_failure))
    }

    /// Mean years-to-failure across all cells for one scheme.
    pub fn mean_years(&self, scheme: &str) -> f64 {
        let rows: Vec<&LifetimeRow> = self.rows.iter().filter(|r| r.scheme == scheme).collect();
        if rows.is_empty() {
            return 0.0;
        }
        rows.iter().map(|r| r.years_to_failure).sum::<f64>() / rows.len() as f64
    }
}

/// Hot-line write profile of one (design, scheme) probe: writes on the
/// hottest physical line per access, lines touched, and gap moves.
#[derive(Debug, Clone, Copy)]
struct WearProbe {
    hot_writes_per_access: f64,
    lines_touched: u64,
    gap_moves: u64,
}

/// Measures a design's physical write concentration under a leveling
/// scheme: a clean (fault-free) run with wear accounting armed.
fn probe_design(
    cfg: &LifetimeCampaignConfig,
    variant: DesignVariant,
    scheme: WearScheme,
) -> WearProbe {
    let s = cfg
        .seed
        .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(scheme as u64 + 1));
    let mut target = variant.build(s);
    target.enable_wear(s, WearConfig::paper_default(scheme));
    let mut rng = StdRng::seed_from_u64(s ^ 0x9B0B);
    let cap = target.capacity_blocks();
    let payload = target.payload_bytes();
    let working_set = 24u64.min(cap);
    let mut written: Vec<u64> = Vec::new();
    for access in 0..cfg.probe_accesses {
        let addr = rng.gen_range(0..working_set);
        if written.is_empty() || rng.gen_bool(0.6) {
            let fill = (access & 0xFF) as u8;
            target
                .write(addr, vec![fill; payload])
                .expect("clean probe never crashes");
            written.push(addr);
        } else {
            let idx = rng.gen_range(0..written.len());
            target
                .read(written[idx])
                .expect("clean probe never crashes");
        }
    }
    let (max_line_writes, lines_touched) = target
        .wear_line_profile()
        .expect("wear accounting was armed");
    let stats = target.wear_stats().expect("wear accounting was armed");
    WearProbe {
        hot_writes_per_access: max_line_writes as f64 / cfg.probe_accesses as f64,
        lines_touched,
        gap_moves: stats.gap_moves,
    }
}

/// The trace-model access rate for one workload: ORAM accesses per
/// second on the modeled [`CORE_HZ`] in-order core.
fn workload_access_rate(cfg: &LifetimeCampaignConfig, w: SpecWorkload) -> f64 {
    let spec = w.spec();
    let tweak = w
        .name()
        .bytes()
        .fold(0u64, |h, b| h.wrapping_mul(31).wrapping_add(b as u64));
    let gen = TraceGenerator::new(&spec, cfg.seed ^ tweak);
    let mut instrs = 0u64;
    let mut accesses = 0u64;
    for rec in gen.take(cfg.trace_records) {
        instrs += rec.instrs_before + 1;
        accesses += 1;
    }
    if instrs == 0 {
        return 0.0;
    }
    accesses as f64 * CORE_HZ as f64 / instrs as f64
}

/// Years-to-failure for one cell: the hottest line's budget divided by
/// its write rate. Remap-on-retire chains the spare pool onto the
/// hottest line — each retirement replaces it with a fresh-budget spare,
/// multiplying effective endurance by `1 + spares`.
fn project_years(
    cfg: &LifetimeCampaignConfig,
    scheme: WearScheme,
    probe: WearProbe,
    rate: f64,
) -> f64 {
    let line_writes_per_sec = probe.hot_writes_per_access * rate;
    if line_writes_per_sec <= 0.0 {
        return f64::INFINITY;
    }
    let budget = match scheme {
        WearScheme::Remap => cfg.mean_endurance * (1.0 + cfg.spare_lines as f64),
        WearScheme::None | WearScheme::StartGap => cfg.mean_endurance,
    };
    budget / (line_writes_per_sec * SECONDS_PER_YEAR)
}

/// Runs the lifetime projection: 14 SPEC workloads × the sweep-set
/// designs × every leveling scheme. The probes fan out over the worker
/// pool; trace rates are computed once per workload. Byte-identical at
/// any job count.
pub fn lifetime_campaign(cfg: &LifetimeCampaignConfig) -> LifetimeCampaignReport {
    // Hardened designs only: the baselines bypass the persistence
    // domain's drain, so they record no media wear to project from.
    let designs = wear_sweep_set();
    let schemes = WearScheme::all();
    let probes_in: Vec<(DesignVariant, WearScheme)> = designs
        .iter()
        .flat_map(|&d| schemes.iter().map(move |&s| (d, s)))
        .collect();
    let probes = par_map(cfg.jobs, probes_in.clone(), |(d, s)| {
        probe_design(cfg, d, s)
    });
    let rates: Vec<(SpecWorkload, f64)> = SpecWorkload::all()
        .into_iter()
        .map(|w| (w, workload_access_rate(cfg, w)))
        .collect();

    let mut rows = Vec::with_capacity(rates.len() * probes.len());
    for &(w, rate) in &rates {
        for (ix, &(d, s)) in probes_in.iter().enumerate() {
            let probe = probes[ix];
            rows.push(LifetimeRow {
                workload: w.name().to_string(),
                design: d.label(),
                scheme: s.label().to_string(),
                accesses_per_sec: rate,
                hot_line_writes_per_access: probe.hot_writes_per_access,
                lines_touched: probe.lines_touched,
                gap_moves: probe.gap_moves,
                years_to_failure: project_years(cfg, s, probe, rate),
            });
        }
    }
    LifetimeCampaignReport {
        mode: "lifetime".into(),
        seed: cfg.seed,
        mean_endurance: cfg.mean_endurance,
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wear_smoke_campaign_reports_no_silent_corruption() {
        let report = wear_campaign(&WearCampaignConfig::smoke());
        assert_eq!(
            report.runs.len() as u64,
            WearCampaignConfig::smoke().total_runs()
        );
        assert!(report.zero_silent_corruption());
        assert!(
            report.total_wear_faults() > 0,
            "the stress endurance config must actually inject wear faults"
        );
    }

    #[test]
    fn wear_campaign_serde_round_trips() {
        let mut cfg = WearCampaignConfig::smoke();
        cfg.runs_per_cell = 1;
        let r = wear_campaign(&cfg);
        let json = serde_json::to_string(&r).unwrap();
        let back: WearCampaignReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn lifetime_rows_cover_the_full_matrix() {
        let r = lifetime_campaign(&LifetimeCampaignConfig::smoke());
        assert_eq!(
            r.rows.len(),
            14 * wear_sweep_set().len() * WearScheme::all().len()
        );
        for row in &r.rows {
            assert!(
                row.accesses_per_sec > 0.0,
                "{}: zero access rate",
                row.workload
            );
            assert!(
                row.years_to_failure.is_finite() && row.years_to_failure > 0.0,
                "{}/{}/{}: bad projection",
                row.workload,
                row.design,
                row.scheme
            );
        }
    }

    #[test]
    fn leveling_extends_projected_lifetime() {
        let r = lifetime_campaign(&LifetimeCampaignConfig::smoke());
        let none = r.mean_years("none");
        let sg = r.mean_years("start_gap");
        let remap = r.mean_years("remap");
        assert!(
            sg > none,
            "Start-Gap must spread the hot line: {sg} vs {none}"
        );
        assert!(
            remap > none,
            "the spare chain must outlive the bare device: {remap} vs {none}"
        );
    }
}
