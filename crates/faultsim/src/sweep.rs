//! Exhaustive fault sweep: crash at every step boundary and every
//! mid-eviction persist-unit index, recover, and continue.
//!
//! The sweep runs one long workload per design and arms a crash for
//! *every* access, alternating between the five step-boundary points and
//! a scan of `DuringEviction(k)` for increasing `k`. When a
//! `DuringEviction(k)` plan does not fire (the access had fewer than
//! `k + 1` persist units) the scan wraps back to `k = 0`, so over a long
//! workload every reachable persist-unit index is hit many times; the
//! largest index that fired is reported as coverage evidence.

use psoram_core::CrashPoint;

use crate::driver::Driver;
use crate::report::{CampaignReport, VariantReport};
use crate::target::DesignVariant;

/// Parameters of an exhaustive sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepConfig {
    /// Seed for the controllers (the sweep itself is deterministic).
    pub seed: u64,
    /// Workload accesses per design (each arms one crash attempt).
    pub accesses: u64,
    /// Distinct logical addresses the workload touches.
    pub working_set: u64,
    /// Recoveries between full shadow read-backs (0 → final check only).
    pub full_check_every: u64,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            seed: 0xFA01,
            accesses: 1000,
            working_set: 32,
            full_check_every: 50,
        }
    }
}

impl SweepConfig {
    /// A reduced configuration for quick smoke runs.
    pub fn smoke() -> Self {
        SweepConfig {
            accesses: 120,
            working_set: 16,
            ..Self::default()
        }
    }
}

/// Sweeps one design; see the module docs for the schedule.
pub fn sweep_variant(variant: DesignVariant, cfg: &SweepConfig) -> VariantReport {
    let mut d = Driver::new(variant, cfg.seed, cfg.full_check_every);
    let working_set = cfg.working_set.min(d.target.capacity_blocks());
    d.prefill(working_set);

    let steps = CrashPoint::step_boundaries();
    let mut step_i = 0;
    let mut evict_k = 0usize;
    for i in 0..cfg.accesses {
        if d.aborted {
            break;
        }
        // Alternate step-boundary and mid-eviction crashes so both
        // families interleave with every workload position.
        let mid_eviction = i % 2 == 1;
        let point = if mid_eviction {
            CrashPoint::DuringEviction(evict_k)
        } else {
            steps[step_i]
        };
        let attempt = d.target.access_attempts();
        d.target.inject_crash(point);

        let addr = (i.wrapping_mul(7) + 3) % working_set;
        let crashed = if i % 2 == 0 {
            let value = d.next_payload();
            d.do_write(addr, value)
        } else {
            d.do_read(addr)
        };

        if crashed {
            d.handle_crash(attempt, Some(point), addr, None);
            if mid_eviction {
                evict_k += 1;
            }
        } else {
            // The plan never fired this access (a point the design does
            // not reach, or `k` past this access's persist-unit count).
            d.target.disarm_crash();
            if mid_eviction {
                evict_k = 0;
            }
        }
        if !mid_eviction {
            step_i = (step_i + 1) % steps.len();
        }
    }
    d.finish()
}

/// Sweeps every design in [`DesignVariant::sweep_set`].
///
/// Designs run in parallel (see [`crate::par_map`]); each sweep is
/// deterministic in `(variant, cfg)` alone and results are collected in
/// sweep-set order, so the report is identical at any job count.
pub fn exhaustive_sweep(cfg: &SweepConfig) -> CampaignReport {
    let variants = crate::par_map(0, DesignVariant::sweep_set(), |v| sweep_variant(v, cfg));
    CampaignReport {
        mode: "exhaustive".into(),
        seed: cfg.seed,
        variants,
    }
}
