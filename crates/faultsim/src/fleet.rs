//! Fleet campaigns: crash-and-recover one instance of a design while
//! its siblings keep serving.
//!
//! The single-target campaigns in this crate stop the world: one
//! controller, one crash plan, one recovery. A sharded service runs N
//! independent persistence domains side by side, and its failure story
//! is different — a power-fault domain covers *one* shard, so recovery
//! must be local. [`fleet_campaign`] drives N independent instances of a
//! design (per-instance seeds, fanned out over [`par_map`]) and can
//! crash exactly one of them mid-load; the per-instance reports let a
//! caller assert the isolation contract: every untargeted instance's
//! report is byte-identical to a crash-free fleet run, and the targeted
//! instance recovers through the same device/replay-hardened `recover()`
//! path the global campaigns exercise.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::par::par_map;
use crate::target::DesignVariant;

/// Configuration of one fleet campaign.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FleetConfig {
    /// The design every instance is built from.
    pub design: DesignVariant,
    /// Number of independent instances (shards) in the fleet.
    pub instances: u32,
    /// Accesses driven through each instance.
    pub accesses_per_instance: u64,
    /// Master seed; each instance derives its own RNG stream from
    /// `(seed, instance)` alone, so reports are byte-identical at any
    /// worker count.
    pub seed: u64,
    /// Crash this instance mid-load (`None` runs the fleet crash-free).
    pub crash_instance: Option<u32>,
    /// Accesses the targeted instance completes before the power fault.
    pub crash_after: u64,
    /// Worker threads (`0` = default pool sizing).
    pub jobs: usize,
}

impl FleetConfig {
    /// A small deterministic fleet for tests and CI smoke.
    pub fn smoke() -> Self {
        FleetConfig {
            design: DesignVariant::Path(psoram_core::ProtocolVariant::PsOram),
            instances: 3,
            accesses_per_instance: 120,
            seed: 0xF1EE7,
            crash_instance: None,
            crash_after: 40,
            jobs: 0,
        }
    }
}

/// What one fleet instance did, in a serde-stable shape so isolation
/// tests can compare instances byte-for-byte across runs.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FleetLaneReport {
    /// Instance index within the fleet.
    pub instance: u32,
    /// Design label.
    pub design: String,
    /// Accesses completed.
    pub accesses: u64,
    /// Power faults injected on this instance.
    pub crashes: u64,
    /// Recoveries that passed the design's consistency check.
    pub recoveries_consistent: u64,
    /// Controller clock after the run (core cycles).
    pub clock: u64,
    /// Final content audit against the design's own ledger.
    pub verify_ok: bool,
    /// Deterministic digest of the instance's recoverable state
    /// (hex-encoded; `0` when the design does not model one).
    pub state_digest: String,
}

/// Seed for instance `i`: mixed so streams never overlap between
/// instances (same derivation discipline as the per-shard service
/// lanes).
fn instance_seed(seed: u64, instance: u32) -> u64 {
    seed.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(instance as u64 + 1))
}

/// Runs one instance's load (and optional mid-load power fault) to a
/// report. Deterministic in `(cfg, instance)`.
fn run_instance(cfg: &FleetConfig, instance: u32) -> FleetLaneReport {
    let mut target = cfg.design.build(instance_seed(cfg.seed, instance));
    let mut rng = StdRng::seed_from_u64(instance_seed(cfg.seed, instance) ^ 0x7EA7);
    let cap = target.capacity_blocks();
    let payload = target.payload_bytes();
    let crash_here = cfg.crash_instance == Some(instance);

    let mut written: Vec<u64> = Vec::new();
    let mut crashes = 0u64;
    let mut recoveries_consistent = 0u64;
    let mut completed = 0u64;
    while completed < cfg.accesses_per_instance {
        // 70/30 write/read mix; reads only touch written addresses.
        let addr = rng.gen_range(0..cap);
        let write = written.is_empty() || rng.gen_range(0..10u32) < 7;
        let res = if write {
            let tag = (completed & 0xFF) as u8;
            target.write(addr, vec![tag; payload]).map(|_| ())
        } else {
            let idx = rng.gen_range(0..written.len());
            target.read(written[idx]).map(|_| ())
        };
        match res {
            Ok(()) => {
                if write {
                    written.push(addr);
                }
                completed += 1;
            }
            Err(e) => panic!("fleet instance {instance}: access failed: {e}"),
        }
        if crash_here && completed == cfg.crash_after {
            // The power fault covers this persistence domain only; the
            // sibling instances never see it.
            target.crash_now();
            crashes += 1;
            let report = target.recover();
            if report.consistent {
                recoveries_consistent += 1;
            }
        }
    }
    let verify_ok = target.verify_contents(crashes > 0).is_ok();
    FleetLaneReport {
        instance,
        design: target.label(),
        accesses: completed,
        crashes,
        recoveries_consistent,
        clock: target.clock(),
        verify_ok,
        state_digest: format!("{:032x}", target.state_digest()),
    }
}

/// Runs the fleet: every instance is an independent persistence domain
/// driven from its own seed, so the lanes fan out over the worker pool
/// and the report vector is byte-identical at any `jobs` count.
pub fn fleet_campaign(cfg: &FleetConfig) -> Vec<FleetLaneReport> {
    let instances: Vec<u32> = (0..cfg.instances).collect();
    par_map(cfg.jobs, instances, |i| run_instance(cfg, i))
}

// ── wear-aware fleet: one near-EOL shard among healthy siblings ────────

/// Configuration of a wear-aware fleet run: the base fleet plus one
/// instance whose NVM is deep into its write-endurance budget.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WearFleetConfig {
    /// The base fleet (design, instances, accesses, seed, jobs).
    pub fleet: FleetConfig,
    /// The instance running on worn silicon.
    pub wear_instance: u32,
    /// Wear-leveling scheme on the worn instance.
    pub scheme: psoram_nvm::WearScheme,
    /// Writes pre-aged onto every line of the worn instance (pushes it
    /// toward end-of-life from the first access).
    pub preage_writes: u64,
}

impl WearFleetConfig {
    /// A small deterministic wear fleet for tests and CI smoke.
    pub fn smoke() -> Self {
        WearFleetConfig {
            fleet: FleetConfig::smoke(),
            wear_instance: 1,
            scheme: psoram_nvm::WearScheme::Remap,
            preage_writes: 280,
        }
    }
}

/// Degradation evidence from the worn instance: wear faults absorbed,
/// lines retired, and the latency tail they cost.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WearShardEvidence {
    /// The worn instance's index.
    pub instance: u32,
    /// Ground truth: wear faults the plan injected.
    pub wear_faults_injected: u64,
    /// Lines retired onto spares.
    pub retirements: u64,
    /// Repairs from the redundant copy onto fresh spares.
    pub repairs: u64,
    /// Start-Gap rotations performed.
    pub gap_moves: u64,
    /// Spare lines still available at the end of the run.
    pub spares_left: u64,
    /// Whether the instance ended in the fail-safe poison latch.
    pub poisoned: bool,
    /// Accesses the instance completed before the run (or the latch)
    /// ended it.
    pub completed_accesses: u64,
    /// Median per-access service cycles on the worn instance.
    pub p50_cycles: u64,
    /// 99th-percentile per-access service cycles (retirement repairs
    /// and retry backoffs land here).
    pub p99_cycles: u64,
}

/// A wear-aware fleet run: the per-instance lane reports (the worn
/// instance included) plus the worn instance's degradation evidence.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WearFleetReport {
    /// Per-instance reports, fleet order.
    pub lanes: Vec<FleetLaneReport>,
    /// The worn instance's evidence.
    pub wear: WearShardEvidence,
}

/// Sorted-slice percentile (nearest-rank, matching the service layer).
fn pct(sorted: &[u64], p: u64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (sorted.len() as u64 * p).div_ceil(100).max(1) as usize;
    sorted[rank.min(sorted.len()) - 1]
}

/// Runs the worn instance: same traffic derivation as [`run_instance`],
/// but on pre-aged silicon with the wear fault arm live. Poisoning ends
/// the run early (a detected fail-safe, not a failure of the harness).
fn run_wear_instance(cfg: &WearFleetConfig, instance: u32) -> (FleetLaneReport, WearShardEvidence) {
    let fleet = &cfg.fleet;
    let seed = instance_seed(fleet.seed, instance);
    let mut target = fleet.design.build(seed);
    let mut wcfg = psoram_nvm::WearConfig::stress(cfg.scheme);
    wcfg.preage_writes = cfg.preage_writes;
    target.enable_device_faults(seed ^ 0x0EA4, psoram_nvm::FaultConfig::wear_only());
    target.enable_wear(seed ^ 0x0EA5, wcfg);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x7EA7);
    let cap = target.capacity_blocks();
    let payload = target.payload_bytes();

    let mut written: Vec<u64> = Vec::new();
    let mut latencies: Vec<u64> = Vec::new();
    let mut completed = 0u64;
    let mut poisoned = false;
    while completed < fleet.accesses_per_instance {
        let addr = rng.gen_range(0..cap);
        let write = written.is_empty() || rng.gen_range(0..10u32) < 7;
        let before = target.clock();
        let res = if write {
            let tag = (completed & 0xFF) as u8;
            target.write(addr, vec![tag; payload]).map(|_| ())
        } else {
            let idx = rng.gen_range(0..written.len());
            target.read(written[idx]).map(|_| ())
        };
        match res {
            Ok(()) => {
                latencies.push(target.clock().saturating_sub(before));
                if write {
                    written.push(addr);
                }
                completed += 1;
            }
            Err(psoram_core::OramError::Poisoned { .. }) => {
                poisoned = true;
                break;
            }
            Err(e) => panic!("wear instance {instance}: access failed: {e}"),
        }
    }
    latencies.sort_unstable();
    let verify_ok = poisoned || target.verify_contents(false).is_ok();
    let wear = target.wear_stats().unwrap_or_default();
    let injected = target.device_fault_stats().unwrap_or_default();
    let spares_left = target.wear_spares_left().unwrap_or(0);
    let lane = FleetLaneReport {
        instance,
        design: target.label(),
        accesses: completed,
        crashes: 0,
        recoveries_consistent: 0,
        clock: target.clock(),
        verify_ok,
        state_digest: format!("{:032x}", target.state_digest()),
    };
    let evidence = WearShardEvidence {
        instance,
        wear_faults_injected: injected.wear_faults,
        retirements: wear.retirements,
        repairs: wear.repairs,
        gap_moves: wear.gap_moves,
        spares_left,
        poisoned,
        completed_accesses: completed,
        p50_cycles: pct(&latencies, 50),
        p99_cycles: pct(&latencies, 99),
    };
    (lane, evidence)
}

/// Runs the wear-aware fleet: the `wear_instance` runs on pre-aged
/// silicon with wear faults live, every sibling runs the ordinary
/// [`run_instance`] path — so sibling lane reports are byte-identical
/// to a wear-free [`fleet_campaign`] of the same [`FleetConfig`].
///
/// # Panics
///
/// Panics if `wear_instance` is outside the fleet.
pub fn wear_fleet_campaign(cfg: &WearFleetConfig) -> WearFleetReport {
    assert!(
        cfg.wear_instance < cfg.fleet.instances,
        "wear instance outside the fleet"
    );
    let instances: Vec<u32> = (0..cfg.fleet.instances).collect();
    let outcomes = par_map(cfg.fleet.jobs, instances, |i| {
        if i == cfg.wear_instance {
            let (lane, ev) = run_wear_instance(cfg, i);
            (lane, Some(ev))
        } else {
            (run_instance(&cfg.fleet, i), None)
        }
    });
    let mut lanes = Vec::with_capacity(outcomes.len());
    let mut wear = None;
    for (lane, ev) in outcomes {
        lanes.push(lane);
        if let Some(e) = ev {
            wear = Some(e);
        }
    }
    WearFleetReport {
        lanes,
        wear: wear.expect("the wear instance always reports"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleet_reports_are_worker_count_invariant() {
        let cfg = FleetConfig::smoke();
        let serial = fleet_campaign(&FleetConfig {
            jobs: 1,
            ..cfg.clone()
        });
        let parallel = fleet_campaign(&FleetConfig { jobs: 4, ..cfg });
        assert_eq!(serial, parallel);
    }

    #[test]
    fn wear_fleet_keeps_healthy_siblings_byte_identical() {
        let cfg = WearFleetConfig::smoke();
        let plain = fleet_campaign(&cfg.fleet);
        let worn = wear_fleet_campaign(&cfg);
        assert_eq!(worn.lanes.len(), plain.len());
        for (lane, clean) in worn.lanes.iter().zip(&plain) {
            if lane.instance != cfg.wear_instance {
                assert_eq!(
                    lane, clean,
                    "healthy sibling {} diverged from the wear-free fleet",
                    lane.instance
                );
            }
        }
        let w = &worn.wear;
        assert_eq!(w.instance, cfg.wear_instance);
        assert!(w.wear_faults_injected > 0, "near-EOL shard saw no faults");
        assert!(w.completed_accesses > 0);
        assert!(w.p50_cycles <= w.p99_cycles);
        if !w.poisoned {
            assert!(worn.lanes[cfg.wear_instance as usize].verify_ok);
        }
    }

    #[test]
    fn wear_fleet_is_worker_count_invariant() {
        let mut cfg = WearFleetConfig::smoke();
        cfg.fleet.jobs = 1;
        let serial = wear_fleet_campaign(&cfg);
        cfg.fleet.jobs = 4;
        let parallel = wear_fleet_campaign(&cfg);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn instance_seeds_never_collide() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..64 {
            assert!(seen.insert(instance_seed(42, i)));
        }
    }
}
