//! Fleet campaigns: crash-and-recover one instance of a design while
//! its siblings keep serving.
//!
//! The single-target campaigns in this crate stop the world: one
//! controller, one crash plan, one recovery. A sharded service runs N
//! independent persistence domains side by side, and its failure story
//! is different — a power-fault domain covers *one* shard, so recovery
//! must be local. [`fleet_campaign`] drives N independent instances of a
//! design (per-instance seeds, fanned out over [`par_map`]) and can
//! crash exactly one of them mid-load; the per-instance reports let a
//! caller assert the isolation contract: every untargeted instance's
//! report is byte-identical to a crash-free fleet run, and the targeted
//! instance recovers through the same device/replay-hardened `recover()`
//! path the global campaigns exercise.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::par::par_map;
use crate::target::DesignVariant;

/// Configuration of one fleet campaign.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FleetConfig {
    /// The design every instance is built from.
    pub design: DesignVariant,
    /// Number of independent instances (shards) in the fleet.
    pub instances: u32,
    /// Accesses driven through each instance.
    pub accesses_per_instance: u64,
    /// Master seed; each instance derives its own RNG stream from
    /// `(seed, instance)` alone, so reports are byte-identical at any
    /// worker count.
    pub seed: u64,
    /// Crash this instance mid-load (`None` runs the fleet crash-free).
    pub crash_instance: Option<u32>,
    /// Accesses the targeted instance completes before the power fault.
    pub crash_after: u64,
    /// Worker threads (`0` = default pool sizing).
    pub jobs: usize,
}

impl FleetConfig {
    /// A small deterministic fleet for tests and CI smoke.
    pub fn smoke() -> Self {
        FleetConfig {
            design: DesignVariant::Path(psoram_core::ProtocolVariant::PsOram),
            instances: 3,
            accesses_per_instance: 120,
            seed: 0xF1EE7,
            crash_instance: None,
            crash_after: 40,
            jobs: 0,
        }
    }
}

/// What one fleet instance did, in a serde-stable shape so isolation
/// tests can compare instances byte-for-byte across runs.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FleetLaneReport {
    /// Instance index within the fleet.
    pub instance: u32,
    /// Design label.
    pub design: String,
    /// Accesses completed.
    pub accesses: u64,
    /// Power faults injected on this instance.
    pub crashes: u64,
    /// Recoveries that passed the design's consistency check.
    pub recoveries_consistent: u64,
    /// Controller clock after the run (core cycles).
    pub clock: u64,
    /// Final content audit against the design's own ledger.
    pub verify_ok: bool,
    /// Deterministic digest of the instance's recoverable state
    /// (hex-encoded; `0` when the design does not model one).
    pub state_digest: String,
}

/// Seed for instance `i`: mixed so streams never overlap between
/// instances (same derivation discipline as the per-shard service
/// lanes).
fn instance_seed(seed: u64, instance: u32) -> u64 {
    seed.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(instance as u64 + 1))
}

/// Runs one instance's load (and optional mid-load power fault) to a
/// report. Deterministic in `(cfg, instance)`.
fn run_instance(cfg: &FleetConfig, instance: u32) -> FleetLaneReport {
    let mut target = cfg.design.build(instance_seed(cfg.seed, instance));
    let mut rng = StdRng::seed_from_u64(instance_seed(cfg.seed, instance) ^ 0x7EA7);
    let cap = target.capacity_blocks();
    let payload = target.payload_bytes();
    let crash_here = cfg.crash_instance == Some(instance);

    let mut written: Vec<u64> = Vec::new();
    let mut crashes = 0u64;
    let mut recoveries_consistent = 0u64;
    let mut completed = 0u64;
    while completed < cfg.accesses_per_instance {
        // 70/30 write/read mix; reads only touch written addresses.
        let addr = rng.gen_range(0..cap);
        let write = written.is_empty() || rng.gen_range(0..10u32) < 7;
        let res = if write {
            let tag = (completed & 0xFF) as u8;
            target.write(addr, vec![tag; payload]).map(|_| ())
        } else {
            let idx = rng.gen_range(0..written.len());
            target.read(written[idx]).map(|_| ())
        };
        match res {
            Ok(()) => {
                if write {
                    written.push(addr);
                }
                completed += 1;
            }
            Err(e) => panic!("fleet instance {instance}: access failed: {e}"),
        }
        if crash_here && completed == cfg.crash_after {
            // The power fault covers this persistence domain only; the
            // sibling instances never see it.
            target.crash_now();
            crashes += 1;
            let report = target.recover();
            if report.consistent {
                recoveries_consistent += 1;
            }
        }
    }
    let verify_ok = target.verify_contents(crashes > 0).is_ok();
    FleetLaneReport {
        instance,
        design: target.label(),
        accesses: completed,
        crashes,
        recoveries_consistent,
        clock: target.clock(),
        verify_ok,
        state_digest: format!("{:032x}", target.state_digest()),
    }
}

/// Runs the fleet: every instance is an independent persistence domain
/// driven from its own seed, so the lanes fan out over the worker pool
/// and the report vector is byte-identical at any `jobs` count.
pub fn fleet_campaign(cfg: &FleetConfig) -> Vec<FleetLaneReport> {
    let instances: Vec<u32> = (0..cfg.instances).collect();
    par_map(cfg.jobs, instances, |i| run_instance(cfg, i))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleet_reports_are_worker_count_invariant() {
        let cfg = FleetConfig::smoke();
        let serial = fleet_campaign(&FleetConfig {
            jobs: 1,
            ..cfg.clone()
        });
        let parallel = fleet_campaign(&FleetConfig { jobs: 4, ..cfg });
        assert_eq!(serial, parallel);
    }

    #[test]
    fn instance_seeds_never_collide() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..64 {
            assert!(seen.insert(instance_seed(42, i)));
        }
    }
}
