//! Device-fault campaigns: the crash campaigns re-run on damaged silicon.
//!
//! The random campaigns assume an honest medium — every persisted byte
//! reads back as written. This module drops that assumption: a seeded
//! device fault plan ([`psoram_nvm::FaultPlan`]) is armed underneath every
//! design, tearing flushes mid-round, losing and duplicating WPQ
//! start/end signals, flipping bits in persisted buckets and PosMap
//! entries, and failing reads. The differential question gains a twist:
//! a hardened design may now *lose* data — media corruption can defeat
//! any bounded redundancy — but it must never lose data **silently**.
//! Every divergence from the shadow oracle has to arrive classified:
//! repaired from a redundant authenticated copy, rolled back under a
//! typed [`RecoveryError`](psoram_core::RecoveryError), or refused
//! outright by the fail-safe poison latch (after which the campaign
//! rebuilds the controller from the oracle's durable truth, the simulated
//! analogue of replacing a failed DIMM and restoring from application
//! state). The unhardened baselines run under the same plan with no
//! defenses, keeping the differential teeth: a baseline that stops
//! failing means the injector has lost its bite.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use psoram_core::ring::RingVariant;
use psoram_core::{CrashPoint, ProtocolVariant};
use psoram_nvm::{FaultConfig, FaultStats};

use crate::driver::Driver;
use crate::report::VariantReport;
use crate::target::DesignVariant;

/// Parameters of a device-fault campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceCampaignConfig {
    /// Master seed: drives the workload RNGs, the controllers, and the
    /// fault plans. Two runs with the same seed produce byte-identical
    /// reports at any job count.
    pub seed: u64,
    /// Crash→recover→continue cycles per design (at least one crash
    /// fires per cycle).
    pub cycles: u64,
    /// Upper bound on crash-free accesses between consecutive crashes.
    pub max_quiet_accesses: u64,
    /// Distinct logical addresses the workload touches.
    pub working_set: u64,
    /// Recoveries between full shadow read-backs (0 → final check only).
    pub full_check_every: u64,
    /// Use [`FaultConfig::aggressive`] instead of
    /// [`FaultConfig::campaign_default`].
    pub aggressive: bool,
    /// Arm the replay/splice adversary on top of the base mix: crashed
    /// rounds may have persist units rolled back to authentic stale
    /// versions or spliced across addresses, and fetches may be served
    /// stale snapshots on the wire.
    pub replay: bool,
}

impl Default for DeviceCampaignConfig {
    fn default() -> Self {
        DeviceCampaignConfig {
            seed: 0xDE_C0,
            cycles: 60,
            max_quiet_accesses: 6,
            working_set: 24,
            full_check_every: 20,
            aggressive: false,
            replay: false,
        }
    }
}

impl DeviceCampaignConfig {
    /// A reduced configuration for quick smoke runs.
    pub fn smoke() -> Self {
        DeviceCampaignConfig {
            cycles: 12,
            working_set: 12,
            ..Self::default()
        }
    }

    fn fault_config(&self) -> FaultConfig {
        let base = if self.aggressive {
            FaultConfig::aggressive()
        } else {
            FaultConfig::campaign_default()
        };
        if self.replay {
            base.with_replay()
        } else {
            base
        }
    }
}

/// The designs a device campaign tortures: every Path protocol variant
/// plus both Ring flavours — hardened and unhardened side by side, so
/// the report stays differential.
pub fn device_sweep_set() -> Vec<DesignVariant> {
    ProtocolVariant::all()
        .into_iter()
        .map(DesignVariant::Path)
        .chain([
            DesignVariant::Ring(RingVariant::Baseline),
            DesignVariant::Ring(RingVariant::PsRing),
        ])
        .collect()
}

/// Whether the design carries the integrity layer (authentication tags,
/// redundant-copy repair, fail-safe poisoning) under device faults.
fn is_hardened(variant: DesignVariant) -> bool {
    match variant {
        DesignVariant::Path(v) => v.uses_wpq(),
        DesignVariant::Ring(v) => v == RingVariant::PsRing,
    }
}

/// Detection/repair evidence from one design's device campaign, set
/// against the injector's ground truth.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeviceFaultSummary {
    /// Whether the design carries the integrity layer.
    pub hardened: bool,
    /// Ground truth: faults the plan actually injected, accumulated
    /// across fail-safe rebuilds.
    pub injected: FaultStats,
    /// Device-fault incidents recovery detected and classified.
    pub incidents: u64,
    /// Damaged persist units repaired from a redundant authenticated
    /// copy.
    pub repairs: u64,
    /// Addresses rolled back (or forgotten) under a typed error.
    pub rollbacks: u64,
    /// Typed [`RecoveryError`](psoram_core::RecoveryError)s raised.
    pub typed_errors: u64,
    /// Recoveries that failed their consistency check *with* typed
    /// errors or poisoning — detected fail-safes, not silent violations.
    pub detected_failsafes: u64,
    /// Times the fail-safe poison latch forced a controller rebuild.
    pub failsafe_rebuilds: u64,
    /// Persist units recovery convicted of carrying a stale (replayed or
    /// rolled-back-to-genesis) version counter.
    pub replays_detected: u64,
    /// Persist units recovery convicted of a cross-address splice.
    pub splices_detected: u64,
    /// Stale snapshots the adversary actually served on the fetch wire.
    pub stale_serves: u64,
    /// Wire serves the hardened fetch path caught before consumption.
    pub stale_serves_detected: u64,
    /// Fetch-path verifications that latched the fail-safe poison.
    pub fetch_poisons: u64,
}

/// Per-design outcome of a device campaign: the ordinary differential
/// report plus the device-fault evidence.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeviceVariantReport {
    /// The crash-consistency report (accesses, recoveries, violations).
    pub report: VariantReport,
    /// Device-fault injection and detection evidence.
    pub device: DeviceFaultSummary,
}

/// A whole device campaign: one report per design, in
/// [`device_sweep_set`] order.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeviceCampaignReport {
    /// Always `"device"`.
    pub mode: String,
    /// RNG seed, for exact replay.
    pub seed: u64,
    /// Whether the aggressive fault mix was used.
    pub aggressive: bool,
    /// Whether the replay/splice adversary was armed.
    pub replay: bool,
    /// Per-design outcomes.
    pub variants: Vec<DeviceVariantReport>,
}

impl DeviceCampaignReport {
    /// `true` when every design behaved as claimed: hardened designs saw
    /// no *silent* violation (repairs, typed rollbacks, and fail-safes
    /// are all admissible outcomes); unhardened designs are allowed
    /// anything.
    pub fn all_match_expectation(&self) -> bool {
        self.variants.iter().all(|v| v.report.matches_expectation)
    }

    /// Crashes fired across all designs.
    pub fn total_crashes(&self) -> u64 {
        self.variants
            .iter()
            .map(|v| v.report.crashes_injected)
            .sum()
    }

    /// Ground-truth faults injected across all designs.
    pub fn total_injected(&self) -> u64 {
        self.variants
            .iter()
            .map(|v| v.device.injected.total_injected())
            .sum()
    }

    /// Ground-truth replay-adversary events injected across all designs
    /// (crash replays + cross splices + wire serves).
    pub fn total_replays_injected(&self) -> u64 {
        self.variants
            .iter()
            .map(|v| v.device.injected.total_replays())
            .sum()
    }

    /// The freshness contract: every hardened design detected **all** of
    /// the adversary's work. Crash-time damage is counted per convicted
    /// unit (a splice pair yields two convictions, and overlapping
    /// replay+splice damage on one unit reclassifies rather than
    /// double-counts), so the crash-side criterion is
    /// `detected >= injected events`; on the wire every served stale
    /// snapshot must be caught before consumption, exactly.
    pub fn all_replays_detected(&self) -> bool {
        self.variants.iter().filter(|v| v.device.hardened).all(|v| {
            let d = &v.device;
            d.replays_detected + d.splices_detected
                >= d.injected.stale_replays + d.injected.cross_splices
                && d.stale_serves_detected == d.stale_serves
        })
    }
}

fn accumulate(into: &mut FaultStats, s: FaultStats) {
    into.torn_flushes += s.torn_flushes;
    into.signal_losses += s.signal_losses;
    into.duplicated_signals += s.duplicated_signals;
    into.bit_flips += s.bit_flips;
    into.read_faults += s.read_faults;
    into.stuck_reads += s.stuck_reads;
    into.stale_replays += s.stale_replays;
    into.cross_splices += s.cross_splices;
    into.read_replays += s.read_replays;
    into.fates_drawn += s.fates_drawn;
}

/// Folds a torn-down controller's freshness counters into the summary
/// (the counters live on the controller, so they must be harvested
/// before a rebuild discards it).
fn harvest_freshness(summary: &mut DeviceFaultSummary, target: &dyn crate::target::FaultTarget) {
    let fs = target.freshness_stats();
    summary.stale_serves += fs.stale_serves;
    summary.stale_serves_detected += fs.stale_serves_detected;
    summary.fetch_poisons += fs.fetch_poisons;
}

/// Tears down a poisoned controller and rebuilds it from the oracle's
/// expected contents, then re-arms a fresh fault plan (derived from the
/// same master seed, so the run stays deterministic).
fn rebuild(d: &mut Driver, variant: DesignVariant, cfg: &DeviceCampaignConfig, tweak: u64) {
    if let Some(stats) = d.target.device_fault_stats() {
        accumulate(&mut d.device_summary.injected, stats);
    }
    harvest_freshness(&mut d.device_summary, d.target.as_ref());
    d.device_summary.failsafe_rebuilds += 1;
    let epoch = d.device_summary.failsafe_rebuilds;
    d.oracle.drop_pending();
    d.poisoned = false;
    d.target = variant.build(cfg.seed ^ tweak ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(epoch));
    for (addr, value) in d.oracle.expected_entries() {
        if d.do_write(addr, value) {
            unreachable!("crash fired while re-seeding a rebuilt controller");
        }
    }
    // The plan arms only after the re-seed, so the rebuilt controller
    // starts from an honest, fully committed shadow.
    d.target.enable_device_faults(
        cfg.seed ^ tweak ^ epoch.rotate_left(32) ^ 0xA5A5,
        cfg.fault_config(),
    );
}

/// Runs a device-fault campaign against one design.
pub fn device_campaign_variant(
    variant: DesignVariant,
    cfg: &DeviceCampaignConfig,
) -> DeviceVariantReport {
    // Per-variant RNG stream, deterministic in (seed, variant) and
    // decoupled from the clean campaign's stream by a domain constant.
    let tweak = variant
        .label()
        .bytes()
        .fold(0u64, |h, b| h.wrapping_mul(31).wrapping_add(b as u64));
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ tweak ^ 0xD0_0D);

    let mut d = Driver::new(variant, cfg.seed, cfg.full_check_every);
    d.device = true;
    d.device_summary.hardened = is_hardened(variant);
    let working_set = cfg.working_set.min(d.target.capacity_blocks());
    d.prefill(working_set);
    // The plan arms *after* prefill: the committed shadow starts honest.
    d.target
        .enable_device_faults(cfg.seed ^ tweak, cfg.fault_config());
    let steps = CrashPoint::step_boundaries();

    for _cycle in 0..cfg.cycles {
        if d.aborted {
            break;
        }
        if d.poisoned {
            rebuild(&mut d, variant, cfg, tweak);
        }

        // Quiet phase: normal traffic between faults (transient read
        // faults and WPQ-level signal damage land here).
        for _ in 0..rng.gen_range(0..cfg.max_quiet_accesses + 1) {
            if d.poisoned {
                break;
            }
            let attempt = d.target.access_attempts();
            let addr = rng.gen_range(0..working_set);
            let crashed = if rng.gen_bool(0.6) {
                let value = d.next_payload();
                d.do_write(addr, value)
            } else {
                d.do_read(addr)
            };
            if crashed {
                d.handle_crash(attempt, None, addr, None);
            }
        }
        if d.poisoned {
            continue; // rebuilt at the top of the next cycle
        }

        // Fault phase: mostly power failures at rest — the committed WPQ
        // backlog is empty, so crash damage lands on the last applied
        // round's persist units — and sometimes a crash armed inside an
        // access, exercising damage underneath an in-flight write.
        if rng.gen_bool(0.7) {
            d.crash_at_rest();
        } else {
            let point = steps[rng.gen_range(0..steps.len())];
            d.target.inject_crash(point);
            let mut fired = false;
            for _ in 0..12 {
                if d.poisoned {
                    break;
                }
                let attempt = d.target.access_attempts();
                let addr = rng.gen_range(0..working_set);
                let crashed = if rng.gen_bool(0.6) {
                    let value = d.next_payload();
                    d.do_write(addr, value)
                } else {
                    d.do_read(addr)
                };
                if crashed {
                    d.handle_crash(attempt, Some(point), addr, None);
                    fired = true;
                    break;
                }
            }
            if !fired {
                d.target.disarm_crash();
                if !d.poisoned {
                    d.crash_at_rest();
                }
            }
        }
    }

    if let Some(stats) = d.target.device_fault_stats() {
        accumulate(&mut d.device_summary.injected, stats);
    }
    harvest_freshness(&mut d.device_summary, d.target.as_ref());
    let device = d.device_summary.clone();
    let report = d.finish();
    DeviceVariantReport { report, device }
}

/// Runs the device campaign against every design in [`device_sweep_set`].
///
/// Designs run in parallel (see [`crate::par_map`]); each variant's RNG
/// stream is derived from `(cfg.seed, variant)` alone and results come
/// back in sweep-set order, so the report is byte-identical at any job
/// count.
pub fn device_campaign(cfg: &DeviceCampaignConfig) -> DeviceCampaignReport {
    let variants = crate::par_map(0, device_sweep_set(), |v| device_campaign_variant(v, cfg));
    DeviceCampaignReport {
        mode: "device".into(),
        seed: cfg.seed,
        aggressive: cfg.aggressive,
        replay: cfg.replay,
        variants,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_set_is_differential() {
        let set = device_sweep_set();
        assert!(set.iter().copied().any(is_hardened));
        assert!(set.iter().copied().any(|v| !is_hardened(v)));
        assert_eq!(set.len(), ProtocolVariant::all().len() + 2);
    }

    #[test]
    fn device_report_serde_round_trips() {
        let cfg = DeviceCampaignConfig {
            cycles: 2,
            working_set: 8,
            ..DeviceCampaignConfig::smoke()
        };
        let r = device_campaign_variant(DesignVariant::Path(ProtocolVariant::PsOram), &cfg);
        let json = serde_json::to_string(&r).unwrap();
        let back: DeviceVariantReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }
}
