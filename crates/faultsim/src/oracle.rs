//! The differential oracle: a shadow map of durable truth.
//!
//! The oracle mirrors, outside the ORAM, what a crash-consistent store
//! must preserve. It deliberately shares no state with the controllers'
//! internal ledgers, so it cross-checks them rather than echoing them.
//!
//! Designs differ in *when* a write becomes durable ([`CommitModel`]):
//!
//! * [`CommitModel::OnCompletion`] — a completed write is durably
//!   committed before the access returns: designs with a durable stash
//!   (FullNvm/FullNvmStt), RCR's per-access dirty-stash snapshot, and —
//!   deliberately, as the harness's differential teeth — the
//!   non-persistent baselines. After a crash the address must read back
//!   as exactly its last completed write (or, for the one write in
//!   flight, either its old or its new value — the access is atomic).
//! * [`CommitModel::Deferred`] — a completed write may still sit in
//!   volatile state: Ring ORAM's stash holds writes until the next
//!   evict-path (every `A` accesses), and the WPQ-based Path designs
//!   (PS-ORAM, naive PS-ORAM) can leave a written block in the stash as
//!   an eviction leftover when it loses the greedy placement race. A
//!   crash may then legitimately roll an address back to an *earlier
//!   completed write*.
//!   The oracle then accepts any value from the address's completed-write
//!   history since the last *proven-durable* floor — but never a value
//!   outside that history (torn/corrupted) and never one older than the
//!   floor (resurrection of lost state). Each post-crash observation
//!   advances the floor, ratcheting the guarantee forward.

use std::collections::{BTreeMap, BTreeSet};

pub use psoram_core::engine::CommitModel;

/// A write that was in flight when a crash fired, not yet adjudicated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PendingWrite {
    /// Target logical address.
    pub addr: u64,
    /// The value the interrupted access tried to commit.
    pub new: Vec<u8>,
}

/// Shadow map of logical address → durably committed value(s).
#[derive(Debug, Clone)]
pub struct ShadowOracle {
    model: CommitModel,
    /// Proven-durable floor per address.
    committed: BTreeMap<u64, Vec<u8>>,
    /// Completed writes newer than the floor, oldest first (only under
    /// [`CommitModel::Deferred`]; empty for `OnCompletion`).
    recent: BTreeMap<u64, Vec<Vec<u8>>>,
    /// Addresses whose *visible* value is unknown since the last crash
    /// (deferred writes may or may not have survived).
    ambiguous: BTreeSet<u64>,
    pending: Option<PendingWrite>,
    zeros: Vec<u8>,
}

impl ShadowOracle {
    /// Creates an oracle for blocks of `payload_bytes` (unwritten
    /// addresses read back as zeros) under the given commit model.
    pub fn new(payload_bytes: usize, model: CommitModel) -> Self {
        ShadowOracle {
            model,
            committed: BTreeMap::new(),
            recent: BTreeMap::new(),
            ambiguous: BTreeSet::new(),
            pending: None,
            zeros: vec![0; payload_bytes],
        }
    }

    /// Declares a write about to be issued. Must be resolved by
    /// [`ShadowOracle::commit_write`] (access completed) or
    /// [`ShadowOracle::resolve_pending`] (access crashed).
    ///
    /// # Panics
    ///
    /// Panics if a previous write is still unresolved — the harness
    /// issues accesses strictly one at a time.
    pub fn begin_write(&mut self, addr: u64, value: Vec<u8>) {
        assert!(
            self.pending.is_none(),
            "write issued while another is unresolved"
        );
        self.pending = Some(PendingWrite { addr, new: value });
    }

    /// The declared write's access completed.
    ///
    /// # Panics
    ///
    /// Panics if no write is pending.
    pub fn commit_write(&mut self) {
        let p = self
            .pending
            .take()
            .expect("commit_write without begin_write");
        match self.model {
            CommitModel::OnCompletion => {
                self.committed.insert(p.addr, p.new);
            }
            CommitModel::Deferred => {
                self.recent.entry(p.addr).or_default().push(p.new);
            }
        }
        // Whatever a crash may have destroyed, this address's visible
        // value is now exactly the write that just completed.
        self.ambiguous.remove(&p.addr);
    }

    /// Notes that a crash fired: under [`CommitModel::Deferred`], every
    /// address with unproven writes becomes ambiguous until re-observed.
    pub fn note_crash(&mut self) {
        if self.model == CommitModel::Deferred {
            self.ambiguous.extend(self.recent.keys().copied());
        }
    }

    /// Whether a crashed write is awaiting adjudication.
    pub fn has_pending(&self) -> bool {
        self.pending.is_some()
    }

    /// Address of the pending write, if any.
    pub fn pending_addr(&self) -> Option<u64> {
        self.pending.as_ref().map(|p| p.addr)
    }

    /// Adjudicates a crashed write from its post-recovery read-back.
    ///
    /// # Errors
    ///
    /// Returns a description when `actual` is not an admissible survivor
    /// — a torn or corrupted write.
    ///
    /// # Panics
    ///
    /// Panics if no write is pending.
    pub fn resolve_pending(&mut self, actual: &[u8]) -> Result<(), String> {
        let p = self
            .pending
            .take()
            .expect("resolve_pending without a crashed write");
        if actual == p.new.as_slice() {
            // The interrupted write committed just before the crash.
            self.committed.insert(p.addr, p.new);
            self.recent.remove(&p.addr);
            self.ambiguous.remove(&p.addr);
            return Ok(());
        }
        self.adjudicate(p.addr, actual)
            .map_err(|detail| format!("{detail} (a write of {:?} was in flight)", p.new))
    }

    /// Drops a pending write without adjudication (used when the harness
    /// cannot read the address back, e.g. the run is being abandoned).
    pub fn drop_pending(&mut self) {
        self.pending = None;
    }

    /// Checks an observed read-back value against the shadow, advancing
    /// the proven-durable floor on success.
    ///
    /// # Errors
    ///
    /// Returns a description when the value is inadmissible: a lost
    /// committed value under the strict model, or a value outside the
    /// completed-write history (or older than the proven floor) under the
    /// deferred model.
    pub fn observe(&mut self, addr: u64, actual: &[u8]) -> Result<(), String> {
        if self.ambiguous.contains(&addr) {
            self.adjudicate(addr, actual)
        } else {
            let expected = self.expected_current(addr);
            if actual == expected.as_slice() {
                Ok(())
            } else {
                Err(format!(
                    "a{addr}: read {actual:?}, last completed write was {expected:?}"
                ))
            }
        }
    }

    /// Settles an ambiguous address from a post-crash observation.
    fn adjudicate(&mut self, addr: u64, actual: &[u8]) -> Result<(), String> {
        // Newest surviving write wins: if the observed value matches a
        // completed write, everything older is superseded and everything
        // newer is proven lost (had a newer copy survived, recovery would
        // surface it instead).
        if let Some(history) = self.recent.get(&addr) {
            if history.iter().any(|v| v.as_slice() == actual) {
                self.committed.insert(addr, actual.to_vec());
                self.recent.remove(&addr);
                self.ambiguous.remove(&addr);
                return Ok(());
            }
        }
        let floor = self.committed.get(&addr).unwrap_or(&self.zeros);
        if actual == floor.as_slice() {
            self.recent.remove(&addr);
            self.ambiguous.remove(&addr);
            return Ok(());
        }
        Err(format!(
            "a{addr}: post-crash value {actual:?} is outside the completed-write \
             history (durable floor {floor:?})"
        ))
    }

    /// The value a crash-free read must return: the last completed write.
    fn expected_current(&self, addr: u64) -> &Vec<u8> {
        self.recent
            .get(&addr)
            .and_then(|h| h.last())
            .or_else(|| self.committed.get(&addr))
            .unwrap_or(&self.zeros)
    }

    /// Forces the shadow to the observed value. Used after a *detected*
    /// violation on a non-consistent baseline so the campaign can keep
    /// running without re-reporting the same loss forever.
    pub fn resync(&mut self, addr: u64, actual: &[u8]) {
        self.committed.insert(addr, actual.to_vec());
        self.recent.remove(&addr);
        self.ambiguous.remove(&addr);
    }

    /// Snapshot of `(address, expected crash-free value)` pairs in
    /// deterministic order. The device campaigns use this to re-seed a
    /// replacement controller after a fail-safe poison tear-down — the
    /// simulated analogue of restoring from application-level state after
    /// swapping a failed DIMM.
    pub fn expected_entries(&self) -> Vec<(u64, Vec<u8>)> {
        self.addrs()
            .into_iter()
            .map(|a| (a, self.expected_current(a).clone()))
            .collect()
    }

    /// Addresses with any tracked value, in deterministic order.
    pub fn addrs(&self) -> Vec<u64> {
        self.committed
            .keys()
            .chain(self.recent.keys())
            .copied()
            .collect::<BTreeSet<_>>()
            .into_iter()
            .collect()
    }

    /// Number of addresses tracked.
    pub fn len(&self) -> usize {
        self.addrs().len()
    }

    /// `true` when no address has been written yet.
    pub fn is_empty(&self) -> bool {
        self.committed.is_empty() && self.recent.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strict_model_committed_then_lost_is_a_violation() {
        let mut o = ShadowOracle::new(4, CommitModel::OnCompletion);
        o.begin_write(3, vec![9; 4]);
        o.commit_write();
        assert!(o.observe(3, &[9; 4]).is_ok());
        assert!(o.observe(3, &[0; 4]).is_err());
    }

    #[test]
    fn crashed_write_may_resolve_old_or_new() {
        let mut o = ShadowOracle::new(4, CommitModel::OnCompletion);
        o.begin_write(1, vec![1; 4]);
        o.commit_write();
        // Crash during an overwrite: old survives...
        o.begin_write(1, vec![2; 4]);
        assert!(o.resolve_pending(&[1; 4]).is_ok());
        assert!(o.observe(1, &[1; 4]).is_ok());
        // ...or the new value committed first.
        o.begin_write(1, vec![3; 4]);
        assert!(o.resolve_pending(&[3; 4]).is_ok());
        assert!(o.observe(1, &[3; 4]).is_ok());
    }

    #[test]
    fn torn_write_is_a_violation_in_both_models() {
        for model in [CommitModel::OnCompletion, CommitModel::Deferred] {
            let mut o = ShadowOracle::new(4, model);
            o.begin_write(5, vec![7; 4]);
            assert!(o.resolve_pending(&[7, 0, 7, 0]).is_err(), "{model:?}");
        }
    }

    #[test]
    fn deferred_model_allows_rollback_within_history_only() {
        let mut o = ShadowOracle::new(4, CommitModel::Deferred);
        o.begin_write(2, vec![1; 4]);
        o.commit_write();
        o.begin_write(2, vec![2; 4]);
        o.commit_write();
        o.note_crash();
        // Rolling back to the first (possibly unevicted) write is fine...
        assert!(o.observe(2, &[1; 4]).is_ok());
        // ...and ratchets the floor: the same rollback observed again
        // without a new crash now violates (value can't flap).
        assert!(o.observe(2, &[0; 4]).is_err());
    }

    #[test]
    fn deferred_model_rejects_values_below_the_proven_floor() {
        let mut o = ShadowOracle::new(4, CommitModel::Deferred);
        o.begin_write(2, vec![1; 4]);
        o.commit_write();
        o.note_crash();
        assert!(o.observe(2, &[1; 4]).is_ok(), "floor proven at [1;4]");
        o.begin_write(2, vec![2; 4]);
        o.commit_write();
        o.note_crash();
        // Zeros are now below the floor: the durable [1;4] was lost.
        assert!(o.observe(2, &[0; 4]).is_err());
    }

    #[test]
    fn completed_write_settles_ambiguity() {
        let mut o = ShadowOracle::new(4, CommitModel::Deferred);
        o.begin_write(4, vec![1; 4]);
        o.commit_write();
        o.note_crash();
        // A fresh completed write pins the visible value again.
        o.begin_write(4, vec![5; 4]);
        o.commit_write();
        assert!(o.observe(4, &[5; 4]).is_ok());
        assert!(
            o.observe(4, &[1; 4]).is_err(),
            "older write can't be visible now"
        );
    }

    #[test]
    fn unwritten_addresses_expect_zeros() {
        let mut o = ShadowOracle::new(2, CommitModel::OnCompletion);
        assert!(o.observe(42, &[0, 0]).is_ok());
        assert!(o.observe(42, &[1, 0]).is_err());
    }
}
