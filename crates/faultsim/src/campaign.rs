//! Randomized multi-crash campaigns: seeded crash→recover→continue
//! cycles, including power failures *during* recovery verification.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use psoram_core::CrashPoint;

use crate::driver::Driver;
use crate::report::{CampaignReport, VariantReport};
use crate::target::DesignVariant;

/// Parameters of a randomized campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignConfig {
    /// Master seed: drives the workload RNG and the controllers. Two runs
    /// with the same seed produce byte-identical reports.
    pub seed: u64,
    /// Crash→recover→continue cycles per design.
    pub cycles: u64,
    /// Upper bound on crash-free accesses between consecutive crashes.
    pub max_quiet_accesses: u64,
    /// Distinct logical addresses the workload touches.
    pub working_set: u64,
    /// Probability that a recovery is itself interrupted by a crash.
    pub nested_crash_prob: f64,
    /// Recoveries between full shadow read-backs (0 → final check only).
    pub full_check_every: u64,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            seed: 0xCA_50,
            cycles: 120,
            max_quiet_accesses: 6,
            working_set: 24,
            nested_crash_prob: 0.25,
            full_check_every: 40,
        }
    }
}

impl CampaignConfig {
    /// A reduced configuration for quick smoke runs.
    pub fn smoke() -> Self {
        CampaignConfig {
            cycles: 25,
            working_set: 12,
            ..Self::default()
        }
    }
}

/// Crash points guaranteed to fire on the next access for every design
/// (Ring ORAM never reaches `AfterCheckStash`), used for nested faults so
/// an armed plan cannot leak past the recovery it targets.
const ALWAYS_FIRING: [CrashPoint; 3] = [
    CrashPoint::AfterAccessPosMap,
    CrashPoint::AfterLoadPath,
    CrashPoint::AfterUpdateStash,
];

/// Runs a randomized campaign against one design.
pub fn campaign_variant(variant: DesignVariant, cfg: &CampaignConfig) -> VariantReport {
    campaign_variant_traced(variant, cfg, None)
}

/// [`campaign_variant`] with an optional observability recorder attached
/// to the design's controller stack. The recorder only observes: a traced
/// run produces a byte-identical report to an untraced one.
pub fn campaign_variant_traced(
    variant: DesignVariant,
    cfg: &CampaignConfig,
    recorder: Option<std::sync::Arc<dyn psoram_obsv::Recorder>>,
) -> VariantReport {
    // Per-variant RNG stream, deterministic in (seed, variant).
    let tweak = variant
        .label()
        .bytes()
        .fold(0u64, |h, b| h.wrapping_mul(31).wrapping_add(b as u64));
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ tweak);

    let mut d = Driver::new(variant, cfg.seed, cfg.full_check_every);
    if let Some(rec) = recorder {
        d.target.attach_recorder(rec);
    }
    let working_set = cfg.working_set.min(d.target.capacity_blocks());
    d.prefill(working_set);
    let steps = CrashPoint::step_boundaries();

    for _cycle in 0..cfg.cycles {
        if d.aborted {
            break;
        }
        // Quiet phase: normal traffic between faults.
        for _ in 0..rng.gen_range(0..cfg.max_quiet_accesses + 1) {
            let attempt = d.target.access_attempts();
            let addr = rng.gen_range(0..working_set);
            let crashed = if rng.gen_bool(0.6) {
                let value = d.next_payload();
                d.do_write(addr, value)
            } else {
                d.do_read(addr)
            };
            if crashed {
                // No plan was armed; only possible if a plan leaked, which
                // the driver treats as an unattributed crash.
                d.handle_crash(attempt, None, addr, None);
            }
        }

        // Fault phase: arm a random crash point and drive accesses until
        // it fires (a too-deep DuringEviction index may never fire).
        let point = if rng.gen_bool(0.4) {
            let hi = d.report.max_eviction_units.map_or(4, |m| m + 2);
            CrashPoint::DuringEviction(rng.gen_range(0..hi))
        } else {
            steps[rng.gen_range(0..steps.len())]
        };
        d.target.inject_crash(point);
        let mut fired = false;
        for _ in 0..12 {
            let attempt = d.target.access_attempts();
            let addr = rng.gen_range(0..working_set);
            let crashed = if rng.gen_bool(0.6) {
                let value = d.next_payload();
                d.do_write(addr, value)
            } else {
                d.do_read(addr)
            };
            if crashed {
                let nested = if rng.gen_bool(cfg.nested_crash_prob) {
                    Some(ALWAYS_FIRING[rng.gen_range(0..ALWAYS_FIRING.len())])
                } else {
                    None
                };
                d.handle_crash(attempt, Some(point), addr, nested);
                fired = true;
                break;
            }
        }
        if !fired {
            d.target.disarm_crash();
        }
    }
    d.finish()
}

/// Runs the campaign against every design in [`DesignVariant::sweep_set`].
///
/// Designs run in parallel (see [`crate::par_map`]); each variant's RNG
/// stream is derived from `(cfg.seed, variant)` alone and results are
/// collected in sweep-set order, so the report — including the seed-42
/// golden — is byte-identical at any job count.
pub fn random_campaign(cfg: &CampaignConfig) -> CampaignReport {
    let variants = crate::par_map(0, DesignVariant::sweep_set(), |v| campaign_variant(v, cfg));
    CampaignReport {
        mode: "random".into(),
        seed: cfg.seed,
        variants,
    }
}

/// [`random_campaign`] with a [`psoram_obsv::RingBufferRecorder`] attached
/// to every design, returning one event track per design (labelled with
/// the design's name, in sweep-set order) alongside the report.
///
/// Each design records into its own buffer inside the parallel runner, so
/// the tracks — like the report — are byte-identical at any job count.
pub fn random_campaign_traced(
    cfg: &CampaignConfig,
) -> (CampaignReport, Vec<(String, Vec<psoram_obsv::Event>)>) {
    let results = crate::par_map(0, DesignVariant::sweep_set(), |v| {
        let rec = std::sync::Arc::new(psoram_obsv::RingBufferRecorder::new(
            psoram_obsv::DEFAULT_RING_CAPACITY,
        ));
        let report = campaign_variant_traced(v, cfg, Some(rec.clone()));
        (report, (v.label(), rec.events()))
    });
    let mut variants = Vec::with_capacity(results.len());
    let mut tracks = Vec::with_capacity(results.len());
    for (report, track) in results {
        variants.push(report);
        tracks.push(track);
    }
    (
        CampaignReport {
            mode: "random".into(),
            seed: cfg.seed,
            variants,
        },
        tracks,
    )
}
