//! A small deterministic fork-join pool for independent simulations.
//!
//! Campaign variants, crash-point sweeps, and per-workload bench runs are
//! embarrassingly parallel: each job owns its RNG seed and shares nothing.
//! [`par_map`] fans such jobs out over `std::thread::scope` workers and
//! collects the results **in input order**, so the output — and therefore
//! every report derived from it — is bit-identical to the serial runner at
//! any thread count. Built on the standard library only; rayon is not
//! vendored and is not needed at this scale.
//!
//! Thread count resolution, everywhere in the workspace:
//!
//! 1. an explicit `jobs >= 1` argument (CLI `--jobs N`),
//! 2. else the `PSORAM_JOBS` environment variable,
//! 3. else [`std::thread::available_parallelism`].
//!
//! `jobs == 1` takes a strictly serial path on the caller's thread — no pool,
//! no channels — which is the legacy behavior and the byte-identity baseline.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Environment variable overriding the default worker count.
pub const JOBS_ENV: &str = "PSORAM_JOBS";

/// The worker count used when the caller does not pass one explicitly:
/// `PSORAM_JOBS` if set to a positive integer, else all available cores.
pub fn default_jobs() -> usize {
    if let Ok(v) = std::env::var(JOBS_ENV) {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Resolves a caller-supplied job count: `0` means "use [`default_jobs`]".
pub fn resolve_jobs(jobs: usize) -> usize {
    if jobs == 0 {
        default_jobs()
    } else {
        jobs
    }
}

/// Applies `f` to every item and returns the results in input order.
///
/// `jobs` is the worker count (`0` = [`default_jobs`]). With one job (or at
/// most one item) the map runs serially on the calling thread. Otherwise
/// `min(jobs, items.len())` scoped workers pull items from a shared cursor;
/// work-stealing order is nondeterministic but invisible, because results
/// are slotted back by input index.
///
/// # Panics
///
/// If `f` panics on any item the panic propagates to the caller once all
/// workers have drained (the `thread::scope` join), matching the serial
/// behavior closely enough for tests to assert on it.
pub fn par_map<T, R, F>(jobs: usize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let workers = resolve_jobs(jobs).min(n);
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }

    // Hand each worker the next unclaimed index; results carry their index
    // home so the output order never depends on scheduling.
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let cursor = AtomicUsize::new(0);
    let collected: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(n));

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let mut local: Vec<(usize, R)> = Vec::new();
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let item = slots[i]
                        .lock()
                        .expect("par_map: item slot poisoned")
                        .take()
                        .expect("par_map: item claimed twice");
                    local.push((i, f(item)));
                }
                collected
                    .lock()
                    .expect("par_map: result sink poisoned")
                    .append(&mut local);
            });
        }
    });

    let mut indexed = collected
        .into_inner()
        .expect("par_map: result sink poisoned");
    assert_eq!(indexed.len(), n, "par_map lost results");
    indexed.sort_unstable_by_key(|(i, _)| *i);
    indexed.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_in_input_order() {
        let out = par_map(4, (0u64..100).collect(), |x| x * 3);
        assert_eq!(out, (0u64..100).map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn identical_output_across_thread_counts() {
        // Each job derives everything from its own input, as campaign
        // variants derive everything from (seed, variant).
        let work = |x: u64| -> (u64, u64) {
            let mut h = x.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            h ^= h >> 31;
            (x, h)
        };
        let inputs: Vec<u64> = (0..257).collect();
        let serial = par_map(1, inputs.clone(), work);
        for jobs in [2, 8] {
            assert_eq!(par_map(jobs, inputs.clone(), work), serial, "jobs={jobs}");
        }
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let out: Vec<u64> = par_map(8, Vec::<u64>::new(), |x| x + 1);
        assert!(out.is_empty());
    }

    #[test]
    fn single_item_runs_serially() {
        let out = par_map(8, vec![41u64], |x| x + 1);
        assert_eq!(out, vec![42]);
    }

    #[test]
    fn worker_panic_propagates() {
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            par_map(2, (0u64..16).collect(), |x| {
                if x == 7 {
                    panic!("boom at {x}");
                }
                x
            })
        }));
        assert!(result.is_err(), "panic in a worker must reach the caller");
    }

    #[test]
    fn serial_panic_propagates_too() {
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            par_map(1, vec![1u64], |_| -> u64 { panic!("serial boom") })
        }));
        assert!(result.is_err());
    }

    #[test]
    fn resolve_jobs_zero_is_default() {
        assert!(resolve_jobs(0) >= 1);
        assert_eq!(resolve_jobs(3), 3);
    }
}
