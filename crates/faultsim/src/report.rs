//! Structured campaign reports (JSON via serde).

use psoram_core::CrashPoint;
use serde::{Deserialize, Serialize};

use crate::target::DesignVariant;

/// One oracle violation, pinned to the exact crash that caused it so the
/// run can be replayed (`variant` + `seed` + `access_index` + `point`
/// reproduce it deterministically).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ViolationRecord {
    /// Access attempt index (as counted by the controller) at which the
    /// offending crash fired, if the violation is tied to one crash.
    pub access_index: Option<u64>,
    /// The crash point that produced the violation, if tied to one crash.
    pub crash_point: Option<CrashPoint>,
    /// What kind of check failed.
    pub kind: ViolationKind,
    /// Human-readable detail (verbatim from the failing check).
    pub detail: String,
}

/// The check a violation came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ViolationKind {
    /// The design's own recoverability check failed after recovery.
    RecoveryCheck,
    /// A durably committed value read back wrong (lost or corrupted).
    CommittedValueLost,
    /// A crashed write surfaced as neither its old nor its new value.
    TornWrite,
    /// The controller returned an error the harness did not inject.
    UnexpectedError,
}

/// Simulated-cycle cost of recovering from crashes at one crash point,
/// aggregated over a run (the per-crash-point timing attribution).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CrashPointCost {
    /// Crash-point key: a step-boundary name (`"AfterLoadPath"`, …),
    /// `"DuringEviction"` for all mid-eviction indices, or
    /// `"Unattributed"` for crashes the harness did not arm.
    pub point: String,
    /// Recoveries attributed to this point.
    pub fires: u64,
    /// Total simulated core cycles those recoveries consumed.
    pub cycles: u64,
}

/// Per-design outcome of a sweep or campaign.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VariantReport {
    /// The design that was tortured.
    pub variant: DesignVariant,
    /// Display label of the design.
    pub label: String,
    /// Whether the design claims crash consistency.
    pub expected_consistent: bool,
    /// Logical accesses issued by the workload (including crashed ones,
    /// excluding oracle read-backs).
    pub accesses: u64,
    /// Crashes that actually fired.
    pub crashes_injected: u64,
    /// Crashes that fired at a step boundary.
    pub step_boundary_crashes: u64,
    /// Crashes that fired mid-eviction (`DuringEviction(k)`).
    pub during_eviction_crashes: u64,
    /// Largest `DuringEviction(k)` index that fired (persist-unit count
    /// coverage; `None` if no mid-eviction crash fired).
    pub max_eviction_units: Option<usize>,
    /// Recoveries attempted.
    pub recoveries: u64,
    /// Recoveries whose consistency check passed.
    pub recoveries_consistent: u64,
    /// Crashes injected while a recovery was being verified (nested).
    pub nested_crashes: u64,
    /// Full shadow-map read-back verifications performed.
    pub full_checks: u64,
    /// Total violations observed (may exceed `violations.len()` when the
    /// per-report record cap was hit).
    pub violations_total: u64,
    /// Recorded violations, oldest first (capped at
    /// [`MAX_RECORDED_VIOLATIONS`]).
    pub violations: Vec<ViolationRecord>,
    /// Recovery-time attribution per crash point, sorted by key.
    pub crash_point_costs: Vec<CrashPointCost>,
    /// `true` when the observed violations match the design's claim:
    /// consistent designs saw none; others are allowed any number.
    pub matches_expectation: bool,
}

/// Cap on stored [`ViolationRecord`]s per variant; a non-persistent
/// baseline can violate on nearly every crash, and the count alone
/// carries the signal beyond this point.
pub const MAX_RECORDED_VIOLATIONS: usize = 256;

impl VariantReport {
    /// Creates an empty report for `variant`.
    pub fn new(variant: DesignVariant) -> Self {
        VariantReport {
            variant,
            label: variant.label(),
            expected_consistent: variant.expected_consistent(),
            accesses: 0,
            crashes_injected: 0,
            step_boundary_crashes: 0,
            during_eviction_crashes: 0,
            max_eviction_units: None,
            recoveries: 0,
            recoveries_consistent: 0,
            nested_crashes: 0,
            full_checks: 0,
            violations_total: 0,
            violations: Vec::new(),
            crash_point_costs: Vec::new(),
            matches_expectation: true,
        }
    }

    /// Attributes one recovery's simulated-cycle cost to a crash point.
    pub fn record_crash_cost(&mut self, point: &str, cycles: u64) {
        match self.crash_point_costs.iter_mut().find(|c| c.point == point) {
            Some(c) => {
                c.fires += 1;
                c.cycles += cycles;
            }
            None => self.crash_point_costs.push(CrashPointCost {
                point: point.to_string(),
                fires: 1,
                cycles,
            }),
        }
    }

    /// Records a violation.
    pub fn record_violation(
        &mut self,
        access_index: Option<u64>,
        crash_point: Option<CrashPoint>,
        kind: ViolationKind,
        detail: String,
    ) {
        self.violations_total += 1;
        if self.violations.len() < MAX_RECORDED_VIOLATIONS {
            self.violations.push(ViolationRecord {
                access_index,
                crash_point,
                kind,
                detail,
            });
        }
    }

    /// Finalizes `matches_expectation` from the recorded evidence and
    /// puts the cost attribution in deterministic (key-sorted) order.
    pub fn finalize(&mut self) {
        self.crash_point_costs.sort_by(|a, b| a.point.cmp(&b.point));
        self.matches_expectation = !self.expected_consistent || self.violations_total == 0;
    }
}

impl psoram_obsv::MetricsSource for VariantReport {
    fn publish(&self, prefix: &str, reg: &mut psoram_obsv::MetricsRegistry) {
        use psoram_obsv::MetricsRegistry as R;
        reg.set_counter(&R::key(prefix, "accesses"), self.accesses);
        reg.set_counter(&R::key(prefix, "crashes_injected"), self.crashes_injected);
        reg.set_counter(
            &R::key(prefix, "step_boundary_crashes"),
            self.step_boundary_crashes,
        );
        reg.set_counter(
            &R::key(prefix, "during_eviction_crashes"),
            self.during_eviction_crashes,
        );
        reg.set_counter(&R::key(prefix, "recoveries"), self.recoveries);
        reg.set_counter(
            &R::key(prefix, "recoveries_consistent"),
            self.recoveries_consistent,
        );
        reg.set_counter(&R::key(prefix, "nested_crashes"), self.nested_crashes);
        reg.set_counter(&R::key(prefix, "full_checks"), self.full_checks);
        reg.set_counter(&R::key(prefix, "violations_total"), self.violations_total);
        for c in &self.crash_point_costs {
            let base = R::key(prefix, &format!("crash_cost.{}", c.point));
            reg.set_counter(&R::key(&base, "fires"), c.fires);
            reg.set_counter(&R::key(&base, "cycles"), c.cycles);
        }
    }
}

/// A whole campaign: mode, seed, and one report per design.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CampaignReport {
    /// `"exhaustive"` or `"random"`.
    pub mode: String,
    /// RNG seed (also seeds each controller), for exact replay.
    pub seed: u64,
    /// Per-design outcomes.
    pub variants: Vec<VariantReport>,
}

impl CampaignReport {
    /// `true` when every design behaved as claimed.
    pub fn all_match_expectation(&self) -> bool {
        self.variants.iter().all(|v| v.matches_expectation)
    }

    /// Total violations across all designs.
    pub fn total_violations(&self) -> usize {
        self.variants.iter().map(|v| v.violations.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expectation_requires_clean_run_only_for_consistent_designs() {
        let mut r = VariantReport::new(crate::target::DesignVariant::Path(
            psoram_core::ProtocolVariant::Baseline,
        ));
        r.record_violation(
            Some(3),
            None,
            ViolationKind::CommittedValueLost,
            "lost".into(),
        );
        r.finalize();
        assert!(r.matches_expectation, "baseline may lose data");

        let mut r = VariantReport::new(crate::target::DesignVariant::Path(
            psoram_core::ProtocolVariant::PsOram,
        ));
        r.record_violation(
            Some(3),
            None,
            ViolationKind::CommittedValueLost,
            "lost".into(),
        );
        r.finalize();
        assert!(!r.matches_expectation, "PS-ORAM must not lose data");
    }
}
