//! A uniform fault-injection surface over the ORAM controllers.
//!
//! The harness drives Path ORAM ([`PathOram`]) and Ring ORAM
//! ([`RingOram`]) through one trait so sweeps and campaigns are written
//! once. [`DesignVariant`] names a concrete (protocol, controller) pair
//! and acts as the factory.

use psoram_core::ring::{RingConfig, RingOram, RingVariant};
use psoram_core::{
    BlockAddr, CrashPoint, OramConfig, OramError, PathOram, ProtocolVariant, RecoveryReport,
};
use serde::{Deserialize, Serialize};

use crate::oracle::CommitModel;

/// The controller operations the fault harness needs.
///
/// Both ORAM controllers implement this; the harness is generic over it
/// (via `Box<dyn FaultTarget>`), so new designs join the sweep by
/// implementing one small trait.
pub trait FaultTarget {
    /// Human-readable design name (used in reports).
    fn label(&self) -> String;
    /// Addressable logical blocks.
    fn capacity_blocks(&self) -> u64;
    /// Functional payload size in bytes.
    fn payload_bytes(&self) -> usize;
    /// Whether the design claims crash consistency (the oracle's
    /// expectation: `true` means any violation is a bug).
    fn crash_consistent(&self) -> bool;
    /// When this design's completed writes become durable (drives the
    /// oracle's admissible-value set after a crash).
    fn commit_model(&self) -> CommitModel;
    /// Writes `data` to logical block `addr`.
    ///
    /// # Errors
    ///
    /// Propagates the controller's [`OramError`] (notably
    /// [`OramError::Crashed`] when an armed crash fires).
    fn write(&mut self, addr: u64, data: Vec<u8>) -> Result<(), OramError>;
    /// Reads logical block `addr`.
    ///
    /// # Errors
    ///
    /// Propagates the controller's [`OramError`].
    fn read(&mut self, addr: u64) -> Result<Vec<u8>, OramError>;
    /// Arms a crash plan; it fires when the access reaches `point`.
    fn inject_crash(&mut self, point: CrashPoint);
    /// Drops any armed crash plan.
    fn disarm_crash(&mut self);
    /// Schedules a crash to arm when access attempt `access_index` begins.
    fn schedule_crash(&mut self, access_index: u64, point: CrashPoint);
    /// Access attempts made so far (including ones that crashed).
    fn access_attempts(&self) -> u64;
    /// `true` between a crash and the matching [`FaultTarget::recover`].
    fn is_crashed(&self) -> bool;
    /// Runs the design's recovery procedure and consistency check.
    fn recover(&mut self) -> RecoveryReport;
}

impl FaultTarget for PathOram {
    fn label(&self) -> String {
        format!("path/{}", self.variant().label())
    }
    fn capacity_blocks(&self) -> u64 {
        self.config().capacity_blocks()
    }
    fn payload_bytes(&self) -> usize {
        self.config().payload_bytes
    }
    fn crash_consistent(&self) -> bool {
        self.variant().is_crash_consistent()
    }
    fn commit_model(&self) -> CommitModel {
        // Path ORAM evicts (and the PS designs persist) within every
        // access: a completed write is durable.
        CommitModel::OnCompletion
    }
    fn write(&mut self, addr: u64, data: Vec<u8>) -> Result<(), OramError> {
        PathOram::write(self, BlockAddr(addr), data)
    }
    fn read(&mut self, addr: u64) -> Result<Vec<u8>, OramError> {
        PathOram::read(self, BlockAddr(addr))
    }
    fn inject_crash(&mut self, point: CrashPoint) {
        PathOram::inject_crash(self, point);
    }
    fn disarm_crash(&mut self) {
        PathOram::disarm_crash(self);
    }
    fn schedule_crash(&mut self, access_index: u64, point: CrashPoint) {
        PathOram::schedule_crash(self, access_index, point);
    }
    fn access_attempts(&self) -> u64 {
        PathOram::access_attempts(self)
    }
    fn is_crashed(&self) -> bool {
        PathOram::is_crashed(self)
    }
    fn recover(&mut self) -> RecoveryReport {
        PathOram::recover(self)
    }
}

impl FaultTarget for RingOram {
    fn label(&self) -> String {
        format!("ring/{}", self.variant())
    }
    fn capacity_blocks(&self) -> u64 {
        self.config().capacity_blocks()
    }
    fn payload_bytes(&self) -> usize {
        self.config().payload_bytes
    }
    fn crash_consistent(&self) -> bool {
        self.variant() == RingVariant::PsRing
    }
    fn commit_model(&self) -> CommitModel {
        // Ring ORAM only writes buckets back every `A` accesses: a
        // completed write may sit volatile until the next evict-path.
        CommitModel::Deferred
    }
    fn write(&mut self, addr: u64, data: Vec<u8>) -> Result<(), OramError> {
        RingOram::write(self, BlockAddr(addr), data)
    }
    fn read(&mut self, addr: u64) -> Result<Vec<u8>, OramError> {
        RingOram::read(self, BlockAddr(addr))
    }
    fn inject_crash(&mut self, point: CrashPoint) {
        RingOram::inject_crash(self, point);
    }
    fn disarm_crash(&mut self) {
        RingOram::disarm_crash(self);
    }
    fn schedule_crash(&mut self, access_index: u64, point: CrashPoint) {
        RingOram::schedule_crash(self, access_index, point);
    }
    fn access_attempts(&self) -> u64 {
        RingOram::access_attempts(self)
    }
    fn is_crashed(&self) -> bool {
        RingOram::is_crashed(self)
    }
    fn recover(&mut self) -> RecoveryReport {
        RingOram::recover(self)
    }
}

/// A concrete design the harness can build and torture.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DesignVariant {
    /// A Path ORAM protocol variant on the small test geometry.
    Path(ProtocolVariant),
    /// A Ring ORAM persistence flavour on the small test geometry.
    Ring(RingVariant),
}

impl DesignVariant {
    /// The default sweep set: the non-persistent baseline (expected to
    /// fail), the paper's PS-ORAM (expected to pass), and the Ring ORAM
    /// extension (expected to pass).
    pub fn sweep_set() -> Vec<DesignVariant> {
        vec![
            DesignVariant::Path(ProtocolVariant::Baseline),
            DesignVariant::Path(ProtocolVariant::PsOram),
            DesignVariant::Ring(RingVariant::PsRing),
        ]
    }

    /// Builds a fresh controller for this design, seeded for determinism.
    pub fn build(self, seed: u64) -> Box<dyn FaultTarget> {
        match self {
            DesignVariant::Path(v) => Box::new(PathOram::new(OramConfig::small_test(), v, seed)),
            DesignVariant::Ring(v) => Box::new(RingOram::new(RingConfig::small_test(), v, seed)),
        }
    }

    /// The design's display label (matches [`FaultTarget::label`]).
    pub fn label(self) -> String {
        match self {
            DesignVariant::Path(v) => format!("path/{}", v.label()),
            DesignVariant::Ring(v) => format!("ring/{v}"),
        }
    }

    /// Whether this design is expected to survive every crash.
    pub fn expected_consistent(self) -> bool {
        match self {
            DesignVariant::Path(v) => v.is_crash_consistent(),
            DesignVariant::Ring(v) => v == RingVariant::PsRing,
        }
    }
}

impl std::fmt::Display for DesignVariant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factory_builds_matching_labels() {
        for v in DesignVariant::sweep_set() {
            let t = v.build(1);
            assert_eq!(t.label(), v.label());
            assert_eq!(t.crash_consistent(), v.expected_consistent());
            assert!(t.capacity_blocks() > 16);
        }
    }

    #[test]
    fn variant_serde_round_trips() {
        for v in DesignVariant::sweep_set() {
            let json = serde_json::to_string(&v).unwrap();
            let back: DesignVariant = serde_json::from_str(&json).unwrap();
            assert_eq!(back, v);
        }
    }
}
