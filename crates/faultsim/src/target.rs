//! A uniform fault-injection surface over the ORAM controllers.
//!
//! The harness drives Path ORAM ([`PathOram`]) and Ring ORAM
//! ([`RingOram`]) through the shared persist engine's
//! [`ProtocolPolicy`](psoram_core::ProtocolPolicy) trait — re-exported
//! here as [`FaultTarget`] — so sweeps and campaigns are written once.
//! [`DesignVariant`] names a concrete (protocol, controller) pair and
//! acts as the factory.

use psoram_core::ring::{RingConfig, RingOram, RingVariant};
use psoram_core::{OramConfig, PathOram, ProtocolVariant};
use serde::{Deserialize, Serialize};

/// The controller operations the fault harness needs.
///
/// This is the engine-level [`ProtocolPolicy`](psoram_core::ProtocolPolicy)
/// trait: both ORAM controllers implement it in `psoram-core`, and the
/// harness is generic over it (via `Box<dyn FaultTarget>`), so new designs
/// join the sweep by implementing one small trait next to the engine.
pub use psoram_core::engine::ProtocolPolicy as FaultTarget;

/// A concrete design the harness can build and torture.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DesignVariant {
    /// A Path ORAM protocol variant on the small test geometry.
    Path(ProtocolVariant),
    /// A Ring ORAM persistence flavour on the small test geometry.
    Ring(RingVariant),
}

impl DesignVariant {
    /// The default sweep set: the non-persistent baseline (expected to
    /// fail), the paper's PS-ORAM (expected to pass), and the Ring ORAM
    /// extension (expected to pass).
    pub fn sweep_set() -> Vec<DesignVariant> {
        vec![
            DesignVariant::Path(ProtocolVariant::Baseline),
            DesignVariant::Path(ProtocolVariant::PsOram),
            DesignVariant::Ring(RingVariant::PsRing),
        ]
    }

    /// Builds a fresh controller for this design, seeded for determinism.
    pub fn build(self, seed: u64) -> Box<dyn FaultTarget> {
        match self {
            DesignVariant::Path(v) => Box::new(PathOram::new(OramConfig::small_test(), v, seed)),
            DesignVariant::Ring(v) => Box::new(RingOram::new(RingConfig::small_test(), v, seed)),
        }
    }

    /// The design's display label (matches [`FaultTarget::label`]).
    pub fn label(self) -> String {
        match self {
            DesignVariant::Path(v) => format!("path/{}", v.label()),
            DesignVariant::Ring(v) => format!("ring/{v}"),
        }
    }

    /// Whether this design is expected to survive every crash.
    pub fn expected_consistent(self) -> bool {
        match self {
            DesignVariant::Path(v) => v.is_crash_consistent(),
            DesignVariant::Ring(v) => v == RingVariant::PsRing,
        }
    }
}

impl std::fmt::Display for DesignVariant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factory_builds_matching_labels() {
        for v in DesignVariant::sweep_set() {
            let t = v.build(1);
            assert_eq!(t.label(), v.label());
            assert_eq!(t.crash_consistent(), v.expected_consistent());
            assert!(t.capacity_blocks() > 16);
        }
    }

    #[test]
    fn variant_serde_round_trips() {
        for v in DesignVariant::sweep_set() {
            let json = serde_json::to_string(&v).unwrap();
            let back: DesignVariant = serde_json::from_str(&json).unwrap();
            assert_eq!(back, v);
        }
    }
}
