//! The crash→recover→verify engine shared by sweeps and campaigns.

use psoram_core::{CrashPoint, OramError};

use crate::device::DeviceFaultSummary;
use crate::oracle::ShadowOracle;
use crate::report::{VariantReport, ViolationKind};
use crate::target::{DesignVariant, FaultTarget};

/// How many consecutive unexpected (non-injected) controller errors the
/// driver tolerates before abandoning a variant's run.
const MAX_UNEXPECTED_ERRORS: u64 = 5;

/// Stable attribution key for a crash point: the step-boundary name,
/// `"DuringEviction"` for every mid-eviction index, or `"Unattributed"`
/// for crashes the harness did not arm.
fn crash_point_key(point: Option<CrashPoint>) -> &'static str {
    match point {
        Some(CrashPoint::AfterCheckStash) => "AfterCheckStash",
        Some(CrashPoint::AfterAccessPosMap) => "AfterAccessPosMap",
        Some(CrashPoint::AfterLoadPath) => "AfterLoadPath",
        Some(CrashPoint::AfterUpdateStash) => "AfterUpdateStash",
        Some(CrashPoint::DuringEviction(_)) => "DuringEviction",
        Some(CrashPoint::AfterEviction) => "AfterEviction",
        None => "Unattributed",
    }
}

/// Drives one design through a fault workload, keeping the shadow oracle
/// and the report in lockstep with every access.
pub(crate) struct Driver {
    pub target: Box<dyn FaultTarget>,
    pub oracle: ShadowOracle,
    pub report: VariantReport,
    /// Set when the run hit too many unexpected errors to continue.
    pub aborted: bool,
    /// Device-fault mode: typed fail-safe refusals (poisoning) become an
    /// expected outcome rather than unexpected errors, and recovery's
    /// declared rollbacks resync the shadow instead of standing as
    /// violations — only *silent* divergence counts.
    pub device: bool,
    /// Latched when the controller poisons itself (device mode only).
    /// The campaign tears the target down and rebuilds it.
    pub poisoned: bool,
    /// Detection/repair evidence accumulated across recoveries
    /// (device mode only).
    pub device_summary: DeviceFaultSummary,
    /// Recoveries between full shadow read-backs (0 → final check only).
    full_check_every: u64,
    unexpected_errors: u64,
    payload_counter: u64,
    payload_bytes: usize,
}

impl Driver {
    pub fn new(variant: DesignVariant, seed: u64, full_check_every: u64) -> Self {
        let target = variant.build(seed);
        let payload_bytes = target.payload_bytes();
        let model = target.commit_model();
        Driver {
            target,
            oracle: ShadowOracle::new(payload_bytes, model),
            report: VariantReport::new(variant),
            aborted: false,
            device: false,
            poisoned: false,
            device_summary: DeviceFaultSummary::default(),
            full_check_every,
            unexpected_errors: 0,
            payload_counter: 0,
            payload_bytes,
        }
    }

    /// A fresh, unique payload (a little-endian counter padded to the
    /// block's payload size) — distinguishes every write in the oracle.
    pub fn next_payload(&mut self) -> Vec<u8> {
        self.payload_counter += 1;
        let mut v = vec![0u8; self.payload_bytes];
        for (dst, src) in v.iter_mut().zip(self.payload_counter.to_le_bytes()) {
            *dst = src;
        }
        v
    }

    /// Writes every address in `0..working_set` once, crash-free, so the
    /// oracle starts with a fully committed shadow.
    pub fn prefill(&mut self, working_set: u64) {
        for addr in 0..working_set {
            let value = self.next_payload();
            if self.do_write(addr, value) {
                // No crash is armed during prefill; a crash here means the
                // harness itself is broken.
                unreachable!("crash fired during prefill");
            }
        }
    }

    /// Issues one workload write. Returns `true` when the access crashed
    /// (the crash is still unhandled — call [`Driver::handle_crash`]).
    pub fn do_write(&mut self, addr: u64, value: Vec<u8>) -> bool {
        self.report.accesses += 1;
        self.oracle.begin_write(addr, value.clone());
        match self.target.write(addr, value) {
            Ok(()) => {
                self.oracle.commit_write();
                false
            }
            Err(OramError::Crashed) => true,
            Err(OramError::Poisoned { .. }) if self.device => {
                self.oracle.drop_pending();
                self.poisoned = true;
                false
            }
            Err(e) => {
                self.oracle.drop_pending();
                self.record_unexpected(e);
                false
            }
        }
    }

    /// Issues one workload read, checking the value against the oracle.
    /// Returns `true` when the access crashed.
    pub fn do_read(&mut self, addr: u64) -> bool {
        self.report.accesses += 1;
        match self.target.read(addr) {
            Ok(v) => {
                if let Err(detail) = self.oracle.observe(addr, &v) {
                    self.report.record_violation(
                        None,
                        None,
                        ViolationKind::CommittedValueLost,
                        detail,
                    );
                    self.oracle.resync(addr, &v);
                }
                false
            }
            Err(OramError::Crashed) => true,
            Err(OramError::Poisoned { .. }) if self.device => {
                self.poisoned = true;
                false
            }
            Err(e) => {
                self.record_unexpected(e);
                false
            }
        }
    }

    /// Handles a crash that fired on the access of `addr`: recovers,
    /// verifies, and (optionally) injects a nested crash in the middle of
    /// the verification itself.
    ///
    /// `attempt_index` is the controller's access-attempt index of the
    /// crashed access (for replay); `point` is the injected crash point
    /// (`None` for crashes the harness did not arm itself).
    pub fn handle_crash(
        &mut self,
        attempt_index: u64,
        point: Option<CrashPoint>,
        addr: u64,
        nested: Option<CrashPoint>,
    ) {
        let clock_before = self.target.clock();
        self.count_crash(point);
        self.oracle.note_crash();
        self.recover_once(attempt_index, point);

        // Nested fault: the power fails again while recovery is being
        // verified. The armed plan fires on the first verification read.
        if let Some(np) = nested {
            self.target.inject_crash(np);
        }

        // Adjudicate the interrupted access by reading its address back.
        match self.read_verifying(addr, attempt_index, nested) {
            Some(v) => {
                if self.oracle.has_pending() {
                    if let Err(detail) = self.oracle.resolve_pending(&v) {
                        self.report.record_violation(
                            Some(attempt_index),
                            point,
                            ViolationKind::TornWrite,
                            detail,
                        );
                        self.oracle.resync(addr, &v);
                    }
                } else if let Err(detail) = self.oracle.observe(addr, &v) {
                    self.report.record_violation(
                        Some(attempt_index),
                        point,
                        ViolationKind::CommittedValueLost,
                        detail,
                    );
                    self.oracle.resync(addr, &v);
                }
            }
            None => self.oracle.drop_pending(),
        }
        // A nested plan that never fired must not leak into the workload.
        self.target.disarm_crash();

        // Timing attribution: the simulated cycles this crash cost, from
        // recovery through adjudication (including nested recoveries, but
        // excluding the periodic amortized full check below).
        self.report
            .record_crash_cost(crash_point_key(point), self.target.clock() - clock_before);

        if self.full_check_every > 0 && self.report.recoveries.is_multiple_of(self.full_check_every)
        {
            self.full_check(Some(attempt_index), point);
        }
    }

    /// Reads back every committed address and checks it against the
    /// shadow. Mismatches are recorded (and the shadow resynced so a
    /// lossy baseline keeps producing fresh evidence instead of echoes).
    pub fn full_check(&mut self, attempt_index: Option<u64>, point: Option<CrashPoint>) {
        self.report.full_checks += 1;
        for addr in self.oracle.addrs() {
            if self.aborted || self.poisoned {
                return;
            }
            if let Some(v) = self.read_verifying(addr, attempt_index.unwrap_or(0), None) {
                if let Err(detail) = self.oracle.observe(addr, &v) {
                    self.report.record_violation(
                        attempt_index,
                        point,
                        ViolationKind::CommittedValueLost,
                        detail,
                    );
                    self.oracle.resync(addr, &v);
                }
            }
        }
    }

    /// Finishes the run: final full read-back, then the verdict.
    pub fn finish(mut self) -> VariantReport {
        if !self.aborted {
            self.full_check(None, None);
        }
        self.report.finalize();
        self.report
    }

    /// A verification read (not part of the workload). Recovers inline if
    /// a nested crash fires mid-verification.
    fn read_verifying(
        &mut self,
        addr: u64,
        attempt_index: u64,
        nested: Option<CrashPoint>,
    ) -> Option<Vec<u8>> {
        loop {
            match self.target.read(addr) {
                Ok(v) => return Some(v),
                Err(OramError::Crashed) => {
                    self.report.nested_crashes += 1;
                    self.count_crash(nested);
                    self.oracle.note_crash();
                    self.recover_once(attempt_index, nested);
                }
                Err(OramError::Poisoned { .. }) if self.device => {
                    self.poisoned = true;
                    return None;
                }
                Err(e) => {
                    self.record_unexpected(e);
                    return None;
                }
            }
        }
    }

    /// Injects a power failure at rest — no access in flight — then
    /// recovers and runs the periodic full check. The device campaigns
    /// prefer this shape: with the committed WPQ backlog empty, crash
    /// damage lands squarely on the last applied round's persist units,
    /// which is exactly the state the integrity layer must defend.
    pub fn crash_at_rest(&mut self) {
        let attempt = self.target.access_attempts();
        let clock_before = self.target.clock();
        self.count_crash(None);
        self.oracle.note_crash();
        self.target.crash_now();
        self.recover_once(attempt, None);
        self.report
            .record_crash_cost("AtRest", self.target.clock() - clock_before);
        if self.full_check_every > 0 && self.report.recoveries.is_multiple_of(self.full_check_every)
        {
            self.full_check(Some(attempt), None);
        }
    }

    fn recover_once(&mut self, attempt_index: u64, point: Option<CrashPoint>) {
        let rec = self.target.recover();
        self.report.recoveries += 1;
        if self.device {
            self.device_summary.incidents += rec.incidents.len() as u64;
            self.device_summary.repairs += rec.repairs;
            self.device_summary.rollbacks += rec.rolled_back.len() as u64;
            self.device_summary.typed_errors += rec.errors.len() as u64;
            self.device_summary.replays_detected += rec.replays_detected;
            self.device_summary.splices_detected += rec.splices_detected;
            if rec.poisoned {
                self.poisoned = true;
            }
        }
        if rec.consistent {
            self.report.recoveries_consistent += 1;
        } else if self.device && (!rec.errors.is_empty() || rec.poisoned) {
            // A detected fail-safe: the design lost data but *said so*,
            // with typed errors or by refusing service. That is the
            // contract under device faults — only silent divergence
            // counts against a hardened design.
            self.device_summary.detected_failsafes += 1;
            if !rec.poisoned {
                // The design declared data loss; realign the whole shadow
                // to its post-recovery truth so only *new*, undeclared
                // divergence is reported from here on.
                for addr in self.oracle.addrs() {
                    if self.poisoned {
                        break;
                    }
                    self.resync_declared(addr);
                }
            }
        } else {
            self.report.record_violation(
                Some(attempt_index),
                point,
                ViolationKind::RecoveryCheck,
                rec.violation
                    .unwrap_or_else(|| "recoverability check failed".into()),
            );
        }
        // Typed rollbacks moved the durable truth backwards on purpose;
        // fold them into the shadow so later read-backs check the design
        // against what recovery *declared*, not what the fault destroyed.
        if self.device {
            for addr in rec.rolled_back {
                if self.poisoned {
                    break;
                }
                self.resync_declared(addr);
            }
        }
    }

    /// Reads `addr` back and resyncs the shadow to the observed value
    /// without recording a violation — used for addresses a recovery
    /// rolled back (or re-floored) under a typed error.
    fn resync_declared(&mut self, addr: u64) {
        match self.target.read(addr) {
            Ok(v) => self.oracle.resync(addr, &v),
            Err(OramError::Poisoned { .. }) => self.poisoned = true,
            Err(OramError::Crashed) => {}
            Err(e) => self.record_unexpected(e),
        }
    }

    fn count_crash(&mut self, point: Option<CrashPoint>) {
        self.report.crashes_injected += 1;
        match point {
            Some(CrashPoint::DuringEviction(k)) => {
                self.report.during_eviction_crashes += 1;
                self.report.max_eviction_units =
                    Some(self.report.max_eviction_units.map_or(k, |m| m.max(k)));
            }
            Some(_) => self.report.step_boundary_crashes += 1,
            None => {}
        }
    }

    fn record_unexpected(&mut self, e: OramError) {
        self.report.record_violation(
            Some(self.target.access_attempts()),
            None,
            ViolationKind::UnexpectedError,
            e.to_string(),
        );
        self.unexpected_errors += 1;
        if self.unexpected_errors >= MAX_UNEXPECTED_ERRORS {
            self.aborted = true;
        }
    }
}
