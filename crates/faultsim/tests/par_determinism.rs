//! Byte-identity of the parallel runner across job counts.
//!
//! The contract the figure binaries and the golden campaign rely on: the
//! number of worker threads is a pure throughput knob. Every report must be
//! byte-identical at `jobs = 1` (the legacy serial path) and any `jobs > 1`.

use proptest::prelude::*;
use psoram_faultsim::{exhaustive_sweep, par_map, random_campaign, CampaignConfig, SweepConfig};

/// Full campaign + sweep reports, serialized, across PSORAM_JOBS ∈ {1, 2, 8}.
///
/// This test owns the `PSORAM_JOBS` mutation for the whole process (the
/// other tests in this binary pass explicit job counts and never read the
/// environment), so running it alongside them is safe.
#[test]
fn campaign_and_sweep_reports_identical_across_job_counts() {
    let ccfg = CampaignConfig {
        seed: 42,
        ..CampaignConfig::smoke()
    };
    let scfg = SweepConfig::smoke();

    let mut outputs: Vec<(String, String)> = Vec::new();
    for jobs in ["1", "2", "8"] {
        std::env::set_var(psoram_faultsim::par::JOBS_ENV, jobs);
        let campaign = serde_json::to_string_pretty(&random_campaign(&ccfg)).unwrap();
        let sweep = serde_json::to_string_pretty(&exhaustive_sweep(&scfg)).unwrap();
        outputs.push((campaign, sweep));
    }
    std::env::remove_var(psoram_faultsim::par::JOBS_ENV);

    assert_eq!(outputs[0], outputs[1], "jobs=2 diverged from jobs=1");
    assert_eq!(outputs[0], outputs[2], "jobs=8 diverged from jobs=1");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Ordering property: for arbitrary inputs, `par_map` returns the same
    /// output vector at jobs ∈ {1, 2, 8}.
    #[test]
    fn par_map_output_independent_of_job_count(
        items in prop::collection::vec(any::<u64>(), 0..64),
    ) {
        let f = |x: u64| x.rotate_left(13) ^ 0xA5A5_5A5A_0F0F_F0F0;
        let at_1 = par_map(1, items.clone(), f);
        let at_2 = par_map(2, items.clone(), f);
        let at_8 = par_map(8, items.clone(), f);
        prop_assert_eq!(&at_1, &at_2);
        prop_assert_eq!(&at_1, &at_8);
    }
}
