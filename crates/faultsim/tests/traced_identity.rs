//! The tentpole acceptance property: attaching a recorder — noop or
//! ring-buffer — to a fault-injection campaign must not change a single
//! byte of the campaign report.
//!
//! The guarantee is structural (`Tap::emit` takes a closure, so a
//! detached tap never even constructs events), but this paired-run test
//! is what keeps it true as taps are added to new code paths.

use std::sync::Arc;

use psoram_faultsim::{
    campaign_variant, campaign_variant_traced, random_campaign, random_campaign_traced,
    CampaignConfig, DesignVariant,
};
use psoram_obsv::{NoopRecorder, RingBufferRecorder, DEFAULT_RING_CAPACITY};

fn seed_42() -> CampaignConfig {
    CampaignConfig {
        seed: 42,
        ..CampaignConfig::smoke()
    }
}

#[test]
fn campaign_report_identical_with_and_without_tracing() {
    let cfg = seed_42();
    let untraced = serde_json::to_string_pretty(&random_campaign(&cfg)).unwrap();
    let (traced, tracks) = random_campaign_traced(&cfg);
    let traced = serde_json::to_string_pretty(&traced).unwrap();
    assert_eq!(
        untraced, traced,
        "tracing a campaign changed its report — the taps are not pure observers"
    );
    assert!(
        tracks.iter().all(|(_, events)| !events.is_empty()),
        "every design's track must have captured events"
    );
}

#[test]
fn noop_and_ring_recorders_yield_identical_variant_reports() {
    let cfg = seed_42();
    for variant in DesignVariant::sweep_set() {
        let bare = campaign_variant(variant, &cfg);
        let noop = campaign_variant_traced(variant, &cfg, Some(Arc::new(NoopRecorder)));
        let ring = campaign_variant_traced(
            variant,
            &cfg,
            Some(Arc::new(RingBufferRecorder::new(DEFAULT_RING_CAPACITY))),
        );
        let bare = serde_json::to_string(&bare).unwrap();
        assert_eq!(
            bare,
            serde_json::to_string(&noop).unwrap(),
            "{}: NoopRecorder perturbed the campaign",
            variant.label()
        );
        assert_eq!(
            bare,
            serde_json::to_string(&ring).unwrap(),
            "{}: RingBufferRecorder perturbed the campaign",
            variant.label()
        );
    }
}
