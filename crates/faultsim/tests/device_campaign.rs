//! Acceptance: the seeded device-fault campaign.
//!
//! One full campaign — every Path protocol variant plus both Ring
//! flavours, hundreds of crashes, a fault mix spanning torn flushes,
//! WPQ signal loss/duplication, and persisted bit flips — with the
//! tentpole contract asserted design by design: hardened controllers
//! never diverge from the shadow oracle silently (every loss is a
//! repair, a typed rollback, or a fail-safe poison), and the unhardened
//! baselines keep failing, proving the injector kept its teeth.

use psoram_faultsim::{device_campaign, device_campaign_variant, DeviceCampaignConfig};

#[test]
fn full_device_campaign_has_no_silent_corruption() {
    let cfg = DeviceCampaignConfig::default();
    let report = device_campaign(&cfg);

    // Scale: the campaign must amount to a real search, not a smoke run.
    assert!(
        report.total_crashes() >= 500,
        "only {} crashes fired across the design matrix",
        report.total_crashes()
    );

    // Mix: all three headline fault classes must actually fire.
    let (mut torn, mut signal, mut flips) = (0u64, 0u64, 0u64);
    for v in &report.variants {
        torn += v.device.injected.torn_flushes;
        signal += v.device.injected.signal_losses + v.device.injected.duplicated_signals;
        flips += v.device.injected.bit_flips;
    }
    assert!(
        torn > 0 && signal > 0 && flips > 0,
        "fault mix incomplete: torn {torn}, signal {signal}, flips {flips}"
    );

    for v in &report.variants {
        assert!(
            v.report.crashes_injected > 0,
            "{}: no crash",
            v.report.label
        );
        if v.device.hardened {
            // The tentpole contract: zero undetected corruptions. Data
            // loss is admissible only as a repair, a typed rollback, or
            // a fail-safe — never as a silent oracle violation.
            assert!(
                v.report.matches_expectation,
                "{}: {} silent violation(s) under device faults (first: {:?})",
                v.report.label,
                v.report.violations_total,
                v.report.violations.first()
            );
        }
    }

    // The integrity layer must have actually worked for a living.
    let evidence: u64 = report
        .variants
        .iter()
        .filter(|v| v.device.hardened)
        .map(|v| v.device.incidents + v.device.repairs + v.device.rollbacks)
        .sum();
    assert!(evidence > 0, "hardened designs never detected a fault");

    // Detection power: at least one unhardened design must have violated.
    assert!(
        report
            .variants
            .iter()
            .any(|v| !v.device.hardened && v.report.violations_total > 0),
        "no unhardened design violated — the injector is toothless"
    );

    assert!(report.all_match_expectation());
}

#[test]
fn device_campaign_is_deterministic_under_fixed_seed() {
    let cfg = DeviceCampaignConfig {
        cycles: 8,
        ..DeviceCampaignConfig::smoke()
    };
    for v in psoram_faultsim::device_sweep_set() {
        let a = device_campaign_variant(v, &cfg);
        let b = device_campaign_variant(v, &cfg);
        assert_eq!(a, b, "{v}: non-deterministic device campaign");
    }
}

#[test]
fn aggressive_mix_forces_failsafe_rebuilds_somewhere() {
    let cfg = DeviceCampaignConfig {
        aggressive: true,
        cycles: 30,
        ..DeviceCampaignConfig::default()
    };
    let report = device_campaign(&cfg);
    // Under the aggressive mix the hardened designs must still never
    // diverge silently, even while being torn apart hard enough that
    // typed rollbacks or poison-rebuilds become routine.
    for v in &report.variants {
        if v.device.hardened {
            assert!(
                v.report.matches_expectation,
                "{}: silent violation under the aggressive mix (first: {:?})",
                v.report.label,
                v.report.violations.first()
            );
        }
    }
    let declared: u64 = report
        .variants
        .iter()
        .filter(|v| v.device.hardened)
        .map(|v| v.device.rollbacks + v.device.failsafe_rebuilds + v.device.detected_failsafes)
        .sum();
    assert!(
        declared > 0,
        "aggressive mix never forced a declared loss or fail-safe"
    );
}
