//! End-to-end checks of the fault-injection harness: the PS designs must
//! come through every campaign clean, the non-persistent baseline must be
//! caught losing data, runs must be deterministic under a fixed seed, and
//! reports must round-trip through JSON.

use psoram_core::ring::RingVariant;
use psoram_core::ProtocolVariant;
use psoram_faultsim::{
    campaign_variant, exhaustive_sweep, random_campaign, sweep_variant, CampaignConfig,
    CampaignReport, DesignVariant, SweepConfig,
};

fn sweep_cfg() -> SweepConfig {
    // Small enough for a debug-build test, large enough to cycle through
    // all step boundaries and eviction indices many times.
    SweepConfig {
        seed: 7,
        accesses: 200,
        working_set: 24,
        full_check_every: 25,
    }
}

#[test]
fn sweep_ps_oram_survives_every_crash_point() {
    // The full acceptance-grade sweep: ≥1000 accesses, every step
    // boundary and every reachable DuringEviction(k) index, zero
    // violations end to end.
    let r = sweep_variant(
        DesignVariant::Path(ProtocolVariant::PsOram),
        &SweepConfig::default(),
    );
    assert!(r.accesses >= 1000);
    assert_eq!(r.violations_total, 0, "violations: {:?}", r.violations);
    assert!(r.matches_expectation);
    // The sweep actually exercised both crash families.
    assert!(
        r.step_boundary_crashes >= 200,
        "only {} step crashes",
        r.step_boundary_crashes
    );
    assert!(
        r.during_eviction_crashes >= 100,
        "only {} mid-eviction",
        r.during_eviction_crashes
    );
    assert!(r.max_eviction_units.is_some());
    assert_eq!(r.recoveries, r.crashes_injected);
    assert_eq!(r.recoveries_consistent, r.recoveries);
}

#[test]
fn sweep_ps_ring_survives_every_crash_point() {
    let r = sweep_variant(DesignVariant::Ring(RingVariant::PsRing), &sweep_cfg());
    assert_eq!(r.violations_total, 0, "violations: {:?}", r.violations);
    assert!(
        r.during_eviction_crashes > 0,
        "ring sweep never crashed mid-rewrite"
    );
    assert!(r.matches_expectation);
}

#[test]
fn sweep_detects_baseline_data_loss() {
    let r = sweep_variant(DesignVariant::Path(ProtocolVariant::Baseline), &sweep_cfg());
    assert!(
        r.violations_total > 0,
        "the non-persistent baseline passed the sweep: the oracle is toothless"
    );
    // Baseline makes no consistency claim, so the run still "matches".
    assert!(r.matches_expectation);
    // Violations are pinned for replay.
    assert!(r
        .violations
        .iter()
        .any(|v| v.crash_point.is_some() && v.access_index.is_some()));
}

#[test]
fn full_exhaustive_sweep_matches_expectations() {
    let report = exhaustive_sweep(&SweepConfig::smoke());
    assert_eq!(report.mode, "exhaustive");
    assert_eq!(report.variants.len(), 3);
    assert!(report.all_match_expectation());
    assert!(
        report.total_violations() > 0,
        "baseline should contribute violations"
    );
}

#[test]
fn random_campaign_is_deterministic_under_fixed_seed() {
    let cfg = CampaignConfig {
        seed: 99,
        cycles: 20,
        ..CampaignConfig::smoke()
    };
    let a = random_campaign(&cfg);
    let b = random_campaign(&cfg);
    assert_eq!(a, b, "same seed must reproduce the identical report");

    let other = random_campaign(&CampaignConfig { seed: 100, ..cfg });
    assert_ne!(
        a, other,
        "different seeds should explore different schedules"
    );
}

#[test]
fn campaign_ps_oram_survives_nested_crashes() {
    let cfg = CampaignConfig {
        seed: 5,
        cycles: 60,
        nested_crash_prob: 0.5,
        ..CampaignConfig::smoke()
    };
    let r = campaign_variant(DesignVariant::Path(ProtocolVariant::PsOram), &cfg);
    assert_eq!(r.violations_total, 0, "violations: {:?}", r.violations);
    assert!(
        r.nested_crashes > 0,
        "campaign never crashed during a recovery"
    );
    assert!(r.recoveries > r.nested_crashes);
}

#[test]
fn campaign_ps_ring_seed_42_regression() {
    // Seed 42 once drove PS-Ring into losing a block: an eviction pulled a
    // live block off its persisted position, failed to re-place it (path
    // buckets full), and the committed rewrite destroyed the only durable
    // copy while the block retreated to the volatile stash. The fix pins a
    // backup copy on the persisted path inside the same atomic round.
    let cfg = CampaignConfig {
        seed: 42,
        ..CampaignConfig::default()
    };
    let r = campaign_variant(DesignVariant::Ring(RingVariant::PsRing), &cfg);
    assert_eq!(r.violations_total, 0, "violations: {:?}", r.violations);
    assert!(r.matches_expectation);
}

#[test]
fn campaign_report_round_trips_through_json() {
    let cfg = CampaignConfig {
        seed: 3,
        cycles: 8,
        ..CampaignConfig::smoke()
    };
    let report = random_campaign(&cfg);
    let json = serde_json::to_string_pretty(&report).unwrap();
    let back: CampaignReport = serde_json::from_str(&json).unwrap();
    assert_eq!(back, report);
    // Spot-check the JSON is structured, not stringly.
    assert!(json.contains("\"mode\""));
    assert!(json.contains("\"variants\""));
}
