//! Per-instance crash isolation: a power fault on one fleet instance
//! must not perturb any sibling, and the targeted instance must recover
//! through the ordinary hardened `recover()` path.

use psoram_core::ProtocolVariant;
use psoram_faultsim::{fleet_campaign, DesignVariant, FleetConfig};

fn base() -> FleetConfig {
    FleetConfig {
        design: DesignVariant::Path(ProtocolVariant::PsOram),
        instances: 4,
        accesses_per_instance: 200,
        seed: 0x5EAF00D,
        crash_instance: None,
        crash_after: 80,
        jobs: 0,
    }
}

#[test]
fn crashing_one_instance_leaves_siblings_byte_identical() {
    let clean = fleet_campaign(&base());
    let crashed = fleet_campaign(&FleetConfig {
        crash_instance: Some(2),
        ..base()
    });
    assert_eq!(clean.len(), 4);

    for i in [0usize, 1, 3] {
        let a = serde_json::to_string(&clean[i]).unwrap();
        let b = serde_json::to_string(&crashed[i]).unwrap();
        assert_eq!(a, b, "instance {i} must be untouched by instance 2's crash");
    }

    let target = &crashed[2];
    assert_eq!(target.crashes, 1, "the scheduled power fault must fire");
    assert_eq!(
        target.recoveries_consistent, 1,
        "PS-ORAM must recover consistently via the hardened recover() path"
    );
    assert!(target.verify_ok, "no committed write may be lost");
    assert_eq!(
        target.accesses,
        base().accesses_per_instance,
        "the instance keeps serving after local recovery"
    );
}

#[test]
fn ring_fleet_recovers_locally_too() {
    let cfg = FleetConfig {
        design: DesignVariant::Ring(psoram_core::ring::RingVariant::PsRing),
        instances: 3,
        accesses_per_instance: 150,
        crash_instance: Some(0),
        crash_after: 60,
        ..base()
    };
    let lanes = fleet_campaign(&cfg);
    assert_eq!(lanes[0].crashes, 1);
    assert_eq!(lanes[0].recoveries_consistent, 1);
    assert!(lanes.iter().all(|l| l.verify_ok));
}

#[test]
fn fleet_is_deterministic_across_worker_counts_with_crash() {
    let cfg = FleetConfig {
        crash_instance: Some(1),
        ..base()
    };
    let serial = fleet_campaign(&FleetConfig {
        jobs: 1,
        ..cfg.clone()
    });
    let parallel = fleet_campaign(&FleetConfig { jobs: 4, ..cfg });
    assert_eq!(
        serde_json::to_string(&serial).unwrap(),
        serde_json::to_string(&parallel).unwrap()
    );
}
