//! Differential golden test for the persist-round engine.
//!
//! Runs the seed-42 randomized campaign — Path and Ring designs through
//! the shared engine — and asserts the serialized `CampaignReport` is
//! byte-identical to a checked-in golden. Any accidental behavior change
//! in the persist-round protocol, crash scheduling, or recovery path
//! shows up here as a diff before it shows up anywhere subtler.
//!
//! To re-bless after an *intentional* behavior change:
//!
//! ```text
//! PSORAM_BLESS=1 cargo test -p psoram-faultsim --test golden_campaign
//! ```

use psoram_faultsim::{random_campaign, CampaignConfig};

const GOLDEN_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/goldens/campaign_seed42.json"
);

#[test]
fn seed_42_campaign_matches_golden() {
    let cfg = CampaignConfig {
        seed: 42,
        ..CampaignConfig::smoke()
    };
    let report = random_campaign(&cfg);
    let mut json = serde_json::to_string_pretty(&report).expect("report serializes");
    json.push('\n');

    if std::env::var_os("PSORAM_BLESS").is_some() {
        std::fs::write(GOLDEN_PATH, &json).expect("write golden");
        return;
    }

    let golden = std::fs::read_to_string(GOLDEN_PATH)
        .expect("golden missing — run with PSORAM_BLESS=1 to create it");
    assert_eq!(
        json, golden,
        "seed-42 campaign report diverged from the checked-in golden; \
         if the change is intentional, re-bless with PSORAM_BLESS=1"
    );
}
