//! Acceptance: the replay/splice adversary vs. the freshness layer.
//!
//! Hundreds of seeded device campaigns with the replay adversary armed —
//! crashed rounds rolled back to authentic stale versions, persist units
//! spliced across addresses, stale snapshots served on the fetch wire —
//! across every design in the sweep set. The tentpole contract, asserted
//! campaign by campaign: the hardened designs detect **every** injected
//! replay (crash-side convictions cover the drawn replay/splice events;
//! wire-side, every served stale snapshot is caught before consumption),
//! while the unhardened baselines consume stale data none the wiser —
//! the differential proof that the adversary kept its teeth.

use psoram_faultsim::{device_campaign, device_sweep_set, DeviceCampaignConfig};

fn replay_cfg(seed: u64) -> DeviceCampaignConfig {
    DeviceCampaignConfig {
        seed,
        cycles: 5,
        max_quiet_accesses: 5,
        working_set: 12,
        full_check_every: 10,
        aggressive: false,
        replay: true,
    }
}

#[test]
fn replay_campaigns_detect_every_injected_replay() {
    const SEEDS: u64 = 56;
    let designs = device_sweep_set().len() as u64;
    assert!(
        SEEDS * designs >= 500,
        "campaign matrix too small to count as a search"
    );

    let (mut replays, mut splices, mut serves) = (0u64, 0u64, 0u64);
    let mut detected_crash = 0u64;
    let mut baseline_violations = 0u64;
    let mut baseline_blind_serves = 0u64;

    for i in 0..SEEDS {
        let cfg = replay_cfg(0xF5E5 ^ i.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let report = device_campaign(&cfg);

        // The tentpole: every hardened design detected all of the
        // adversary's work in this campaign.
        assert!(
            report.all_replays_detected(),
            "seed {:#x}: a hardened design missed an injected replay: {:?}",
            cfg.seed,
            report
                .variants
                .iter()
                .filter(|v| v.device.hardened)
                .map(|v| (
                    v.report.label.clone(),
                    v.device.injected.stale_replays,
                    v.device.injected.cross_splices,
                    v.device.replays_detected,
                    v.device.splices_detected,
                    v.device.stale_serves,
                    v.device.stale_serves_detected,
                ))
                .collect::<Vec<_>>()
        );

        for v in &report.variants {
            if v.device.hardened {
                // Replayed units are coherent records — only the counter
                // comparison convicts them. A hardened design must still
                // never diverge from the shadow oracle silently.
                assert!(
                    v.report.matches_expectation,
                    "seed {:#x} {}: silent violation under the replay mix (first: {:?})",
                    cfg.seed,
                    v.report.label,
                    v.report.violations.first()
                );
                detected_crash += v.device.replays_detected + v.device.splices_detected;
            } else {
                baseline_violations += v.report.violations_total;
                if v.device.stale_serves > 0 {
                    assert_eq!(
                        v.device.stale_serves_detected, 0,
                        "seed {:#x} {}: an unhardened design detected a wire replay",
                        cfg.seed, v.report.label
                    );
                    baseline_blind_serves += v.device.stale_serves;
                }
            }
            replays += v.device.injected.stale_replays;
            splices += v.device.injected.cross_splices;
            serves += v.device.stale_serves;
        }
    }

    // Mix coverage: all three adversary moves must actually fire across
    // the sweep, or the detection claims above are vacuous.
    assert!(replays > 0, "no stale replay injected across {SEEDS} seeds");
    assert!(splices > 0, "no cross splice injected across {SEEDS} seeds");
    assert!(serves > 0, "no wire serve landed across {SEEDS} seeds");
    assert!(
        detected_crash > 0,
        "hardened designs never convicted a crash-side replay"
    );

    // Differential teeth: the same adversary must have actually hurt at
    // least one unhardened design, and served it stale data blind.
    assert!(
        baseline_violations > 0,
        "no unhardened design violated under the replay mix — the adversary is toothless"
    );
    assert!(
        baseline_blind_serves > 0,
        "no unhardened design blindly consumed a wire serve"
    );
}

#[test]
fn replay_mix_off_injects_no_replays() {
    let cfg = DeviceCampaignConfig {
        replay: false,
        ..replay_cfg(0xD15A_B1ED)
    };
    let report = device_campaign(&cfg);
    assert_eq!(
        report.total_replays_injected(),
        0,
        "replay-class faults fired with the adversary off"
    );
    for v in &report.variants {
        assert_eq!(v.device.stale_serves, 0, "{}", v.report.label);
        assert_eq!(v.device.replays_detected, 0, "{}", v.report.label);
        assert_eq!(v.device.splices_detected, 0, "{}", v.report.label);
    }
}

#[test]
fn replay_campaign_is_deterministic_under_fixed_seed() {
    let cfg = replay_cfg(0xBEE5);
    let a = device_campaign(&cfg);
    let b = device_campaign(&cfg);
    assert_eq!(a, b, "non-deterministic replay campaign");
    assert!(a.replay, "report must record that the adversary was armed");
    let json = serde_json::to_string(&a).unwrap();
    let back: psoram_faultsim::DeviceCampaignReport = serde_json::from_str(&json).unwrap();
    assert_eq!(back, a);
}

/// Regression: ring recovery once resolved seq *ties* by hash-map
/// iteration order. The replay adversary restores byte-exact stale
/// duplicates, so two candidate copies of a block can carry the same
/// seq — and under the old unordered scan the winner (hence violation
/// counts, repairs, costs) flipped between runs. Recovery now scans
/// buckets in sorted index order; two in-process runs of the exact
/// CLI smoke configuration must agree bit for bit.
#[test]
fn ring_recovery_resolves_seq_ties_deterministically() {
    use psoram_core::ring::RingVariant;
    use psoram_faultsim::{device_campaign_variant, DesignVariant};

    let cfg = DeviceCampaignConfig {
        replay: true,
        seed: 57024,
        ..DeviceCampaignConfig::smoke()
    };
    let variant = DesignVariant::Ring(RingVariant::Baseline);
    let a = device_campaign_variant(variant, &cfg);
    let b = device_campaign_variant(variant, &cfg);
    assert_eq!(
        serde_json::to_string(&a).unwrap(),
        serde_json::to_string(&b).unwrap(),
        "ring recovery outcome depended on iteration order"
    );
}
