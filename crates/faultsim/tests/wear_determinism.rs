//! Byte-identity of the endurance campaigns across worker counts.
//!
//! Same contract `par_determinism.rs` enforces for the crash campaigns:
//! the worker count is a pure throughput knob. Every endurance artifact
//! — the wear-torture report, the lifetime projection matrix, and the
//! wear-aware fleet report — must serialize byte-identically at
//! `jobs = 1` and any `jobs > 1`, because the CI smoke job diffs the
//! two and the bench commits the result as `BENCH_07.json`.

use psoram_faultsim::{
    lifetime_campaign, wear_campaign, wear_fleet_campaign, LifetimeCampaignConfig,
    WearCampaignConfig, WearFleetConfig,
};

#[test]
fn wear_campaign_identical_across_job_counts() {
    let mut cfg = WearCampaignConfig::smoke();
    cfg.jobs = 1;
    let serial = serde_json::to_string_pretty(&wear_campaign(&cfg)).unwrap();
    cfg.jobs = 2;
    let parallel = serde_json::to_string_pretty(&wear_campaign(&cfg)).unwrap();
    assert_eq!(serial, parallel, "wear campaign diverged at jobs=2");
}

#[test]
fn lifetime_projection_identical_across_job_counts() {
    let mut cfg = LifetimeCampaignConfig::smoke();
    cfg.jobs = 1;
    let serial = serde_json::to_string_pretty(&lifetime_campaign(&cfg)).unwrap();
    cfg.jobs = 2;
    let parallel = serde_json::to_string_pretty(&lifetime_campaign(&cfg)).unwrap();
    assert_eq!(serial, parallel, "lifetime projection diverged at jobs=2");
}

#[test]
fn wear_fleet_identical_across_job_counts() {
    let mut cfg = WearFleetConfig::smoke();
    cfg.fleet.jobs = 1;
    let serial = serde_json::to_string_pretty(&wear_fleet_campaign(&cfg)).unwrap();
    cfg.fleet.jobs = 2;
    let parallel = serde_json::to_string_pretty(&wear_fleet_campaign(&cfg)).unwrap();
    assert_eq!(serial, parallel, "wear fleet diverged at jobs=2");
}
