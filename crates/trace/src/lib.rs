//! # psoram-trace
//!
//! Synthetic SPEC-CPU2006-like workload generators for the PS-ORAM
//! evaluation, plus a serializable trace format.
//!
//! The paper drives its gem5+NVMain platform with simpoint samples of 14
//! SPEC 2006 workloads (5,000,000 samples each) whose L2 MPKIs are listed in
//! its Table 4. SPEC binaries and simpoint traces are proprietary, so this
//! crate substitutes **synthetic address streams** with per-workload access
//! mixes (streaming, strided, pointer-chasing, hot/cold) calibrated so the
//! LLC miss intensity through the real `psoram-cache` hierarchy lands near
//! the Table 4 MPKI. The paper's figures normalize each variant to a
//! baseline *on the same trace*, so preserving the miss intensity preserves
//! the figures' shape.
//!
//! # Examples
//!
//! ```
//! use psoram_trace::{SpecWorkload, TraceGenerator};
//!
//! let spec = SpecWorkload::Mcf.spec();
//! let mut generator = TraceGenerator::new(&spec, 42);
//! let rec = generator.next().unwrap();
//! assert!(rec.addr < spec.footprint_bytes());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod generator;
mod record;
mod spec;

pub use generator::{AccessPattern, TraceGenerator, WorkloadSpec};
pub use record::{Trace, TraceRecord};
pub use spec::SpecWorkload;
