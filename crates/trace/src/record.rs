//! Trace records and serializable traces.

use serde::{Deserialize, Serialize};

/// One memory access in a workload trace.
///
/// A trace interleaves compute and memory work: `instrs_before` non-memory
/// instructions retire (at 1 IPC on the in-order core), then the access at
/// `addr` issues.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceRecord {
    /// Non-memory instructions retired before this access.
    pub instrs_before: u64,
    /// Byte address of the access.
    pub addr: u64,
    /// `true` for a store, `false` for a load.
    pub is_write: bool,
}

/// A materialized, replayable trace.
///
/// # Examples
///
/// ```
/// use psoram_trace::{Trace, TraceRecord};
///
/// let t = Trace::from_records(
///     "demo",
///     vec![TraceRecord { instrs_before: 3, addr: 0x40, is_write: false }],
/// );
/// assert_eq!(t.instructions(), 4); // 3 compute + 1 memory instruction
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Trace {
    name: String,
    records: Vec<TraceRecord>,
}

impl Trace {
    /// Wraps a record vector as a named trace.
    pub fn from_records(name: impl Into<String>, records: Vec<TraceRecord>) -> Self {
        Trace {
            name: name.into(),
            records,
        }
    }

    /// Collects `n` records from a generator into a materialized trace.
    pub fn capture(
        name: impl Into<String>,
        gen: impl Iterator<Item = TraceRecord>,
        n: usize,
    ) -> Self {
        Trace {
            name: name.into(),
            records: gen.take(n).collect(),
        }
    }

    /// The workload name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The records in replay order.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Iterates over the records.
    pub fn iter(&self) -> std::slice::Iter<'_, TraceRecord> {
        self.records.iter()
    }

    /// Number of memory accesses.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` when the trace holds no accesses.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Total retired instructions the trace represents (each memory access
    /// counts as one instruction, matching how MPKI is computed).
    pub fn instructions(&self) -> u64 {
        self.records.iter().map(|r| r.instrs_before + 1).sum()
    }

    /// Saves the trace as JSON at `path`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem and serialization errors.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        let json = serde_json::to_string(self)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
        std::fs::write(path, json)
    }

    /// Loads a trace previously written by [`Trace::save`].
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors; malformed content maps to
    /// [`std::io::ErrorKind::InvalidData`].
    pub fn load(path: impl AsRef<std::path::Path>) -> std::io::Result<Trace> {
        let json = std::fs::read_to_string(path)?;
        serde_json::from_str(&json)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a TraceRecord;
    type IntoIter = std::slice::Iter<'a, TraceRecord>;

    fn into_iter(self) -> Self::IntoIter {
        self.records.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        Trace::from_records(
            "t",
            vec![
                TraceRecord {
                    instrs_before: 2,
                    addr: 0,
                    is_write: false,
                },
                TraceRecord {
                    instrs_before: 5,
                    addr: 64,
                    is_write: true,
                },
            ],
        )
    }

    #[test]
    fn instruction_count_includes_memory_ops() {
        assert_eq!(sample().instructions(), 2 + 1 + 5 + 1);
    }

    #[test]
    fn len_and_iteration() {
        let t = sample();
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        assert_eq!(t.iter().count(), 2);
        assert_eq!((&t).into_iter().count(), 2);
    }

    #[test]
    fn capture_takes_exactly_n() {
        let gen = std::iter::repeat(TraceRecord {
            instrs_before: 1,
            addr: 0,
            is_write: false,
        });
        let t = Trace::capture("x", gen, 10);
        assert_eq!(t.len(), 10);
        assert_eq!(t.name(), "x");
    }

    #[test]
    fn serde_roundtrip() {
        let t = sample();
        let json = serde_json::to_string(&t).unwrap();
        let back: Trace = serde_json::from_str(&json).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn file_roundtrip() {
        let t = sample();
        let path = std::env::temp_dir().join("psoram_trace_roundtrip_test.json");
        t.save(&path).unwrap();
        let back = Trace::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(t, back);
    }

    #[test]
    fn load_rejects_garbage() {
        let path = std::env::temp_dir().join("psoram_trace_garbage_test.json");
        std::fs::write(&path, "not json at all").unwrap();
        let err = Trace::load(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }
}
