//! Synthetic workload generation.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::record::TraceRecord;

/// Spatial pattern used for the *cold* (LLC-missing) part of a workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AccessPattern {
    /// Sequential lines (lbm-, libquantum-style streaming).
    Stream,
    /// Fixed stride in lines (scientific array codes).
    Stride(u64),
    /// Uniformly random lines over the cold footprint (mcf-, omnetpp-style
    /// pointer chasing).
    Chase,
}

/// A parameterized synthetic workload.
///
/// The generator emits a mixture of *hot* accesses (a small working set that
/// fits in L1 and hits after warmup) and *cold* accesses (spread over a
/// footprint far larger than the L2, which reliably miss). Choosing the
/// miss probability `p_miss = mpki / (1000 * mem_ratio)` makes the LLC MPKI
/// land on the target once caches are warm.
///
/// # Examples
///
/// ```
/// use psoram_trace::{WorkloadSpec, AccessPattern, TraceGenerator};
///
/// let spec = WorkloadSpec::new("demo", 20.0, 0.3, 0.3, AccessPattern::Chase);
/// let mut gen = TraceGenerator::new(&spec, 7);
/// assert!(gen.next().is_some());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Workload name (e.g. `429.mcf`).
    pub name: String,
    /// Target LLC misses per kilo-instruction (paper Table 4).
    pub mpki: f64,
    /// Memory accesses per retired instruction.
    pub mem_ratio: f64,
    /// Fraction of accesses that are stores.
    pub write_frac: f64,
    /// Spatial pattern of the cold accesses.
    pub pattern: AccessPattern,
    /// Hot working-set size in cache lines (defaults fit in L1).
    pub hot_lines: u64,
    /// Cold footprint in cache lines (defaults far exceed the L2).
    pub cold_lines: u64,
    /// Base byte address of the workload's footprint.
    pub base_addr: u64,
}

impl WorkloadSpec {
    /// Creates a spec with the default footprint sizes (128 hot lines,
    /// 1 Mi cold lines = 64 MB).
    ///
    /// # Panics
    ///
    /// Panics if `mem_ratio` is not in `(0, 1]`, if `write_frac` is outside
    /// `[0, 1]`, or if the implied miss probability exceeds 1.
    pub fn new(
        name: impl Into<String>,
        mpki: f64,
        mem_ratio: f64,
        write_frac: f64,
        pattern: AccessPattern,
    ) -> Self {
        let spec = WorkloadSpec {
            name: name.into(),
            mpki,
            mem_ratio,
            write_frac,
            pattern,
            hot_lines: 128,
            cold_lines: 1 << 20,
            base_addr: 0,
        };
        spec.validate();
        spec
    }

    fn validate(&self) {
        assert!(
            self.mem_ratio > 0.0 && self.mem_ratio <= 1.0,
            "mem_ratio must be in (0,1]"
        );
        assert!(
            (0.0..=1.0).contains(&self.write_frac),
            "write_frac must be in [0,1]"
        );
        let p = self.miss_probability();
        assert!(
            (0.0..=1.0).contains(&p),
            "target MPKI {} unreachable at mem_ratio {}",
            self.mpki,
            self.mem_ratio
        );
        assert!(
            self.hot_lines > 0 && self.cold_lines > 0,
            "footprints must be non-empty"
        );
    }

    /// Probability that an access goes to the cold (missing) region.
    pub fn miss_probability(&self) -> f64 {
        self.mpki / (1000.0 * self.mem_ratio)
    }

    /// Total footprint in bytes (hot + cold regions).
    pub fn footprint_bytes(&self) -> u64 {
        (self.hot_lines + self.cold_lines) * LINE_BYTES
    }
}

const LINE_BYTES: u64 = 64;

/// Deterministic, infinite trace generator for a [`WorkloadSpec`].
///
/// Two generators with the same spec and seed produce identical streams,
/// which is what lets every protocol variant replay the *same* workload.
#[derive(Debug, Clone)]
pub struct TraceGenerator {
    spec: WorkloadSpec,
    rng: StdRng,
    /// Fractional accumulator distributing compute instructions exactly.
    instr_accum: f64,
    /// Next cold line for `Stream`/`Stride` patterns.
    cold_cursor: u64,
}

impl TraceGenerator {
    /// Creates a generator for `spec` seeded with `seed`.
    pub fn new(spec: &WorkloadSpec, seed: u64) -> Self {
        spec.validate();
        TraceGenerator {
            spec: spec.clone(),
            rng: StdRng::seed_from_u64(seed),
            instr_accum: 0.0,
            cold_cursor: 0,
        }
    }

    /// The spec this generator was built from.
    pub fn spec(&self) -> &WorkloadSpec {
        &self.spec
    }

    fn next_cold_line(&mut self) -> u64 {
        let lines = self.spec.cold_lines;
        match self.spec.pattern {
            AccessPattern::Stream => {
                let l = self.cold_cursor;
                self.cold_cursor = (self.cold_cursor + 1) % lines;
                l
            }
            AccessPattern::Stride(s) => {
                let l = self.cold_cursor;
                // A stride co-prime with the footprint visits every line.
                self.cold_cursor = (self.cold_cursor + s) % lines;
                l
            }
            AccessPattern::Chase => self.rng.gen_range(0..lines),
        }
    }
}

impl Iterator for TraceGenerator {
    type Item = TraceRecord;

    fn next(&mut self) -> Option<TraceRecord> {
        // Spread compute instructions so that accesses/instruction equals
        // mem_ratio exactly in the long run.
        let per_access = 1.0 / self.spec.mem_ratio - 1.0;
        self.instr_accum += per_access;
        let instrs_before = self.instr_accum as u64;
        self.instr_accum -= instrs_before as f64;

        let cold = self
            .rng
            .gen_bool(self.spec.miss_probability().clamp(0.0, 1.0));
        let line = if cold {
            // Cold region sits above the hot region.
            self.spec.hot_lines + self.next_cold_line()
        } else {
            self.rng.gen_range(0..self.spec.hot_lines)
        };
        let addr = self.spec.base_addr + line * LINE_BYTES;
        let is_write = self.rng.gen_bool(self.spec.write_frac);
        Some(TraceRecord {
            instrs_before,
            addr,
            is_write,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> WorkloadSpec {
        WorkloadSpec::new("t", 30.0, 0.3, 0.25, AccessPattern::Chase)
    }

    #[test]
    fn deterministic_across_same_seed() {
        let a: Vec<_> = TraceGenerator::new(&spec(), 9).take(100).collect();
        let b: Vec<_> = TraceGenerator::new(&spec(), 9).take(100).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a: Vec<_> = TraceGenerator::new(&spec(), 1).take(100).collect();
        let b: Vec<_> = TraceGenerator::new(&spec(), 2).take(100).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn mem_ratio_respected_in_the_long_run() {
        let n = 50_000usize;
        let total_instrs: u64 = TraceGenerator::new(&spec(), 3)
            .take(n)
            .map(|r| r.instrs_before + 1)
            .sum();
        let ratio = n as f64 / total_instrs as f64;
        assert!((ratio - 0.3).abs() < 0.01, "got access ratio {ratio}");
    }

    #[test]
    fn miss_probability_formula() {
        let s = spec();
        assert!((s.miss_probability() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn write_fraction_approximated() {
        let n = 50_000usize;
        let writes = TraceGenerator::new(&spec(), 5)
            .take(n)
            .filter(|r| r.is_write)
            .count();
        let frac = writes as f64 / n as f64;
        assert!((frac - 0.25).abs() < 0.02, "got write fraction {frac}");
    }

    #[test]
    fn stream_pattern_emits_sequential_cold_lines() {
        let mut s = spec();
        s.pattern = AccessPattern::Stream;
        s.mpki = 300.0; // make everything cold: p_miss = 1.0
        s.mem_ratio = 0.3;
        let addrs: Vec<u64> = TraceGenerator::new(&s, 1)
            .take(10)
            .map(|r| r.addr)
            .collect();
        for w in addrs.windows(2) {
            assert_eq!(w[1] - w[0], 64, "stream must be sequential: {addrs:?}");
        }
    }

    #[test]
    fn addresses_stay_within_footprint() {
        let s = spec();
        for r in TraceGenerator::new(&s, 11).take(10_000) {
            assert!(r.addr < s.footprint_bytes());
        }
    }

    #[test]
    #[should_panic(expected = "unreachable")]
    fn unreachable_mpki_rejected() {
        let _ = WorkloadSpec::new("bad", 500.0, 0.3, 0.0, AccessPattern::Chase);
    }

    #[test]
    #[should_panic(expected = "mem_ratio")]
    fn zero_mem_ratio_rejected() {
        let _ = WorkloadSpec::new("bad", 1.0, 0.0, 0.0, AccessPattern::Chase);
    }
}
