//! The 14 SPEC CPU2006 workloads of the paper's Table 4.

use serde::{Deserialize, Serialize};

use crate::generator::{AccessPattern, WorkloadSpec};

/// The 14 SPEC CPU2006 workloads used in the paper's evaluation (Table 4).
///
/// Each variant maps to a [`WorkloadSpec`] whose target MPKI equals the
/// paper's measured value and whose access pattern is chosen to match the
/// benchmark's well-known character (streaming for lbm/libquantum,
/// pointer-chasing for mcf/omnetpp/xalancbmk, mixed otherwise).
///
/// # Examples
///
/// ```
/// use psoram_trace::SpecWorkload;
///
/// assert_eq!(SpecWorkload::all().len(), 14);
/// let mcf = SpecWorkload::Mcf.spec();
/// assert!((mcf.mpki - 4.66).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum SpecWorkload {
    Bzip2,
    Gcc,
    Mcf,
    Gobmk,
    Hmmer,
    Sjeng,
    Libquantum,
    H264ref,
    Omnetpp,
    Xalancbmk,
    Namd,
    Povray,
    Lbm,
    Sphinx3,
}

impl SpecWorkload {
    /// All 14 workloads, in the paper's Table 4 order.
    pub fn all() -> [SpecWorkload; 14] {
        use SpecWorkload::*;
        [
            Bzip2, Gcc, Mcf, Gobmk, Hmmer, Sjeng, Libquantum, H264ref, Omnetpp, Xalancbmk, Namd,
            Povray, Lbm, Sphinx3,
        ]
    }

    /// The SPEC benchmark name, including its suite number.
    pub fn name(self) -> &'static str {
        match self {
            SpecWorkload::Bzip2 => "401.bzip2",
            SpecWorkload::Gcc => "403.gcc",
            SpecWorkload::Mcf => "429.mcf",
            SpecWorkload::Gobmk => "445.gobmk",
            SpecWorkload::Hmmer => "456.hmmer",
            SpecWorkload::Sjeng => "458.sjeng",
            SpecWorkload::Libquantum => "462.libquantum",
            SpecWorkload::H264ref => "464.h264ref",
            SpecWorkload::Omnetpp => "471.omnetpp",
            SpecWorkload::Xalancbmk => "483.xalancbmk",
            SpecWorkload::Namd => "444.namd",
            SpecWorkload::Povray => "453.povray",
            SpecWorkload::Lbm => "470.lbm",
            SpecWorkload::Sphinx3 => "482.sphinx3",
        }
    }

    /// The paper's Table 4 MPKI for this workload.
    pub fn paper_mpki(self) -> f64 {
        match self {
            SpecWorkload::Bzip2 => 61.16,
            SpecWorkload::Gcc => 1.19,
            SpecWorkload::Mcf => 4.66,
            SpecWorkload::Gobmk => 29.60,
            SpecWorkload::Hmmer => 4.53,
            SpecWorkload::Sjeng => 110.99,
            SpecWorkload::Libquantum => 18.27,
            SpecWorkload::H264ref => 19.74,
            SpecWorkload::Omnetpp => 7.84,
            SpecWorkload::Xalancbmk => 8.99,
            SpecWorkload::Namd => 8.08,
            SpecWorkload::Povray => 6.12,
            SpecWorkload::Lbm => 18.38,
            SpecWorkload::Sphinx3 => 17.51,
        }
    }

    /// Spatial pattern matching the benchmark's published character.
    fn pattern(self) -> AccessPattern {
        match self {
            SpecWorkload::Lbm | SpecWorkload::Libquantum => AccessPattern::Stream,
            SpecWorkload::Hmmer | SpecWorkload::Namd | SpecWorkload::H264ref => {
                AccessPattern::Stride(3)
            }
            _ => AccessPattern::Chase,
        }
    }

    /// Store fraction, loosely following the benchmarks' published mixes.
    fn write_frac(self) -> f64 {
        match self {
            SpecWorkload::Bzip2 | SpecWorkload::Lbm => 0.4,
            SpecWorkload::Gcc | SpecWorkload::Povray => 0.35,
            SpecWorkload::Libquantum => 0.2,
            _ => 0.3,
        }
    }

    /// Memory accesses per instruction: memory-bound benchmarks issue more
    /// accesses per unit of compute than the compute-leaning ones. This is
    /// what differentiates how ORAM-overhead-sensitive each workload is
    /// (the per-workload spread of Figure 5).
    fn mem_ratio(self) -> f64 {
        match self {
            SpecWorkload::Sjeng => 0.45,
            SpecWorkload::Bzip2 | SpecWorkload::Lbm | SpecWorkload::Libquantum => 0.40,
            SpecWorkload::Mcf | SpecWorkload::Gobmk | SpecWorkload::Sphinx3 => 0.35,
            SpecWorkload::Omnetpp | SpecWorkload::Xalancbmk => 0.30,
            SpecWorkload::H264ref => 0.25,
            SpecWorkload::Hmmer | SpecWorkload::Namd => 0.20,
            SpecWorkload::Povray => 0.18,
            SpecWorkload::Gcc => 0.15,
        }
    }

    /// The calibrated [`WorkloadSpec`] for this workload.
    pub fn spec(self) -> WorkloadSpec {
        WorkloadSpec::new(
            self.name(),
            self.paper_mpki(),
            self.mem_ratio(),
            self.write_frac(),
            self.pattern(),
        )
    }
}

impl std::fmt::Display for SpecWorkload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_has_14_distinct_workloads() {
        let all = SpecWorkload::all();
        assert_eq!(all.len(), 14);
        let mut names: Vec<_> = all.iter().map(|w| w.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 14);
    }

    #[test]
    fn table4_mpkis_match_paper() {
        assert!((SpecWorkload::Bzip2.paper_mpki() - 61.16).abs() < 1e-12);
        assert!((SpecWorkload::Sjeng.paper_mpki() - 110.99).abs() < 1e-12);
        assert!((SpecWorkload::Gcc.paper_mpki() - 1.19).abs() < 1e-12);
        assert!((SpecWorkload::Sphinx3.paper_mpki() - 17.51).abs() < 1e-12);
    }

    #[test]
    fn specs_are_constructible_for_all_workloads() {
        for w in SpecWorkload::all() {
            let s = w.spec();
            assert!(s.miss_probability() <= 1.0, "{w} miss probability too high");
            assert_eq!(s.mpki, w.paper_mpki());
        }
    }

    #[test]
    fn streaming_workloads_use_stream_pattern() {
        assert_eq!(SpecWorkload::Lbm.spec().pattern, AccessPattern::Stream);
        assert_eq!(
            SpecWorkload::Libquantum.spec().pattern,
            AccessPattern::Stream
        );
        assert_eq!(SpecWorkload::Mcf.spec().pattern, AccessPattern::Chase);
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(SpecWorkload::Mcf.to_string(), "429.mcf");
    }
}
