//! Property-based tests for the workload generators.

use proptest::prelude::*;

use psoram_trace::{AccessPattern, SpecWorkload, Trace, TraceGenerator, WorkloadSpec};

fn arbitrary_spec() -> impl Strategy<Value = WorkloadSpec> {
    (1.0f64..80.0, 0.15f64..0.5, 0.0f64..1.0, 0usize..3).prop_filter_map(
        "miss probability must be feasible",
        |(mpki, mem_ratio, write_frac, pat)| {
            if mpki / (1000.0 * mem_ratio) > 1.0 {
                return None;
            }
            let pattern = match pat {
                0 => AccessPattern::Stream,
                1 => AccessPattern::Stride(3),
                _ => AccessPattern::Chase,
            };
            Some(WorkloadSpec::new(
                "prop", mpki, mem_ratio, write_frac, pattern,
            ))
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Same spec + seed => identical streams; different seeds diverge.
    #[test]
    fn determinism(spec in arbitrary_spec(), seed in any::<u64>()) {
        let a: Vec<_> = TraceGenerator::new(&spec, seed).take(50).collect();
        let b: Vec<_> = TraceGenerator::new(&spec, seed).take(50).collect();
        prop_assert_eq!(a, b);
    }

    /// All generated addresses stay inside the declared footprint.
    #[test]
    fn addresses_in_footprint(spec in arbitrary_spec(), seed in any::<u64>()) {
        for rec in TraceGenerator::new(&spec, seed).take(500) {
            prop_assert!(rec.addr < spec.footprint_bytes());
        }
    }

    /// The long-run access/instruction ratio converges to mem_ratio.
    #[test]
    fn mem_ratio_converges(spec in arbitrary_spec(), seed in any::<u64>()) {
        let n = 20_000usize;
        let instrs: u64 = TraceGenerator::new(&spec, seed)
            .take(n)
            .map(|r| r.instrs_before + 1)
            .sum();
        let ratio = n as f64 / instrs as f64;
        prop_assert!(
            (ratio - spec.mem_ratio).abs() / spec.mem_ratio < 0.05,
            "ratio {ratio} vs target {}",
            spec.mem_ratio
        );
    }

    /// The write fraction converges too.
    #[test]
    fn write_fraction_converges(spec in arbitrary_spec(), seed in any::<u64>()) {
        let n = 20_000usize;
        let writes = TraceGenerator::new(&spec, seed).take(n).filter(|r| r.is_write).count();
        let frac = writes as f64 / n as f64;
        prop_assert!((frac - spec.write_frac).abs() < 0.02);
    }

    /// Captured traces round-trip through serde.
    #[test]
    fn trace_serde_roundtrip(seed in any::<u64>()) {
        let spec = SpecWorkload::Mcf.spec();
        let t = Trace::capture("rt", TraceGenerator::new(&spec, seed), 64);
        let json = serde_json::to_string(&t).unwrap();
        let back: Trace = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(t, back);
    }
}

/// The cold-region fraction of accesses matches the configured miss
/// probability (deterministic statistical check, not a proptest).
#[test]
fn cold_fraction_matches_miss_probability() {
    for w in SpecWorkload::all() {
        let spec = w.spec();
        let n = 40_000usize;
        let hot_limit = spec.hot_lines * 64;
        let cold = TraceGenerator::new(&spec, 9)
            .take(n)
            .filter(|r| r.addr >= hot_limit)
            .count();
        let frac = cold as f64 / n as f64;
        let target = spec.miss_probability();
        assert!(
            (frac - target).abs() < 0.01 + target * 0.1,
            "{w}: cold fraction {frac:.4} vs target {target:.4}"
        );
    }
}
