//! # psoram-energy
//!
//! Analytic drain energy/time model comparing eADR-based persistence with
//! PS-ORAM's WPQ-only persistence domain — the model behind the paper's
//! Tables 1 and 2 (§4.2.4), following the BBB (HPCA'21) cost constants.
//!
//! On a power failure, a design must drain every byte of its persistence
//! domain to the NVM using residual energy:
//!
//! * **eADR-ORAM** extends the persistence domain over the whole cache
//!   hierarchy *and* the ORAM controller buffers (stash + on-chip PosMap) —
//!   193.07 MB at the paper's configuration.
//! * **eADR-cache** covers the caches and stash only (no ORAM-protocol
//!   persistence), which is cheaper but insufficient for consistency.
//! * **PS-ORAM** drains only the two WPQs (96- or 4-entry).
//!
//! # Examples
//!
//! ```
//! use psoram_energy::DrainCostModel;
//!
//! let model = DrainCostModel::paper_config(96);
//! let eadr = model.eadr_oram();
//! let ps = model.ps_oram();
//! assert!(eadr.energy_joules / ps.energy_joules > 10_000.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use serde::{Deserialize, Serialize};

/// Energy/time cost constants (the paper's Table 1, after BBB).
pub mod constants {
    /// Accessing data in SRAM cells: ~1 pJ/Byte.
    pub const SRAM_ACCESS_PJ_PER_BYTE: f64 = 1.0;
    /// Moving data from L1D to NVM: 11.839 nJ/Byte.
    pub const L1_TO_NVM_NJ_PER_BYTE: f64 = 11.839;
    /// Moving data from L2, stash, PosMap or WPQs to NVM: 11.228 nJ/Byte.
    pub const L2_TO_NVM_NJ_PER_BYTE: f64 = 11.228;
    /// Effective drain bandwidth implied by the paper's Table 2 numbers
    /// (~42.3 GB/s: 6816 B in 161.134 ns).
    pub const DRAIN_BYTES_PER_SECOND: f64 = 42.3e9;
}

/// Energy and time to drain one persistence domain.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DrainCost {
    /// Bytes drained.
    pub bytes: f64,
    /// Energy in joules.
    pub energy_joules: f64,
    /// Time in seconds.
    pub time_seconds: f64,
}

impl DrainCost {
    fn from_bytes(l1_bytes: f64, rest_bytes: f64) -> Self {
        let energy = l1_bytes * constants::L1_TO_NVM_NJ_PER_BYTE * 1e-9
            + rest_bytes * constants::L2_TO_NVM_NJ_PER_BYTE * 1e-9;
        let bytes = l1_bytes + rest_bytes;
        DrainCost {
            bytes,
            energy_joules: energy,
            time_seconds: bytes / constants::DRAIN_BYTES_PER_SECOND,
        }
    }

    /// Energy in microjoules.
    pub fn energy_uj(&self) -> f64 {
        self.energy_joules * 1e6
    }

    /// Time in nanoseconds.
    pub fn time_ns(&self) -> f64 {
        self.time_seconds * 1e9
    }
}

/// Sizes of the on-chip structures whose contents would need draining.
///
/// The paper's §4.2.4 configuration: 64 KB of L1 (I+D), 1 MB L2, a
/// 200-entry/64 B stash (12.5 KB), a 192 MB on-chip PosMap, and WPQs of 96
/// (or 4) entries — 64 B per data entry and 7 B per PosMap entry.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DrainCostModel {
    /// L1 cache bytes (drained at the L1 rate).
    pub l1_bytes: f64,
    /// L2 cache bytes.
    pub l2_bytes: f64,
    /// Stash bytes.
    pub stash_bytes: f64,
    /// On-chip PosMap bytes.
    pub posmap_bytes: f64,
    /// Data-block WPQ bytes.
    pub wpq_data_bytes: f64,
    /// PosMap WPQ bytes.
    pub wpq_posmap_bytes: f64,
}

impl DrainCostModel {
    /// The paper's configuration with `wpq_entries` per WPQ (96 or 4).
    pub fn paper_config(wpq_entries: usize) -> Self {
        DrainCostModel {
            l1_bytes: 64.0 * 1024.0,
            l2_bytes: 1024.0 * 1024.0,
            stash_bytes: 200.0 * 64.0,
            posmap_bytes: 192.0 * 1024.0 * 1024.0,
            wpq_data_bytes: wpq_entries as f64 * 64.0,
            wpq_posmap_bytes: wpq_entries as f64 * 7.0,
        }
    }

    /// eADR-ORAM: drain the caches, the stash, and the on-chip PosMap.
    pub fn eadr_oram(&self) -> DrainCost {
        DrainCost::from_bytes(
            self.l1_bytes,
            self.l2_bytes + self.stash_bytes + self.posmap_bytes,
        )
    }

    /// eADR-cache: drain the caches and the stash only (no ORAM-protocol
    /// persistence — insufficient for consistency, shown for scale).
    pub fn eadr_cache(&self) -> DrainCost {
        DrainCost::from_bytes(self.l1_bytes, self.l2_bytes + self.stash_bytes)
    }

    /// PS-ORAM: drain only the two write pending queues.
    pub fn ps_oram(&self) -> DrainCost {
        DrainCost::from_bytes(0.0, self.wpq_data_bytes + self.wpq_posmap_bytes)
    }

    /// Ratio of eADR-ORAM to PS-ORAM drain energy.
    pub fn energy_ratio_eadr_oram(&self) -> f64 {
        self.eadr_oram().energy_joules / self.ps_oram().energy_joules
    }

    /// Ratio of eADR-cache to PS-ORAM drain energy.
    pub fn energy_ratio_eadr_cache(&self) -> f64 {
        self.eadr_cache().energy_joules / self.ps_oram().energy_joules
    }

    /// Ratio of eADR-ORAM to PS-ORAM drain time.
    pub fn time_ratio_eadr_oram(&self) -> f64 {
        self.eadr_oram().time_seconds / self.ps_oram().time_seconds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ps_oram_96_entry_matches_paper() {
        // Paper: 76.530 uJ and 161.134 ns for 96-entry WPQs (6816 B).
        let m = DrainCostModel::paper_config(96);
        let c = m.ps_oram();
        assert!((c.bytes - 6816.0).abs() < 1e-9);
        assert!(
            (c.energy_uj() - 76.530).abs() < 0.05,
            "got {} uJ",
            c.energy_uj()
        );
        assert!(
            (c.time_ns() - 161.134).abs() < 1.0,
            "got {} ns",
            c.time_ns()
        );
    }

    #[test]
    fn eadr_oram_matches_paper_within_one_percent() {
        // Paper: 2.286 J and 4.817 ms.
        let m = DrainCostModel::paper_config(96);
        let c = m.eadr_oram();
        assert!(
            (c.energy_joules - 2.286).abs() / 2.286 < 0.01,
            "got {} J",
            c.energy_joules
        );
        assert!(
            (c.time_seconds - 4.817e-3).abs() / 4.817e-3 < 0.01,
            "got {} s",
            c.time_seconds
        );
    }

    #[test]
    fn eadr_cache_matches_paper_within_one_percent() {
        // Paper: 12.653 mJ and 26.638 us.
        let m = DrainCostModel::paper_config(96);
        let c = m.eadr_cache();
        assert!(
            (c.energy_joules - 12.653e-3).abs() / 12.653e-3 < 0.01,
            "got {} J",
            c.energy_joules
        );
        assert!(
            (c.time_seconds - 26.638e-6).abs() / 26.638e-6 < 0.02,
            "got {} s",
            c.time_seconds
        );
    }

    #[test]
    fn ratios_have_paper_magnitudes() {
        let m = DrainCostModel::paper_config(96);
        // Paper: eADR-ORAM ~29870x PS-ORAM; eADR-cache ~165x.
        let r_oram = m.energy_ratio_eadr_oram();
        let r_cache = m.energy_ratio_eadr_cache();
        assert!((r_oram - 29870.0).abs() / 29870.0 < 0.02, "got {r_oram}");
        assert!((r_cache - 165.0).abs() / 165.0 < 0.05, "got {r_cache}");
    }

    #[test]
    fn four_entry_wpq_still_micro_joules() {
        let m = DrainCostModel::paper_config(4);
        let c = m.ps_oram();
        // Paper reports 2.83 uJ (we compute 3.19 uJ with 64+7 B entries —
        // the delta is the paper's entry-size rounding; same magnitude).
        assert!(
            c.energy_uj() < 4.0 && c.energy_uj() > 2.0,
            "got {} uJ",
            c.energy_uj()
        );
        assert!(c.time_ns() < 10.0, "got {} ns", c.time_ns());
    }

    #[test]
    fn energy_orders_eadr_oram_over_cache_over_ps() {
        let m = DrainCostModel::paper_config(96);
        assert!(m.eadr_oram().energy_joules > m.eadr_cache().energy_joules);
        assert!(m.eadr_cache().energy_joules > m.ps_oram().energy_joules);
    }
}
