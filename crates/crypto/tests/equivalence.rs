//! Equivalence of the T-table AES fast path against the byte-wise reference
//! cipher, over random keys and blocks, plus the CTR layer built on top.
//!
//! The known-answer vectors (FIPS-197, NIST SP 800-38A) live next to the
//! implementations; this suite covers the space *between* the published
//! vectors so a table-generation or byte-ordering bug cannot hide on inputs
//! the vectors happen not to exercise.

use proptest::prelude::*;
use psoram_crypto::{Aes128, CtrCipher, ReferenceAes128};

fn bytes16(halves: (u64, u64)) -> [u8; 16] {
    let mut out = [0u8; 16];
    out[..8].copy_from_slice(&halves.0.to_be_bytes());
    out[8..].copy_from_slice(&halves.1.to_be_bytes());
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The fast path and the reference cipher agree on every (key, block).
    #[test]
    fn ttable_matches_reference(
        k in (any::<u64>(), any::<u64>()),
        b in (any::<u64>(), any::<u64>()),
    ) {
        let key = bytes16(k);
        let block = bytes16(b);
        prop_assert_eq!(
            Aes128::new(&key).encrypt_block(&block),
            ReferenceAes128::new(&key).encrypt_block(&block)
        );
    }

    /// The inverse cipher undoes the T-table forward cipher (both consume
    /// the same expanded schedule).
    #[test]
    fn decrypt_inverts_ttable_encrypt(
        k in (any::<u64>(), any::<u64>()),
        b in (any::<u64>(), any::<u64>()),
    ) {
        let aes = Aes128::new(&bytes16(k));
        let pt = bytes16(b);
        prop_assert_eq!(aes.decrypt_block(&aes.encrypt_block(&pt)), pt);
    }

    /// CTR keystream over the fast path equals block-at-a-time CTR over the
    /// reference cipher, including tail blocks and counter wrap-around.
    #[test]
    fn ctr_keystream_matches_reference_ctr(
        k in (any::<u64>(), any::<u64>()),
        iv_halves in (any::<u64>(), any::<u64>()),
        len in 0usize..200,
    ) {
        let key = bytes16(k);
        let iv = u128::from_be_bytes(bytes16(iv_halves));

        let mut fast = vec![0u8; len];
        CtrCipher::new(Aes128::new(&key)).keystream_into(iv, &mut fast);

        let reference = ReferenceAes128::new(&key);
        let mut slow = vec![0u8; len];
        for (i, chunk) in slow.chunks_mut(16).enumerate() {
            let counter = iv.wrapping_add(i as u128).to_be_bytes();
            let pad = reference.encrypt_block(&counter);
            chunk.copy_from_slice(&pad[..chunk.len()]);
        }

        prop_assert_eq!(fast, slow);
    }

    /// apply_keystream is an involution for any (key, iv, data).
    #[test]
    fn ctr_roundtrip(
        k in (any::<u64>(), any::<u64>()),
        iv_lo in any::<u64>(),
        data in prop::collection::vec(any::<u8>(), 0..128),
    ) {
        let cipher = CtrCipher::new(Aes128::new(&bytes16(k)));
        let mut buf = data.clone();
        cipher.apply_keystream(u128::from(iv_lo), &mut buf);
        cipher.apply_keystream(u128::from(iv_lo), &mut buf);
        prop_assert_eq!(buf, data);
    }
}
