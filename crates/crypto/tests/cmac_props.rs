//! Property tests: the production CMAC against a from-scratch scalar
//! oracle, plus the detector guarantee the integrity layer leans on —
//! any single-bit flip in a tagged message (or its tag) must fail
//! verification.

use proptest::prelude::*;

use psoram_crypto::{Aes128, Cmac, ReferenceAes128};

/// Keys over the whole 128-bit domain (the vendored proptest has no
/// byte-array `Arbitrary`, so assemble one from two `u64` draws).
fn key_strategy() -> impl Strategy<Value = [u8; 16]> {
    (any::<u64>(), any::<u64>()).prop_map(|(a, b)| {
        let mut k = [0u8; 16];
        k[..8].copy_from_slice(&a.to_le_bytes());
        k[8..].copy_from_slice(&b.to_le_bytes());
        k
    })
}

/// RFC 4493 CMAC computed the slow, obvious way on the table-free
/// reference AES — an oracle sharing no code with the production
/// [`Cmac`] beyond the cipher's test vectors.
fn oracle_cmac(key: &[u8; 16], msg: &[u8]) -> [u8; 16] {
    fn dbl(x: [u8; 16]) -> [u8; 16] {
        let n = u128::from_be_bytes(x);
        let mut d = n << 1;
        if n >> 127 == 1 {
            d ^= 0x87;
        }
        d.to_be_bytes()
    }
    let aes = ReferenceAes128::new(key);
    let k1 = dbl(aes.encrypt_block(&[0u8; 16]));
    let k2 = dbl(k1);

    let complete = !msg.is_empty() && msg.len().is_multiple_of(16);
    let mut m = msg.to_vec();
    if !complete {
        m.push(0x80);
        while !m.len().is_multiple_of(16) {
            m.push(0);
        }
    }
    let last_key = if complete { k1 } else { k2 };
    let blocks = m.len() / 16;
    let mut x = [0u8; 16];
    for i in 0..blocks {
        let mut blk = [0u8; 16];
        blk.copy_from_slice(&m[i * 16..(i + 1) * 16]);
        if i == blocks - 1 {
            for (b, k) in blk.iter_mut().zip(&last_key) {
                *b ^= k;
            }
        }
        for (a, b) in x.iter_mut().zip(&blk) {
            *a ^= b;
        }
        x = aes.encrypt_block(&x);
    }
    x
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The production CMAC agrees with the scalar oracle on every key and
    /// message length (covering the empty, partial-block, and
    /// complete-block padding paths).
    #[test]
    fn cmac_matches_scalar_oracle(
        key in key_strategy(),
        msg in prop::collection::vec(any::<u8>(), 0..80),
    ) {
        let mac = Cmac::new(Aes128::new(&key));
        prop_assert_eq!(mac.tag(&msg), oracle_cmac(&key, &msg));
    }

    /// A tag always verifies against the message it was computed over.
    #[test]
    fn tag_verifies_round_trip(
        key in key_strategy(),
        msg in prop::collection::vec(any::<u8>(), 0..64),
    ) {
        let mac = Cmac::new(Aes128::new(&key));
        let tag = mac.tag(&msg);
        prop_assert!(mac.verify(&msg, &tag));
    }

    /// The detector property the device-fault recovery relies on: any
    /// single-bit flip in the authenticated message is caught.
    #[test]
    fn single_bit_flip_in_message_is_detected(
        key in key_strategy(),
        msg in prop::collection::vec(any::<u8>(), 1..64),
        bit in any::<u32>(),
    ) {
        let mac = Cmac::new(Aes128::new(&key));
        let tag = mac.tag(&msg);
        let mut corrupted = msg.clone();
        let pos = (bit as usize) % (msg.len() * 8);
        corrupted[pos / 8] ^= 1 << (pos % 8);
        prop_assert!(
            !mac.verify(&corrupted, &tag),
            "bit {pos} flip went undetected"
        );
    }

    /// And the dual: any single-bit flip in the tag itself is caught.
    #[test]
    fn single_bit_flip_in_tag_is_detected(
        key in key_strategy(),
        msg in prop::collection::vec(any::<u8>(), 0..64),
        bit in 0u32..128,
    ) {
        let mac = Cmac::new(Aes128::new(&key));
        let mut tag = mac.tag(&msg);
        tag[(bit / 8) as usize] ^= 1 << (bit % 8);
        prop_assert!(!mac.verify(&msg, &tag));
    }
}
