//! Cycle-cost model for the ORAM controller's encryption circuit.

/// Latency model for AES operations inside the ORAM controller.
///
/// The paper assumes an overall AES-128 latency of **32 processor cycles**
/// (Table 3, following Fletcher et al. and Zhang et al.) and overlaps
/// encryption-pad generation with the data fetch (Osiris-style), so that on
/// the read path only the final XOR is serialized after the data arrives.
///
/// # Examples
///
/// ```
/// use psoram_crypto::CryptoLatencyModel;
///
/// let model = CryptoLatencyModel::paper_default();
/// // Pad overlapped with fetch: only the XOR (1 cycle) is exposed.
/// assert_eq!(model.decrypt_overlapped_cycles(), 1);
/// assert_eq!(model.encrypt_cycles(), 32);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CryptoLatencyModel {
    aes_cycles: u64,
    overlap_pad_generation: bool,
}

impl CryptoLatencyModel {
    /// Creates a latency model with an explicit AES pipeline depth.
    pub fn new(aes_cycles: u64, overlap_pad_generation: bool) -> Self {
        CryptoLatencyModel {
            aes_cycles,
            overlap_pad_generation,
        }
    }

    /// The configuration used throughout the paper's evaluation:
    /// 32-cycle AES, pad generation overlapped with the memory fetch.
    pub fn paper_default() -> Self {
        CryptoLatencyModel {
            aes_cycles: 32,
            overlap_pad_generation: true,
        }
    }

    /// Cycles charged to encrypt one block (pad generation + XOR).
    pub fn encrypt_cycles(&self) -> u64 {
        self.aes_cycles
    }

    /// Cycles exposed on the critical path when decrypting a block that was
    /// just fetched from memory. With overlapped pad generation only the
    /// final XOR (1 cycle) is visible; otherwise the full AES latency is.
    pub fn decrypt_overlapped_cycles(&self) -> u64 {
        if self.overlap_pad_generation {
            1
        } else {
            self.aes_cycles
        }
    }

    /// Raw AES pipeline latency in cycles.
    pub fn aes_cycles(&self) -> u64 {
        self.aes_cycles
    }
}

impl Default for CryptoLatencyModel {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_is_32_cycles_overlapped() {
        let m = CryptoLatencyModel::paper_default();
        assert_eq!(m.aes_cycles(), 32);
        assert_eq!(m.encrypt_cycles(), 32);
        assert_eq!(m.decrypt_overlapped_cycles(), 1);
    }

    #[test]
    fn non_overlapped_exposes_full_latency() {
        let m = CryptoLatencyModel::new(32, false);
        assert_eq!(m.decrypt_overlapped_cycles(), 32);
    }

    #[test]
    fn default_matches_paper_default() {
        assert_eq!(
            CryptoLatencyModel::default(),
            CryptoLatencyModel::paper_default()
        );
    }
}
