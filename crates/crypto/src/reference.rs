//! Byte-wise reference AES-128 (FIPS-197), retained as the equivalence
//! oracle for the T-table fast path in [`crate::Aes128`].
//!
//! This is the original from-scratch implementation: the S-box is a static
//! table, MixColumns uses explicit GF(2^8) doubling, and the round structure
//! follows the specification directly. It favours clarity over raw speed and
//! is what the property tests and known-answer vectors check the optimized
//! cipher against.

use crate::aes::{expand_key, SBOX};

/// Multiply a GF(2^8) element by 2 (the `xtime` operation of FIPS-197).
#[inline]
pub(crate) fn xtime(b: u8) -> u8 {
    (b << 1) ^ (((b >> 7) & 1) * 0x1b)
}

/// Specification-faithful AES-128, one spec step per function.
///
/// Bit-for-bit interchangeable with [`crate::Aes128`] — the equivalence is
/// enforced by proptest over random keys/blocks plus the FIPS-197 and NIST
/// vectors — but roughly an order of magnitude slower, so nothing on the
/// simulator's hot path should use it.
///
/// # Examples
///
/// ```
/// use psoram_crypto::{Aes128, ReferenceAes128};
///
/// let key = [0x2b; 16];
/// let block = [0x5a; 16];
/// let fast = Aes128::new(&key).encrypt_block(&block);
/// let slow = ReferenceAes128::new(&key).encrypt_block(&block);
/// assert_eq!(fast, slow);
/// ```
#[derive(Clone)]
pub struct ReferenceAes128 {
    /// 11 round keys of 16 bytes each.
    round_keys: [[u8; 16]; 11],
}

impl std::fmt::Debug for ReferenceAes128 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print key material.
        f.debug_struct("ReferenceAes128")
            .field("round_keys", &"<redacted>")
            .finish()
    }
}

impl ReferenceAes128 {
    /// Expands `key` into the full round-key schedule and returns the cipher.
    pub fn new(key: &[u8; 16]) -> Self {
        ReferenceAes128 {
            round_keys: expand_key(key),
        }
    }

    /// Encrypts one 16-byte block and returns the ciphertext block.
    pub fn encrypt_block(&self, block: &[u8; 16]) -> [u8; 16] {
        let mut state = *block;
        add_round_key(&mut state, &self.round_keys[0]);
        for round in 1..10 {
            sub_bytes(&mut state);
            shift_rows(&mut state);
            mix_columns(&mut state);
            add_round_key(&mut state, &self.round_keys[round]);
        }
        sub_bytes(&mut state);
        shift_rows(&mut state);
        add_round_key(&mut state, &self.round_keys[10]);
        state
    }
}

#[inline]
fn add_round_key(state: &mut [u8; 16], rk: &[u8; 16]) {
    for (s, k) in state.iter_mut().zip(rk) {
        *s ^= k;
    }
}

#[inline]
fn sub_bytes(state: &mut [u8; 16]) {
    for b in state.iter_mut() {
        *b = SBOX[*b as usize];
    }
}

/// FIPS-197 state is column-major: byte `state[r + 4c]` is row `r`, col `c`.
/// Our flat layout stores the state exactly as the input byte stream, i.e.
/// `state[4c + r]`; ShiftRows therefore rotates the bytes with stride 4.
#[inline]
fn shift_rows(state: &mut [u8; 16]) {
    // Row 1: rotate left by 1.
    let t = state[1];
    state[1] = state[5];
    state[5] = state[9];
    state[9] = state[13];
    state[13] = t;
    // Row 2: rotate left by 2.
    state.swap(2, 10);
    state.swap(6, 14);
    // Row 3: rotate left by 3 (== right by 1).
    let t = state[15];
    state[15] = state[11];
    state[11] = state[7];
    state[7] = state[3];
    state[3] = t;
}

#[inline]
fn mix_columns(state: &mut [u8; 16]) {
    for c in 0..4 {
        let col = &mut state[c * 4..c * 4 + 4];
        let a0 = col[0];
        let a1 = col[1];
        let a2 = col[2];
        let a3 = col[3];
        let all = a0 ^ a1 ^ a2 ^ a3;
        col[0] = a0 ^ all ^ xtime(a0 ^ a1);
        col[1] = a1 ^ all ^ xtime(a1 ^ a2);
        col[2] = a2 ^ all ^ xtime(a2 ^ a3);
        col[3] = a3 ^ all ^ xtime(a3 ^ a0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// FIPS-197 Appendix B: full example vector.
    #[test]
    fn fips197_appendix_b() {
        let key = [
            0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
            0x4f, 0x3c,
        ];
        let pt = [
            0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d, 0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37,
            0x07, 0x34,
        ];
        let expected = [
            0x39, 0x25, 0x84, 0x1d, 0x02, 0xdc, 0x09, 0xfb, 0xdc, 0x11, 0x85, 0x97, 0x19, 0x6a,
            0x0b, 0x32,
        ];
        assert_eq!(ReferenceAes128::new(&key).encrypt_block(&pt), expected);
    }

    /// FIPS-197 Appendix C.1: AES-128 known-answer test.
    #[test]
    fn fips197_appendix_c1() {
        let key: [u8; 16] = core::array::from_fn(|i| i as u8);
        let pt: [u8; 16] = core::array::from_fn(|i| (i * 0x11) as u8);
        let expected = [
            0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30, 0xd8, 0xcd, 0xb7, 0x80, 0x70, 0xb4,
            0xc5, 0x5a,
        ];
        assert_eq!(ReferenceAes128::new(&key).encrypt_block(&pt), expected);
    }

    #[test]
    fn debug_redacts_key_material() {
        let aes = ReferenceAes128::new(&[7u8; 16]);
        let dbg = format!("{aes:?}");
        assert!(dbg.contains("redacted"));
        assert!(!dbg.contains("[7"));
    }

    #[test]
    fn xtime_matches_gf256_doubling() {
        assert_eq!(xtime(0x57), 0xae);
        assert_eq!(xtime(0xae), 0x47);
        assert_eq!(xtime(0x80), 0x1b);
    }
}
