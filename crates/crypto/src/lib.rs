//! # psoram-crypto
//!
//! From-scratch AES-128 (FIPS-197) with counter (CTR) mode and a fixed-latency
//! model, as used by the PS-ORAM controller's encryption/decryption circuit.
//!
//! The PS-ORAM paper (ISCA'22) assumes an overall AES encryption latency of
//! **32 processor cycles** (following Fletcher et al. and Zhang et al.) and
//! overlaps fetching data with encryption-pad generation (Osiris-style).
//! Each ORAM block carries two initialization vectors: `IV1` encrypts the
//! block *header* (program address + path id) while `IV2` encrypts the data
//! *content* (Fletcher et al., FCCM'15).
//!
//! This crate provides:
//!
//! * [`Aes128`] — the T-table (u32 lookup-table) AES-128 fast path that sits
//!   on the simulator's hottest loop, verified against the FIPS-197 and NIST
//!   SP 800-38A vectors.
//! * [`ReferenceAes128`] — the original byte-wise, specification-faithful
//!   cipher, kept as the equivalence oracle for the fast path (proptest over
//!   random keys/blocks in `tests/equivalence.rs`).
//! * [`CtrCipher`] — AES-CTR keystream encryption of arbitrary-length
//!   buffers, including the allocation-free batched
//!   [`CtrCipher::keystream_into`].
//! * [`CryptoLatencyModel`] — the cycle-cost model the timing simulator
//!   charges for header/content (de|en)cryption. Functional throughput and
//!   modeled latency are deliberately decoupled: the timing side charges 32
//!   cycles per AES operation no matter how fast the host computes it.
//!
//! # Examples
//!
//! ```
//! use psoram_crypto::{Aes128, CtrCipher};
//!
//! let key = [0u8; 16];
//! let aes = Aes128::new(&key);
//! let cipher = CtrCipher::new(aes);
//! let mut data = *b"oram block data!";
//! let iv = 42u128;
//! cipher.apply_keystream(iv, &mut data);
//! assert_ne!(&data, b"oram block data!");
//! cipher.apply_keystream(iv, &mut data); // CTR is an involution
//! assert_eq!(&data, b"oram block data!");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod aes;
mod cmac;
mod ctr;
mod hash;
mod inverse;
mod latency;
mod reference;

pub use aes::Aes128;
pub use cmac::Cmac;
pub use ctr::CtrCipher;
pub use hash::{Digest, Hash128, DIGEST_BYTES};
pub use latency::CryptoLatencyModel;
pub use reference::ReferenceAes128;
