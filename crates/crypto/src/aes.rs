//! AES-128 block cipher (FIPS-197), T-table fast path.
//!
//! The encryption round is implemented with the classic four precomputed
//! 32-bit lookup tables (`Te0..Te3`), each entry combining SubBytes,
//! ShiftRows, and MixColumns for one state byte; a round is then sixteen
//! table loads, sixteen XORs, and the round key. The tables are generated at
//! compile time from the S-box, and equivalence with the specification is
//! enforced against the byte-wise [`crate::ReferenceAes128`] cipher by
//! known-answer vectors plus proptest over random keys and blocks.
//!
//! Functional throughput is independent of the *timing* model, which charges
//! a fixed 32-cycle latency per AES operation regardless of how fast the
//! simulator computes it (see [`crate::CryptoLatencyModel`]).

/// The AES S-box (forward substitution table), from FIPS-197 Figure 7.
pub(crate) const SBOX: [u8; 256] = [
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
    0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
    0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
    0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
    0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
    0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
    0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
    0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
    0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
    0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
    0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
];

/// Round constants for the key schedule.
const RCON: [u8; 10] = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36];

/// GF(2^8) doubling, usable in const table generation.
const fn mul2(b: u8) -> u8 {
    (b << 1) ^ (((b >> 7) & 1) * 0x1b)
}

/// The four encryption T-tables. With big-endian state words (row 0 in the
/// most significant byte), `TE[0][x]` holds the MixColumns column
/// `(2·S(x), S(x), S(x), 3·S(x))`; `TE[1..3]` are byte rotations of it, so a
/// full round column is `TE[0][..] ^ TE[1][..] ^ TE[2][..] ^ TE[3][..] ^ rk`.
static TE: [[u32; 256]; 4] = {
    let mut t = [[0u32; 256]; 4];
    let mut i = 0;
    while i < 256 {
        let s = SBOX[i] as u32;
        let s2 = mul2(SBOX[i]) as u32;
        let s3 = s2 ^ s;
        let w = (s2 << 24) | (s << 16) | (s << 8) | s3;
        t[0][i] = w;
        t[1][i] = w.rotate_right(8);
        t[2][i] = w.rotate_right(16);
        t[3][i] = w.rotate_right(24);
        i += 1;
    }
    t
};

/// Expands `key` into the 11 round keys of the FIPS-197 key schedule.
///
/// Shared by the T-table cipher, the byte-wise reference cipher, and the
/// inverse cipher so all three provably run the same schedule.
pub(crate) fn expand_key(key: &[u8; 16]) -> [[u8; 16]; 11] {
    let mut w = [[0u8; 4]; 44];
    for (i, chunk) in key.chunks_exact(4).enumerate() {
        w[i].copy_from_slice(chunk);
    }
    for i in 4..44 {
        let mut temp = w[i - 1];
        if i % 4 == 0 {
            temp.rotate_left(1);
            for b in &mut temp {
                *b = SBOX[*b as usize];
            }
            temp[0] ^= RCON[i / 4 - 1];
        }
        for j in 0..4 {
            w[i][j] = w[i - 4][j] ^ temp[j];
        }
    }
    let mut round_keys = [[0u8; 16]; 11];
    for r in 0..11 {
        for c in 0..4 {
            round_keys[r][c * 4..c * 4 + 4].copy_from_slice(&w[r * 4 + c]);
        }
    }
    round_keys
}

/// An AES-128 block cipher with a pre-expanded key schedule (T-table fast
/// path).
///
/// The cipher only exposes block *encryption*: ORAM uses AES exclusively in
/// counter mode, where decryption is the same keystream XOR.
///
/// # Examples
///
/// ```
/// use psoram_crypto::Aes128;
///
/// // FIPS-197 Appendix B example.
/// let key = [
///     0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
///     0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c,
/// ];
/// let aes = Aes128::new(&key);
/// let block = [
///     0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d,
///     0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37, 0x07, 0x34,
/// ];
/// let ct = aes.encrypt_block(&block);
/// assert_eq!(ct[0], 0x39);
/// assert_eq!(ct[15], 0x32);
/// ```
#[derive(Clone)]
pub struct Aes128 {
    /// 11 round keys of 16 bytes each (byte form, for the inverse cipher
    /// and CMAC subkey derivation).
    round_keys: [[u8; 16]; 11],
    /// The same schedule as 44 big-endian words, consumed by the T-table
    /// round loop.
    ek: [u32; 44],
}

impl std::fmt::Debug for Aes128 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print key material.
        f.debug_struct("Aes128")
            .field("round_keys", &"<redacted>")
            .finish()
    }
}

impl Aes128 {
    /// Expands `key` into the full round-key schedule and returns the cipher.
    pub fn new(key: &[u8; 16]) -> Self {
        let round_keys = expand_key(key);
        let mut ek = [0u32; 44];
        for (i, word) in ek.iter_mut().enumerate() {
            let rk = &round_keys[i / 4];
            let c = (i % 4) * 4;
            *word = u32::from_be_bytes([rk[c], rk[c + 1], rk[c + 2], rk[c + 3]]);
        }
        Aes128 { round_keys, ek }
    }

    /// Internal view of the expanded key schedule (for the inverse cipher).
    pub(crate) fn round_keys_ref(&self) -> &[[u8; 16]; 11] {
        &self.round_keys
    }

    /// Encrypts one 16-byte block and returns the ciphertext block.
    pub fn encrypt_block(&self, block: &[u8; 16]) -> [u8; 16] {
        let ek = &self.ek;
        let mut s0 = u32::from_be_bytes([block[0], block[1], block[2], block[3]]) ^ ek[0];
        let mut s1 = u32::from_be_bytes([block[4], block[5], block[6], block[7]]) ^ ek[1];
        let mut s2 = u32::from_be_bytes([block[8], block[9], block[10], block[11]]) ^ ek[2];
        let mut s3 = u32::from_be_bytes([block[12], block[13], block[14], block[15]]) ^ ek[3];

        // Rounds 1..=9: SubBytes + ShiftRows + MixColumns folded into the
        // T-tables; the ShiftRows byte selection is the (s_j, s_{j+1},
        // s_{j+2}, s_{j+3}) column rotation below.
        for r in 1..10 {
            let k = &ek[4 * r..4 * r + 4];
            let t0 = round_word(s0, s1, s2, s3) ^ k[0];
            let t1 = round_word(s1, s2, s3, s0) ^ k[1];
            let t2 = round_word(s2, s3, s0, s1) ^ k[2];
            let t3 = round_word(s3, s0, s1, s2) ^ k[3];
            s0 = t0;
            s1 = t1;
            s2 = t2;
            s3 = t3;
        }

        // Final round: SubBytes + ShiftRows only (no MixColumns).
        let o0 = final_word(s0, s1, s2, s3) ^ ek[40];
        let o1 = final_word(s1, s2, s3, s0) ^ ek[41];
        let o2 = final_word(s2, s3, s0, s1) ^ ek[42];
        let o3 = final_word(s3, s0, s1, s2) ^ ek[43];

        let mut out = [0u8; 16];
        out[0..4].copy_from_slice(&o0.to_be_bytes());
        out[4..8].copy_from_slice(&o1.to_be_bytes());
        out[8..12].copy_from_slice(&o2.to_be_bytes());
        out[12..16].copy_from_slice(&o3.to_be_bytes());
        out
    }
}

/// One output column of a main round, before the round key.
#[inline(always)]
fn round_word(a: u32, b: u32, c: u32, d: u32) -> u32 {
    TE[0][(a >> 24) as usize]
        ^ TE[1][((b >> 16) & 0xff) as usize]
        ^ TE[2][((c >> 8) & 0xff) as usize]
        ^ TE[3][(d & 0xff) as usize]
}

/// One output column of the final round (S-box only), before the round key.
#[inline(always)]
fn final_word(a: u32, b: u32, c: u32, d: u32) -> u32 {
    (u32::from(SBOX[(a >> 24) as usize]) << 24)
        | (u32::from(SBOX[((b >> 16) & 0xff) as usize]) << 16)
        | (u32::from(SBOX[((c >> 8) & 0xff) as usize]) << 8)
        | u32::from(SBOX[(d & 0xff) as usize])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ReferenceAes128;

    /// FIPS-197 Appendix B: full example vector.
    #[test]
    fn fips197_appendix_b() {
        let key = [
            0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
            0x4f, 0x3c,
        ];
        let pt = [
            0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d, 0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37,
            0x07, 0x34,
        ];
        let expected = [
            0x39, 0x25, 0x84, 0x1d, 0x02, 0xdc, 0x09, 0xfb, 0xdc, 0x11, 0x85, 0x97, 0x19, 0x6a,
            0x0b, 0x32,
        ];
        assert_eq!(Aes128::new(&key).encrypt_block(&pt), expected);
    }

    /// FIPS-197 Appendix C.1: AES-128 known-answer test.
    #[test]
    fn fips197_appendix_c1() {
        let key: [u8; 16] = core::array::from_fn(|i| i as u8);
        let pt: [u8; 16] = core::array::from_fn(|i| (i * 0x11) as u8);
        let expected = [
            0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30, 0xd8, 0xcd, 0xb7, 0x80, 0x70, 0xb4,
            0xc5, 0x5a,
        ];
        assert_eq!(Aes128::new(&key).encrypt_block(&pt), expected);
    }

    /// NIST SP 800-38A F.1.1 ECB-AES128 first block.
    #[test]
    fn sp800_38a_ecb_first_block() {
        let key = [
            0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
            0x4f, 0x3c,
        ];
        let pt = [
            0x6b, 0xc1, 0xbe, 0xe2, 0x2e, 0x40, 0x9f, 0x96, 0xe9, 0x3d, 0x7e, 0x11, 0x73, 0x93,
            0x17, 0x2a,
        ];
        let expected = [
            0x3a, 0xd7, 0x7b, 0xb4, 0x0d, 0x7a, 0x36, 0x60, 0xa8, 0x9e, 0xca, 0xf3, 0x24, 0x66,
            0xef, 0x97,
        ];
        assert_eq!(Aes128::new(&key).encrypt_block(&pt), expected);
    }

    #[test]
    fn key_schedule_first_and_last_round_keys() {
        // FIPS-197 Appendix A.1 key expansion example.
        let key = [
            0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
            0x4f, 0x3c,
        ];
        let aes = Aes128::new(&key);
        assert_eq!(aes.round_keys[0], key);
        let last = [
            0xd0, 0x14, 0xf9, 0xa8, 0xc9, 0xee, 0x25, 0x89, 0xe1, 0x3f, 0x0c, 0xc8, 0xb6, 0x63,
            0x0c, 0xa6,
        ];
        assert_eq!(aes.round_keys[10], last);
    }

    #[test]
    fn word_schedule_mirrors_byte_schedule() {
        let aes = Aes128::new(&[0x3Cu8; 16]);
        for (i, &word) in aes.ek.iter().enumerate() {
            let rk = &aes.round_keys[i / 4];
            let c = (i % 4) * 4;
            assert_eq!(word.to_be_bytes(), [rk[c], rk[c + 1], rk[c + 2], rk[c + 3]]);
        }
    }

    #[test]
    fn matches_reference_cipher_on_structured_inputs() {
        for seed in 0u8..32 {
            let key: [u8; 16] = core::array::from_fn(|i| (i as u8).wrapping_mul(seed ^ 0x5f));
            let pt: [u8; 16] = core::array::from_fn(|i| (i as u8).wrapping_add(seed));
            assert_eq!(
                Aes128::new(&key).encrypt_block(&pt),
                ReferenceAes128::new(&key).encrypt_block(&pt),
                "mismatch at seed {seed}"
            );
        }
    }

    #[test]
    fn different_keys_give_different_ciphertexts() {
        let pt = [0u8; 16];
        let c1 = Aes128::new(&[0u8; 16]).encrypt_block(&pt);
        let c2 = Aes128::new(&[1u8; 16]).encrypt_block(&pt);
        assert_ne!(c1, c2);
    }

    #[test]
    fn debug_redacts_key_material() {
        let aes = Aes128::new(&[7u8; 16]);
        let dbg = format!("{aes:?}");
        assert!(dbg.contains("redacted"));
        assert!(!dbg.contains("[7"));
    }

    #[test]
    fn te_tables_are_rotations_of_te0() {
        for (i, &t0) in TE[0].iter().enumerate() {
            assert_eq!(TE[1][i], t0.rotate_right(8));
            assert_eq!(TE[2][i], t0.rotate_right(16));
            assert_eq!(TE[3][i], t0.rotate_right(24));
        }
    }
}
