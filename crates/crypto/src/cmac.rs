//! AES-CMAC (RFC 4493) message authentication.
//!
//! Secure NVM systems pair counter-mode encryption with per-block
//! authentication (the paper's related work: Triad-NVM, SuperMem). This
//! CMAC lets the ORAM controller tag each block so recovery can *verify*
//! the copy it restores rather than trust the NVM bits blindly.

use crate::Aes128;

/// AES-CMAC tag generator.
///
/// # Examples
///
/// ```
/// use psoram_crypto::{Aes128, Cmac};
///
/// let mac = Cmac::new(Aes128::new(&[3u8; 16]));
/// let tag = mac.tag(b"oram block payload");
/// assert!(mac.verify(b"oram block payload", &tag));
/// assert!(!mac.verify(b"tampered block!!!", &tag));
/// ```
#[derive(Debug, Clone)]
pub struct Cmac {
    aes: Aes128,
    k1: [u8; 16],
    k2: [u8; 16],
}

/// Doubles a 128-bit value in GF(2^128) (the CMAC subkey derivation).
fn dbl(x: &[u8; 16]) -> [u8; 16] {
    let mut out = [0u8; 16];
    let mut carry = 0u8;
    for i in (0..16).rev() {
        out[i] = (x[i] << 1) | carry;
        carry = x[i] >> 7;
    }
    if carry != 0 {
        out[15] ^= 0x87;
    }
    out
}

impl Cmac {
    /// Derives the CMAC subkeys from an expanded AES key.
    pub fn new(aes: Aes128) -> Self {
        let l = aes.encrypt_block(&[0u8; 16]);
        let k1 = dbl(&l);
        let k2 = dbl(&k1);
        Cmac { aes, k1, k2 }
    }

    /// Computes the 16-byte CMAC tag of `msg`.
    pub fn tag(&self, msg: &[u8]) -> [u8; 16] {
        let n = msg.len().div_ceil(16).max(1);
        let complete = msg.len() == n * 16 && !msg.is_empty();
        let mut x = [0u8; 16];
        for i in 0..n - 1 {
            for (j, b) in x.iter_mut().enumerate() {
                *b ^= msg[i * 16 + j];
            }
            x = self.aes.encrypt_block(&x);
        }
        // Last block: XOR with K1 (complete) or padded + K2.
        let mut last = [0u8; 16];
        let start = (n - 1) * 16;
        if complete {
            last.copy_from_slice(&msg[start..start + 16]);
            for (l, k) in last.iter_mut().zip(&self.k1) {
                *l ^= k;
            }
        } else {
            let rem = msg.len() - start;
            last[..rem].copy_from_slice(&msg[start..]);
            last[rem] = 0x80;
            for (l, k) in last.iter_mut().zip(&self.k2) {
                *l ^= k;
            }
        }
        for (b, l) in x.iter_mut().zip(&last) {
            *b ^= l;
        }
        self.aes.encrypt_block(&x)
    }

    /// Computes the tag of a multi-part message under a one-byte domain.
    ///
    /// Each part is prefixed with its little-endian length before MACing,
    /// so differently split inputs can never collide: `("ab", "c")` and
    /// `("a", "bc")` authenticate different byte streams. The freshness
    /// layer uses this to fold unit identities and monotonic version
    /// counters into the CMAC input without framing ambiguity, and the
    /// domain byte keeps slot, PosMap, and counter-tree tags in disjoint
    /// message spaces under one key.
    pub fn tag_parts(&self, domain: u8, parts: &[&[u8]]) -> [u8; 16] {
        let mut msg = Vec::with_capacity(1 + parts.iter().map(|p| 8 + p.len()).sum::<usize>());
        msg.push(domain);
        for p in parts {
            msg.extend_from_slice(&(p.len() as u64).to_le_bytes());
            msg.extend_from_slice(p);
        }
        self.tag(&msg)
    }

    /// Constant-shape verification of a tag.
    pub fn verify(&self, msg: &[u8], tag: &[u8; 16]) -> bool {
        let computed = self.tag(msg);
        let mut diff = 0u8;
        for (a, b) in computed.iter().zip(tag) {
            diff |= a ^ b;
        }
        diff == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rfc_key() -> Aes128 {
        Aes128::new(&[
            0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
            0x4f, 0x3c,
        ])
    }

    /// RFC 4493 Example 1: empty message.
    #[test]
    fn rfc4493_empty_message() {
        let mac = Cmac::new(rfc_key());
        let expected = [
            0xbb, 0x1d, 0x69, 0x29, 0xe9, 0x59, 0x37, 0x28, 0x7f, 0xa3, 0x7d, 0x12, 0x9b, 0x75,
            0x67, 0x46,
        ];
        assert_eq!(mac.tag(b""), expected);
    }

    /// RFC 4493 Example 2: one full block.
    #[test]
    fn rfc4493_single_block() {
        let mac = Cmac::new(rfc_key());
        let msg = [
            0x6b, 0xc1, 0xbe, 0xe2, 0x2e, 0x40, 0x9f, 0x96, 0xe9, 0x3d, 0x7e, 0x11, 0x73, 0x93,
            0x17, 0x2a,
        ];
        let expected = [
            0x07, 0x0a, 0x16, 0xb4, 0x6b, 0x4d, 0x41, 0x44, 0xf7, 0x9b, 0xdd, 0x9d, 0xd0, 0x4a,
            0x28, 0x7c,
        ];
        assert_eq!(mac.tag(&msg), expected);
    }

    /// RFC 4493 Example 3: 40 bytes (partial last block).
    #[test]
    fn rfc4493_forty_bytes() {
        let mac = Cmac::new(rfc_key());
        let msg = [
            0x6b, 0xc1, 0xbe, 0xe2, 0x2e, 0x40, 0x9f, 0x96, 0xe9, 0x3d, 0x7e, 0x11, 0x73, 0x93,
            0x17, 0x2a, 0xae, 0x2d, 0x8a, 0x57, 0x1e, 0x03, 0xac, 0x9c, 0x9e, 0xb7, 0x6f, 0xac,
            0x45, 0xaf, 0x8e, 0x51, 0x30, 0xc8, 0x1c, 0x46, 0xa3, 0x5c, 0xe4, 0x11,
        ];
        let expected = [
            0xdf, 0xa6, 0x67, 0x47, 0xde, 0x9a, 0xe6, 0x30, 0x30, 0xca, 0x32, 0x61, 0x14, 0x97,
            0xc8, 0x27,
        ];
        assert_eq!(mac.tag(&msg), expected);
    }

    #[test]
    fn verify_accepts_and_rejects() {
        let mac = Cmac::new(Aes128::new(&[7u8; 16]));
        let tag = mac.tag(b"block");
        assert!(mac.verify(b"block", &tag));
        assert!(!mac.verify(b"blocj", &tag));
        let mut bad = tag;
        bad[0] ^= 1;
        assert!(!mac.verify(b"block", &bad));
    }

    #[test]
    fn distinct_messages_distinct_tags() {
        let mac = Cmac::new(Aes128::new(&[7u8; 16]));
        assert_ne!(mac.tag(b"a"), mac.tag(b"b"));
        assert_ne!(mac.tag(b""), mac.tag(b"\0"));
    }

    #[test]
    fn tag_parts_is_split_and_domain_separated() {
        let mac = Cmac::new(Aes128::new(&[9u8; 16]));
        // Splitting the same bytes differently must change the tag.
        assert_ne!(
            mac.tag_parts(1, &[b"ab", b"c"]),
            mac.tag_parts(1, &[b"a", b"bc"])
        );
        // Same parts under different domains must change the tag.
        assert_ne!(mac.tag_parts(1, &[b"abc"]), mac.tag_parts(2, &[b"abc"]));
        // Deterministic.
        assert_eq!(
            mac.tag_parts(3, &[b"x", b"", b"y"]),
            mac.tag_parts(3, &[b"x", b"", b"y"])
        );
        // Part count matters even when the concatenation is identical.
        assert_ne!(mac.tag_parts(3, &[b"xy"]), mac.tag_parts(3, &[b"x", b"y"]));
    }
}
