//! AES counter (CTR) mode over arbitrary-length buffers.

use crate::Aes128;

/// AES-128 counter-mode cipher.
///
/// ORAM blocks are encrypted in counter mode with per-block initialization
/// vectors (IVs): `IV1` protects the header and `IV2` the content (Fletcher
/// et al.). Counter mode is an involution — applying the keystream twice
/// restores the plaintext — so a single [`CtrCipher::apply_keystream`] method
/// serves for both encryption and decryption.
///
/// # Examples
///
/// ```
/// use psoram_crypto::{Aes128, CtrCipher};
///
/// let cipher = CtrCipher::new(Aes128::new(&[0x42; 16]));
/// let mut buf = vec![0u8; 64];
/// cipher.apply_keystream(7, &mut buf);
/// assert!(buf.iter().any(|&b| b != 0));
/// cipher.apply_keystream(7, &mut buf);
/// assert!(buf.iter().all(|&b| b == 0));
/// ```
#[derive(Debug, Clone)]
pub struct CtrCipher {
    aes: Aes128,
}

impl CtrCipher {
    /// Creates a counter-mode cipher around an expanded AES-128 key.
    pub fn new(aes: Aes128) -> Self {
        CtrCipher { aes }
    }

    /// XORs `buf` with the keystream generated from initialization vector
    /// `iv`. Apply once to encrypt, once more (with the same `iv`) to
    /// decrypt.
    ///
    /// The counter block for keystream block `i` is the big-endian encoding
    /// of `iv + i`, which matches the standard CTR construction where the IV
    /// occupies the counter's high bits.
    pub fn apply_keystream(&self, iv: u128, buf: &mut [u8]) {
        for (i, chunk) in buf.chunks_mut(16).enumerate() {
            let counter = iv.wrapping_add(i as u128).to_be_bytes();
            let pad = self.aes.encrypt_block(&counter);
            for (b, p) in chunk.iter_mut().zip(pad.iter()) {
                *b ^= p;
            }
        }
    }

    /// Fills `out` with keystream bytes for `iv`, overwriting its contents.
    ///
    /// This is the batched, allocation-free variant of [`Self::keystream`]:
    /// the caller brings a reusable scratch buffer (any length; the final
    /// partial block is truncated) and XORs the pad into data itself, which
    /// is how the controller re-encrypts a whole path's buckets without a
    /// heap allocation per access.
    pub fn keystream_into(&self, iv: u128, out: &mut [u8]) {
        for (i, chunk) in out.chunks_mut(16).enumerate() {
            let counter = iv.wrapping_add(i as u128).to_be_bytes();
            let pad = self.aes.encrypt_block(&counter);
            chunk.copy_from_slice(&pad[..chunk.len()]);
        }
    }

    /// Generates `len` keystream bytes for `iv` without touching user data.
    ///
    /// Used by the timing model to emulate Osiris-style pad pre-generation,
    /// where the encryption pad is computed while the data block is still in
    /// flight from memory. Allocates; hot paths should hand a scratch buffer
    /// to [`Self::keystream_into`] instead.
    pub fn keystream(&self, iv: u128, len: usize) -> Vec<u8> {
        let mut buf = vec![0u8; len];
        self.keystream_into(iv, &mut buf);
        buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cipher() -> CtrCipher {
        CtrCipher::new(Aes128::new(&[0xA5; 16]))
    }

    #[test]
    fn roundtrip_restores_plaintext() {
        let c = cipher();
        let original: Vec<u8> = (0..200).map(|i| (i * 7) as u8).collect();
        let mut buf = original.clone();
        c.apply_keystream(0xDEADBEEF, &mut buf);
        assert_ne!(buf, original);
        c.apply_keystream(0xDEADBEEF, &mut buf);
        assert_eq!(buf, original);
    }

    #[test]
    fn distinct_ivs_produce_distinct_ciphertexts() {
        let c = cipher();
        let mut a = vec![0u8; 64];
        let mut b = vec![0u8; 64];
        c.apply_keystream(1, &mut a);
        c.apply_keystream(2, &mut b);
        assert_ne!(a, b);
    }

    #[test]
    fn keystream_matches_apply_on_zeroes() {
        let c = cipher();
        let ks = c.keystream(99, 48);
        let mut buf = vec![0u8; 48];
        c.apply_keystream(99, &mut buf);
        assert_eq!(ks, buf);
    }

    #[test]
    fn keystream_into_matches_keystream() {
        let c = cipher();
        for len in [0usize, 1, 15, 16, 17, 48, 200] {
            let ks = c.keystream(0x1234_5678, len);
            let mut buf = vec![0xEEu8; len];
            c.keystream_into(0x1234_5678, &mut buf);
            assert_eq!(ks, buf, "len {len}");
        }
    }

    #[test]
    fn keystream_into_then_xor_equals_apply_keystream() {
        let c = cipher();
        let plain: Vec<u8> = (0..77).map(|i| (i * 13) as u8).collect();

        let mut direct = plain.clone();
        c.apply_keystream(0xFEED, &mut direct);

        let mut pad = vec![0u8; plain.len()];
        c.keystream_into(0xFEED, &mut pad);
        let via_pad: Vec<u8> = plain.iter().zip(&pad).map(|(p, k)| p ^ k).collect();

        assert_eq!(direct, via_pad);
    }

    #[test]
    fn non_multiple_of_block_length_handled() {
        let c = cipher();
        let mut buf = vec![0xFFu8; 21];
        c.apply_keystream(5, &mut buf);
        c.apply_keystream(5, &mut buf);
        assert_eq!(buf, vec![0xFFu8; 21]);
    }

    /// NIST SP 800-38A F.5.1 CTR-AES128.Encrypt, first 16-byte block.
    #[test]
    fn sp800_38a_ctr_vector() {
        let key = [
            0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
            0x4f, 0x3c,
        ];
        let iv = u128::from_be_bytes([
            0xf0, 0xf1, 0xf2, 0xf3, 0xf4, 0xf5, 0xf6, 0xf7, 0xf8, 0xf9, 0xfa, 0xfb, 0xfc, 0xfd,
            0xfe, 0xff,
        ]);
        let mut buf = [
            0x6b, 0xc1, 0xbe, 0xe2, 0x2e, 0x40, 0x9f, 0x96, 0xe9, 0x3d, 0x7e, 0x11, 0x73, 0x93,
            0x17, 0x2a,
        ];
        let expected = [
            0x87, 0x4d, 0x61, 0x91, 0xb6, 0x20, 0xe3, 0x26, 0x1b, 0xef, 0x68, 0x64, 0x99, 0x0d,
            0xb6, 0xce,
        ];
        CtrCipher::new(Aes128::new(&key)).apply_keystream(iv, &mut buf);
        assert_eq!(buf, expected);
    }

    /// Sequential blocks must use incrementing counters (second SP 800-38A
    /// block checked through a 32-byte buffer).
    #[test]
    fn sp800_38a_ctr_second_block() {
        let key = [
            0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
            0x4f, 0x3c,
        ];
        let iv = u128::from_be_bytes([
            0xf0, 0xf1, 0xf2, 0xf3, 0xf4, 0xf5, 0xf6, 0xf7, 0xf8, 0xf9, 0xfa, 0xfb, 0xfc, 0xfd,
            0xfe, 0xff,
        ]);
        let mut buf = [0u8; 32];
        buf[16..].copy_from_slice(&[
            0xae, 0x2d, 0x8a, 0x57, 0x1e, 0x03, 0xac, 0x9c, 0x9e, 0xb7, 0x6f, 0xac, 0x45, 0xaf,
            0x8e, 0x51,
        ]);
        CtrCipher::new(Aes128::new(&key)).apply_keystream(iv, &mut buf);
        let expected_second = [
            0x98, 0x06, 0xf6, 0x6b, 0x79, 0x70, 0xfd, 0xff, 0x86, 0x17, 0x18, 0x7b, 0xb9, 0xff,
            0xfd, 0xff,
        ];
        assert_eq!(&buf[16..], &expected_second);
    }
}
