//! A 128-bit hash built from AES (Davies–Meyer + Merkle–Damgård).
//!
//! Secure-memory integrity engines use block-cipher-based compression
//! functions because the AES datapath is already on chip. This is the
//! classic Davies–Meyer construction, `H_i = E(m_i, H_{i-1}) ^ H_{i-1}`,
//! with Merkle–Damgård length-strengthening — collision-resistant under
//! the ideal-cipher model and exactly what the integrity tree needs.

use crate::Aes128;

/// Output size of [`Hash128`] in bytes.
pub const DIGEST_BYTES: usize = 16;

/// A 128-bit digest.
pub type Digest = [u8; DIGEST_BYTES];

/// AES-based 128-bit hash function.
///
/// # Examples
///
/// ```
/// use psoram_crypto::Hash128;
///
/// let h = Hash128::new();
/// let d1 = h.digest(b"bucket contents");
/// let d2 = h.digest(b"bucket contents!");
/// assert_ne!(d1, d2);
/// assert_eq!(d1, h.digest(b"bucket contents"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Hash128;

impl Hash128 {
    /// Creates the hash function (stateless; the construction is keyless).
    pub fn new() -> Self {
        Hash128
    }

    /// Hashes `msg` to a 128-bit digest.
    pub fn digest(&self, msg: &[u8]) -> Digest {
        // IV: an arbitrary fixed constant (fractional bits of sqrt(2)).
        let mut state: Digest = [
            0x6a, 0x09, 0xe6, 0x67, 0xbb, 0x67, 0xae, 0x85, 0x3c, 0x6e, 0xf3, 0x72, 0xa5, 0x4f,
            0xf5, 0x3a,
        ];
        let compress = |state: &mut Digest, block: &[u8; 16]| {
            // Davies–Meyer: the message block is the cipher *key*.
            let aes = Aes128::new(block);
            let out = aes.encrypt_block(state);
            for (s, o) in state.iter_mut().zip(out) {
                *s ^= o;
            }
        };
        let mut chunks = msg.chunks_exact(16);
        for chunk in &mut chunks {
            let mut block = [0u8; 16];
            block.copy_from_slice(chunk);
            compress(&mut state, &block);
        }
        // Final padded block: remainder || 0x80 || zeros.
        let rem = chunks.remainder();
        let mut block = [0u8; 16];
        block[..rem.len()].copy_from_slice(rem);
        block[rem.len()] = 0x80;
        compress(&mut state, &block);
        // Length-strengthening block.
        let mut len_block = [0u8; 16];
        len_block[8..].copy_from_slice(&(msg.len() as u64).to_be_bytes());
        compress(&mut state, &len_block);
        state
    }

    /// Hashes the concatenation of several parts without materializing it.
    pub fn digest_parts(&self, parts: &[&[u8]]) -> Digest {
        let total: Vec<u8> = parts.concat();
        self.digest(&total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let h = Hash128::new();
        assert_eq!(h.digest(b"abc"), h.digest(b"abc"));
    }

    #[test]
    fn sensitive_to_every_byte() {
        let h = Hash128::new();
        let base = h.digest(&[0u8; 64]);
        for i in 0..64 {
            let mut m = [0u8; 64];
            m[i] = 1;
            assert_ne!(h.digest(&m), base, "flip at byte {i} undetected");
        }
    }

    #[test]
    fn length_extension_distinguished() {
        let h = Hash128::new();
        // Same prefix, different lengths of zero padding.
        assert_ne!(h.digest(&[0u8; 16]), h.digest(&[0u8; 32]));
        assert_ne!(h.digest(b""), h.digest(&[0u8; 1]));
    }

    #[test]
    fn parts_equal_concatenation() {
        let h = Hash128::new();
        assert_eq!(h.digest_parts(&[b"ab", b"cd"]), h.digest(b"abcd"));
    }

    #[test]
    fn boundary_lengths() {
        let h = Hash128::new();
        for len in [0usize, 1, 15, 16, 17, 31, 32, 33] {
            let m = vec![0xA5u8; len];
            let d = h.digest(&m);
            assert_eq!(d, h.digest(&m), "len {len}");
        }
    }

    #[test]
    fn empirical_collision_sanity() {
        let h = Hash128::new();
        let mut seen = std::collections::HashSet::new();
        for i in 0..2000u64 {
            assert!(seen.insert(h.digest(&i.to_le_bytes())), "collision at {i}");
        }
    }
}
