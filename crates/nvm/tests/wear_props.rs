//! Property tests: the Start-Gap address rotation against algebraic
//! oracles. The unit tests in `wear.rs` pin individual rotations at
//! fixed geometries; these push the mapping contract across the whole
//! (lines, interval, writes) space: `map` is a bijection at *every*
//! gap position, the gap line itself is never the image of any logical
//! line, full rotations compose back to a pure `start`-shift, and the
//! wear engine's staged/durable split never breaks injectivity.

use std::collections::HashSet;

use proptest::prelude::*;

use psoram_nvm::{StartGap, WearConfig, WearEngine, WearScheme};

/// Advances `sg` by `writes` record_write calls.
fn advance(sg: &mut StartGap, writes: u64) {
    for _ in 0..writes {
        sg.record_write();
    }
}

proptest! {
    /// At every reachable gap position, `map` sends `lines` logical
    /// lines onto `lines` distinct physical lines in `0..lines+1`,
    /// and the gap line is exactly the one left out.
    #[test]
    fn start_gap_map_is_a_bijection_at_every_gap_position(
        lines in 1u64..48,
        interval in 1u64..8,
        writes in 0u64..256,
    ) {
        let mut sg = StartGap::new(lines, interval);
        advance(&mut sg, writes);
        let images: HashSet<u64> = (0..lines).map(|l| sg.map(l)).collect();
        prop_assert_eq!(images.len() as u64, lines, "map must be injective");
        prop_assert!(images.iter().all(|&p| p <= lines), "images stay in the region");
        prop_assert!(!images.contains(&sg.gap()), "the gap line is the unused one");
    }

    /// One full rotation (lines+1 gap moves) parks the gap back at the
    /// region end and advances `start` by exactly one: the composed
    /// mapping is the identity-position mapping shifted by `rotations`.
    #[test]
    fn start_gap_full_rotations_compose_to_start_shifts(
        lines in 1u64..32,
        interval in 1u64..6,
        rotations in 1u64..5,
    ) {
        let mut sg = StartGap::new(lines, interval);
        // A full rotation needs (lines+1) gap moves, each after
        // `interval` writes.
        advance(&mut sg, rotations * (lines + 1) * interval);
        prop_assert_eq!(sg.gap(), lines, "gap parks at the region end after full rotations");
        prop_assert_eq!(sg.start(), rotations % lines, "start advances once per rotation");
        let mut reference = StartGap::new(lines, interval);
        advance(&mut reference, rotations * (lines + 1) * interval);
        for l in 0..lines {
            prop_assert_eq!(sg.map(l), reference.map(l), "rotation is deterministic");
            // With the gap parked past every mapped line, the composed
            // mapping is the pure shift (l + rotations) mod lines.
            prop_assert_eq!(sg.map(l), (l + rotations % lines) % lines, "pure shift form");
        }
    }

    /// Every `interval` writes produces exactly one gap move, and each
    /// move copies one logical line: the line whose physical slot the
    /// gap is about to occupy. All other logical lines keep their
    /// physical address across that single move.
    #[test]
    fn start_gap_moves_relocate_exactly_one_line(
        lines in 2u64..40,
        interval in 1u64..8,
        warmup in 0u64..128,
    ) {
        let mut sg = StartGap::new(lines, interval);
        advance(&mut sg, warmup);
        let before: Vec<u64> = (0..lines).map(|l| sg.map(l)).collect();
        // Drive to the next gap move exactly.
        let mut moved = None;
        for _ in 0..interval {
            moved = sg.record_write();
            if moved.is_some() {
                break;
            }
        }
        let mv = moved.expect("interval writes force a gap move");
        let after: Vec<u64> = (0..lines).map(|l| sg.map(l)).collect();
        let changed: Vec<u64> = (0..lines).filter(|&l| before[l as usize] != after[l as usize]).collect();
        prop_assert_eq!(changed.len(), 1, "exactly one logical line relocates");
        let l = changed[0];
        prop_assert_eq!(before[l as usize], mv.from_line);
        prop_assert_eq!(after[l as usize], mv.to_line);
    }

    /// The wear engine keeps its durable and staged mappings injective
    /// under arbitrary write/commit/revert interleavings, for every
    /// leveling scheme.
    #[test]
    fn wear_engine_mapping_stays_injective(
        scheme_ix in 0usize..3,
        seed in any::<u64>(),
        ops in proptest::collection::vec((0u8..4, 0u64..24), 1..64),
    ) {
        let scheme = WearScheme::all()[scheme_ix];
        let mut cfg = WearConfig::stress(scheme);
        cfg.gap_interval = 2;
        let mut w = WearEngine::new(seed, 24, cfg);
        for (kind, line) in ops {
            match kind {
                0 | 1 => w.record_write(line * 64),
                2 => w.commit(),
                _ => w.revert(),
            }
            prop_assert!(w.mapping_is_injective(), "no address may resolve to two lines");
        }
    }
}
