//! Property tests: the seeded device-fault injector against scalar
//! oracles. The unit tests in `fault.rs` pin individual behaviours at
//! fixed seeds; these push the same contracts across the whole
//! seed/size/probability space: torn rounds always keep a strict
//! prefix, empty rounds are always intact, a disabled plan is inert
//! under arbitrary interleavings, the draw schedule is independent of
//! the probability mix, and everything is a pure function of
//! (seed, config, call sequence).

use proptest::prelude::*;

use psoram_nvm::{FaultConfig, FaultPlan, ReadFault, RoundFate};

/// The calls a backend can make on a plan, for arbitrary interleavings.
#[derive(Debug, Clone, Copy)]
enum Op {
    Fate(usize),
    Unit,
    Read,
    Entropy,
    Replay(usize),
    Splice(usize),
    ReadReplay,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    (0u8..7, 0usize..24).prop_map(|(kind, units)| match kind {
        0 => Op::Fate(units),
        1 => Op::Unit,
        2 => Op::Read,
        3 => Op::Replay(units),
        4 => Op::Splice(units),
        5 => Op::ReadReplay,
        _ => Op::Entropy,
    })
}

/// A probability mix drawn from the full unit cube (not just the
/// presets), so schedule invariance is tested against arbitrary configs.
fn config_strategy() -> impl Strategy<Value = FaultConfig> {
    (
        (
            0.0f64..1.0,
            0.0f64..1.0,
            0.0f64..1.0,
            0.0f64..1.0,
            0.0f64..1.0,
            0.0f64..1.0,
        ),
        (0.0f64..1.0, 0.0f64..1.0, 0.0f64..1.0),
        (0.0f64..1.0, 0.0f64..1.0),
    )
        .prop_map(|((t, l, d, b, r, s), (sr, cs, rr), (wm, ws))| FaultConfig {
            torn_flush: t,
            signal_loss: l,
            duplicate_signal: d,
            bit_flip_per_unit: b,
            transient_read: r,
            stuck_read: s,
            stale_replay: sr,
            cross_splice: cs,
            read_replay: rr,
            wear_media_fault: wm,
            wear_stuck: ws,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A torn round keeps a strict prefix: `kept < units`, so tearing
    /// always drops at least one unit (a "torn" round that kept
    /// everything would be indistinguishable from an intact one and
    /// would corrupt the differential accounting).
    #[test]
    fn torn_rounds_keep_a_strict_prefix(
        seed in any::<u64>(),
        cfg in config_strategy(),
        sizes in prop::collection::vec(1usize..32, 1..64),
    ) {
        let mut p = FaultPlan::new(seed, cfg);
        for units in sizes {
            if let RoundFate::Torn { kept } = p.round_fate(units) {
                prop_assert!(
                    kept < units,
                    "torn round of {units} units kept {kept}"
                );
            }
        }
    }

    /// An empty round is always intact, for every seed and mix: with
    /// nothing in flight there is nothing to tear, lose, or duplicate.
    #[test]
    fn empty_rounds_are_always_intact(
        seed in any::<u64>(),
        cfg in config_strategy(),
        rounds in 1usize..32,
    ) {
        let mut p = FaultPlan::new(seed, cfg);
        for _ in 0..rounds {
            prop_assert_eq!(p.round_fate(0), RoundFate::Intact);
        }
        let s = p.stats();
        prop_assert_eq!(s.total_injected(), 0);
        prop_assert_eq!(s.fates_drawn, rounds as u64);
    }

    /// A disabled plan is inert under any interleaving of calls: every
    /// fate is intact, no unit corrupts, no read faults, and the ground
    /// truth counters stay at zero.
    #[test]
    fn disabled_plan_is_inert_under_any_interleaving(
        seed in any::<u64>(),
        ops in prop::collection::vec(op_strategy(), 1..128),
    ) {
        let mut p = FaultPlan::new(seed, FaultConfig::disabled());
        for op in &ops {
            match *op {
                Op::Fate(units) => prop_assert_eq!(p.round_fate(units), RoundFate::Intact),
                Op::Unit => prop_assert!(!p.unit_corrupted()),
                Op::Read => prop_assert_eq!(p.read_fault(), ReadFault::None),
                Op::Replay(units) => prop_assert_eq!(p.replay_fate(units), None),
                Op::Splice(units) => prop_assert_eq!(p.splice_fate(units), None),
                Op::ReadReplay => prop_assert_eq!(p.read_replay(), None),
                Op::Entropy => {
                    let _ = p.entropy();
                }
            }
        }
        prop_assert_eq!(p.stats().total_injected(), 0);
    }

    /// The draw schedule is independent of the probability mix: two
    /// plans with the same seed but arbitrary different configs consume
    /// entropy in lockstep, so toggling fault classes on or off never
    /// shifts which draw decides which event. This is what makes the
    /// `disabled()` pipeline bit-identical to the uninstrumented system
    /// and campaigns reproducible across mixes.
    #[test]
    fn draw_schedule_is_independent_of_the_mix(
        seed in any::<u64>(),
        cfg_a in config_strategy(),
        cfg_b in config_strategy(),
        ops in prop::collection::vec(op_strategy(), 1..96),
    ) {
        let mut a = FaultPlan::new(seed, cfg_a);
        let mut b = FaultPlan::new(seed, cfg_b);
        for op in &ops {
            match *op {
                Op::Fate(units) => {
                    let _ = a.round_fate(units);
                    let _ = b.round_fate(units);
                }
                Op::Unit => {
                    let _ = a.unit_corrupted();
                    let _ = b.unit_corrupted();
                }
                Op::Read => {
                    let _ = a.read_fault();
                    let _ = b.read_fault();
                }
                Op::Replay(units) => {
                    let _ = a.replay_fate(units);
                    let _ = b.replay_fate(units);
                }
                Op::Splice(units) => {
                    let _ = a.splice_fate(units);
                    let _ = b.splice_fate(units);
                }
                Op::ReadReplay => {
                    let _ = a.read_replay();
                    let _ = b.read_replay();
                }
                Op::Entropy => {
                    let _ = a.entropy();
                    let _ = b.entropy();
                }
            }
        }
        // After identical call sequences both streams sit at the same
        // point; the next raw draw must agree regardless of the mixes.
        prop_assert_eq!(a.entropy(), b.entropy());
    }

    /// The plan is a pure function of (seed, config, call sequence):
    /// replaying the sequence reproduces every outcome and the stats.
    #[test]
    fn plans_are_deterministic(
        seed in any::<u64>(),
        cfg in config_strategy(),
        ops in prop::collection::vec(op_strategy(), 1..96),
    ) {
        let mut a = FaultPlan::new(seed, cfg);
        let mut b = FaultPlan::new(seed, cfg);
        for op in &ops {
            match *op {
                Op::Fate(units) => prop_assert_eq!(a.round_fate(units), b.round_fate(units)),
                Op::Unit => prop_assert_eq!(a.unit_corrupted(), b.unit_corrupted()),
                Op::Read => prop_assert_eq!(a.read_fault(), b.read_fault()),
                Op::Replay(units) => prop_assert_eq!(a.replay_fate(units), b.replay_fate(units)),
                Op::Splice(units) => prop_assert_eq!(a.splice_fate(units), b.splice_fate(units)),
                Op::ReadReplay => prop_assert_eq!(a.read_replay(), b.read_replay()),
                Op::Entropy => prop_assert_eq!(a.entropy(), b.entropy()),
            }
        }
        prop_assert_eq!(a.stats(), b.stats());
    }

    /// Replay picks always index into the round (and a splice pair is
    /// always distinct), for every seed and mix — the controllers index
    /// `last_round` unit lists with these picks unchecked.
    #[test]
    fn replay_picks_are_in_range(
        seed in any::<u64>(),
        cfg in config_strategy(),
        sizes in prop::collection::vec(0usize..32, 1..64),
    ) {
        let mut p = FaultPlan::new(seed, cfg);
        for units in sizes {
            if let Some(i) = p.replay_fate(units) {
                prop_assert!(i < units);
            }
            if let Some((i, j)) = p.splice_fate(units) {
                prop_assert!(i < units && j < units);
                prop_assert!(i != j);
            }
        }
    }

    /// Transient read faults always retry out within the bounded-retry
    /// budget the controllers use (`attempts` is 1 or 2).
    #[test]
    fn transient_reads_stay_within_the_retry_budget(
        seed in any::<u64>(),
        reads in 1usize..256,
    ) {
        let mut p = FaultPlan::new(seed, FaultConfig::aggressive());
        for _ in 0..reads {
            if let ReadFault::Transient { attempts } = p.read_fault() {
                prop_assert!(
                    (1..=2).contains(&attempts),
                    "transient fault wants {attempts} attempts"
                );
            }
        }
    }
}
