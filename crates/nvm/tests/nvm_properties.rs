//! Property-based tests for the NVM timing model, the persistence domain,
//! and the wear leveler.

use proptest::prelude::*;

use psoram_nvm::{AccessKind, NvmConfig, NvmController, StartGap, Wpq, WpqEntry};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A request can never complete before it arrives, and per-address
    /// service times are positive.
    #[test]
    fn completion_after_arrival(
        addrs in prop::collection::vec(0u64..(1 << 30), 1..64),
        kinds in prop::collection::vec(any::<bool>(), 64),
        channels in prop::sample::select(vec![1usize, 2, 4]),
    ) {
        let mut nvm = NvmController::new(NvmConfig::paper_pcm(channels));
        let mut t = 0u64;
        for (i, addr) in addrs.iter().enumerate() {
            let kind = if kinds[i % kinds.len()] { AccessKind::Write } else { AccessKind::Read };
            let done = nvm.access(addr & !63, kind, t);
            prop_assert!(done > t, "completion {done} not after arrival {t}");
            t = done;
        }
    }

    /// Serving the same batch on more channels is never slower.
    #[test]
    fn more_channels_never_slower(
        blocks in prop::collection::vec(0u64..(1 << 24), 4..80),
    ) {
        let addrs: Vec<u64> = blocks.iter().map(|b| b * 64).collect();
        let mut one = NvmController::new(NvmConfig::paper_pcm(1));
        let mut four = NvmController::new(NvmConfig::paper_pcm(4));
        let t1 = one.access_batch(addrs.clone(), AccessKind::Read, 0);
        let t4 = four.access_batch(addrs, AccessKind::Read, 0);
        prop_assert!(t4 <= t1, "4ch {t4} slower than 1ch {t1}");
    }

    /// Address mapping is deterministic and in range.
    #[test]
    fn address_mapping_in_range(addr in any::<u64>(), channels in 1usize..5) {
        let nvm = NvmController::new(NvmConfig::paper_pcm(channels));
        let (c1, b1) = nvm.map_address(addr);
        let (c2, b2) = nvm.map_address(addr);
        prop_assert_eq!((c1, b1), (c2, b2));
        prop_assert!(c1 < channels);
        prop_assert!(b1 < 8);
    }

    /// WPQ crash semantics: exactly the committed prefix survives, in
    /// order, regardless of the batch pattern.
    #[test]
    fn wpq_crash_preserves_committed_prefix(
        batch_sizes in prop::collection::vec(0usize..6, 1..8),
        commit_mask in prop::collection::vec(any::<bool>(), 8),
    ) {
        let mut q: Wpq<u64> = Wpq::new(1024);
        let mut expected = Vec::new();
        let mut next_val = 0u64;
        let mut open_uncommitted = false;
        for (i, &n) in batch_sizes.iter().enumerate() {
            if open_uncommitted {
                break; // an uncommitted batch must be the last activity
            }
            q.begin_batch().unwrap();
            let mut vals = Vec::new();
            for _ in 0..n {
                q.push(WpqEntry { addr: next_val, value: next_val }).unwrap();
                vals.push(next_val);
                next_val += 1;
            }
            if commit_mask[i % commit_mask.len()] {
                q.end_batch().unwrap();
                expected.extend(vals);
            } else {
                open_uncommitted = true;
            }
        }
        let survived: Vec<u64> = q.crash().into_iter().map(|e| e.value).collect();
        prop_assert_eq!(survived, expected);
    }

    /// Start-Gap stays a bijection from logical lines onto physical lines
    /// minus the gap, for any write pattern length.
    #[test]
    fn start_gap_bijection(lines in 2u64..64, writes in 0u64..500, interval in 1u64..16) {
        let mut sg = StartGap::new(lines, interval);
        for _ in 0..writes {
            sg.record_write();
        }
        let mut seen = std::collections::HashSet::new();
        for l in 0..lines {
            let p = sg.map(l);
            prop_assert!(p <= lines, "physical {p} beyond spare line");
            prop_assert!(seen.insert(p), "collision at physical {p}");
        }
    }

    /// Traffic accounting is exact: one record per access.
    #[test]
    fn stats_count_every_access(
        ops in prop::collection::vec((0u64..(1 << 20), any::<bool>()), 1..100),
    ) {
        let mut nvm = NvmController::new(NvmConfig::paper_pcm(2));
        let mut reads = 0u64;
        let mut writes = 0u64;
        for (block, is_write) in &ops {
            let kind = if *is_write { AccessKind::Write } else { AccessKind::Read };
            nvm.access(block * 64, kind, 0);
            if *is_write { writes += 1 } else { reads += 1 }
        }
        prop_assert_eq!(nvm.stats().reads, reads);
        prop_assert_eq!(nvm.stats().writes, writes);
        prop_assert_eq!(nvm.stats().read_bytes, reads * 64);
    }
}
