//! Property tests for the WPQ batch protocol: random operation sequences
//! over randomized capacities, checked against a scalar oracle that models
//! only counts — occupancy, committed entries, open entries, and the four
//! `WpqStats` accounting counters the controllers stall/split rounds on.

use proptest::prelude::*;

use psoram_nvm::{PersistenceDomain, Wpq, WpqEntry, WpqError, WpqStats};

/// One operation of the drainer protocol.
#[derive(Debug, Clone, Copy)]
enum Op {
    Begin,
    Push,
    End,
    Drain,
    Abort,
    Crash,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // Weighted toward pushes so capacities actually fill up.
    (0u8..10).prop_map(|k| match k {
        0 => Op::Begin,
        1..=5 => Op::Push,
        6 => Op::End,
        7 => Op::Drain,
        8 => Op::Abort,
        _ => Op::Crash,
    })
}

/// The scalar oracle: what the queue's counters must be after each op,
/// derived from first principles of the bracketed batch protocol.
#[derive(Debug, Default, Clone, Copy)]
struct Oracle {
    committed: usize,
    open: usize,
    in_batch: bool,
    stats: WpqStats,
}

impl Oracle {
    fn len(&self) -> usize {
        self.committed + self.open
    }

    /// Applies `op` to the oracle, returning the typed error (if any)
    /// the real queue must produce.
    fn apply(&mut self, op: Op, capacity: usize) -> Option<WpqError> {
        match op {
            Op::Begin => {
                if self.in_batch {
                    self.stats.protocol_errors += 1;
                    Some(WpqError::BatchAlreadyOpen)
                } else {
                    self.in_batch = true;
                    None
                }
            }
            Op::Push => {
                if !self.in_batch {
                    self.stats.protocol_errors += 1;
                    Some(WpqError::NoBatchOpen)
                } else if self.len() >= capacity {
                    self.stats.full_rejections += 1;
                    Some(WpqError::Full { capacity })
                } else {
                    self.open += 1;
                    self.stats.entries_pushed += 1;
                    self.stats.max_occupancy = self.stats.max_occupancy.max(self.len());
                    None
                }
            }
            Op::End => {
                if !self.in_batch {
                    self.stats.protocol_errors += 1;
                    Some(WpqError::NoBatchOpen)
                } else {
                    self.in_batch = false;
                    self.committed += self.open;
                    self.open = 0;
                    self.stats.batches_committed += 1;
                    None
                }
            }
            Op::Drain => {
                self.stats.entries_drained += self.committed as u64;
                self.committed = 0;
                None
            }
            Op::Abort => {
                self.open = 0;
                self.in_batch = false;
                None
            }
            Op::Crash => {
                self.open = 0;
                self.in_batch = false;
                self.committed = 0;
                None
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Under any operation sequence and any capacity, the queue's typed
    /// errors, occupancy, and every `WpqStats` counter match the scalar
    /// oracle exactly.
    #[test]
    fn wpq_accounting_matches_scalar_oracle(
        capacity in 1usize..24,
        ops in prop::collection::vec(op_strategy(), 1..120),
    ) {
        let mut q: Wpq<u64> = Wpq::new(capacity);
        let mut oracle = Oracle::default();
        for (i, &op) in ops.iter().enumerate() {
            let entry = WpqEntry { addr: i as u64, value: i as u64 };
            let got = match op {
                Op::Begin => q.begin_batch().err(),
                Op::Push => q.push(entry).err(),
                Op::End => q.end_batch().err(),
                Op::Drain => {
                    let drained = q.drain_committed();
                    prop_assert_eq!(drained.len(), oracle.committed, "drain length at op {}", i);
                    None
                }
                Op::Abort => {
                    q.abort_batch();
                    None
                }
                Op::Crash => {
                    let survivors = q.crash();
                    prop_assert_eq!(survivors.len(), oracle.committed, "crash survivors at op {}", i);
                    None
                }
            };
            let expected = oracle.apply(op, capacity);
            prop_assert_eq!(got, expected, "typed error mismatch at op {} ({:?})", i, op);
            prop_assert_eq!(q.len(), oracle.len(), "occupancy at op {}", i);
            prop_assert_eq!(q.open_len(), oracle.open, "open entries at op {}", i);
            prop_assert_eq!(q.in_batch(), oracle.in_batch, "bracket state at op {}", i);
            prop_assert!(q.len() <= capacity, "occupancy above capacity at op {}", i);
            prop_assert_eq!(q.stats(), oracle.stats, "stats diverged at op {}", i);
        }
    }

    /// Filling a queue past a random capacity produces exactly
    /// `pushes - capacity` full rejections and caps `max_occupancy` at the
    /// capacity; a stall-drain-retry then accepts the rejected entries.
    #[test]
    fn overfill_stall_and_retry(
        capacity in 1usize..16,
        extra in 1usize..16,
    ) {
        let mut q: Wpq<u32> = Wpq::new(capacity);
        q.begin_batch().unwrap();
        let mut rejected = 0u64;
        for i in 0..capacity + extra {
            match q.push(WpqEntry { addr: i as u64, value: i as u32 }) {
                Ok(()) => {}
                Err(WpqError::Full { capacity: c }) => {
                    prop_assert_eq!(c, capacity);
                    rejected += 1;
                }
                Err(e) => prop_assert!(false, "unexpected error {e:?}"),
            }
        }
        prop_assert_eq!(rejected, extra as u64);
        prop_assert_eq!(q.stats().full_rejections, extra as u64);
        prop_assert_eq!(q.stats().max_occupancy, capacity);

        // The controller's stall path: commit, drain, reopen, retry —
        // draining again whenever the retried entries themselves fill up.
        q.end_batch().unwrap();
        prop_assert_eq!(q.drain_committed().len(), capacity);
        q.begin_batch().unwrap();
        let mut batches = 1u64;
        for i in 0..extra {
            if let Err(WpqError::Full { .. }) = q.push(WpqEntry { addr: i as u64, value: i as u32 })
            {
                q.end_batch().unwrap();
                q.drain_committed();
                q.begin_batch().unwrap();
                batches += 1;
                q.push(WpqEntry { addr: i as u64, value: i as u32 }).unwrap();
            }
        }
        q.end_batch().unwrap();
        prop_assert_eq!(q.stats().entries_pushed, (capacity + extra) as u64);
        prop_assert_eq!(q.stats().batches_committed, 1 + batches);
    }

    /// The persistence domain keeps both queues' brackets in lockstep
    /// under random round/push/commit/crash interleavings, and a crash
    /// never exposes a half-committed round on either side.
    #[test]
    fn domain_lockstep_under_random_protocol(
        data_cap in 1usize..12,
        posmap_cap in 1usize..12,
        ops in prop::collection::vec((0u8..5, any::<bool>()), 1..80),
    ) {
        let mut pd: PersistenceDomain<u64, u64> = PersistenceDomain::new(data_cap, posmap_cap);
        let mut committed = (0usize, 0usize);
        let mut open = (0usize, 0usize);
        let mut in_round = false;
        for &(k, side) in &ops {
            match k {
                0 => {
                    let r = pd.begin_round();
                    prop_assert_eq!(r.is_err(), in_round);
                    in_round = true;
                }
                1 => {
                    let e = WpqEntry { addr: 0, value: 0 };
                    let (res, cap, count, opens) = if side {
                        (pd.push_data(e), data_cap, committed.0, &mut open.0)
                    } else {
                        (pd.push_posmap(e), posmap_cap, committed.1, &mut open.1)
                    };
                    if in_round && count + *opens < cap {
                        prop_assert!(res.is_ok());
                        *opens += 1;
                    } else {
                        prop_assert!(res.is_err());
                    }
                }
                2 => {
                    let r = pd.commit_round();
                    prop_assert_eq!(r.is_ok(), in_round);
                    if in_round {
                        committed.0 += open.0;
                        committed.1 += open.1;
                        open = (0, 0);
                        in_round = false;
                    }
                }
                3 => {
                    let (d, p) = pd.drain();
                    prop_assert_eq!((d.len(), p.len()), committed);
                    committed = (0, 0);
                }
                _ => {
                    let (d, p) = pd.crash();
                    prop_assert_eq!((d.len(), p.len()), committed,
                        "crash must flush exactly the committed rounds");
                    committed = (0, 0);
                    open = (0, 0);
                    in_round = false;
                }
            }
            // Lockstep invariant: the two queues always agree on bracket state.
            prop_assert_eq!(pd.data_wpq().in_batch(), pd.posmap_wpq().in_batch());
            prop_assert_eq!(pd.data_wpq().in_batch(), in_round);
        }
    }
}
