//! Start-Gap wear leveling (Qureshi et al., MICRO'09).
//!
//! The paper highlights that PS-ORAM is "friendly to NVM lifetime"; real
//! PCM deployments additionally rotate the physical address space so no
//! cell wears out early. Start-Gap keeps one spare line and moves a *gap*
//! through the physical space, shifting every logical line by one position
//! per full rotation — simple algebra, no remap table.

use serde::{Deserialize, Serialize};

/// A gap-move event: the controller must copy one line into the gap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GapMove {
    /// Physical line whose content moves into the old gap position.
    pub from_line: u64,
    /// Physical line that becomes the new gap.
    pub to_line: u64,
}

/// Start-Gap address rotation over `lines` logical lines (using `lines + 1`
/// physical lines).
///
/// # Examples
///
/// ```
/// use psoram_nvm::StartGap;
///
/// let mut sg = StartGap::new(8, 4); // move the gap every 4 writes
/// let before = sg.map(3);
/// for _ in 0..4 {
///     sg.record_write();
/// }
/// // After a gap move some line's mapping has shifted.
/// let moved = (0..8).any(|l| sg.map(l) != { let s = StartGap::new(8, 4); s.map(l) });
/// assert!(moved || before == sg.map(3));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StartGap {
    lines: u64,
    start: u64,
    /// Physical position of the gap, in `0..=lines`.
    gap: u64,
    interval: u64,
    writes_since_move: u64,
    gap_moves: u64,
}

impl StartGap {
    /// Creates a Start-Gap mapper over `lines` logical lines, moving the
    /// gap after every `interval` writes.
    ///
    /// # Panics
    ///
    /// Panics if `lines` or `interval` is zero.
    pub fn new(lines: u64, interval: u64) -> Self {
        assert!(lines > 0, "need at least one line");
        assert!(interval > 0, "gap move interval must be positive");
        StartGap {
            lines,
            start: 0,
            gap: lines,
            interval,
            writes_since_move: 0,
            gap_moves: 0,
        }
    }

    /// Maps a logical line to its current physical line.
    ///
    /// # Panics
    ///
    /// Panics if `logical >= lines`.
    pub fn map(&self, logical: u64) -> u64 {
        assert!(logical < self.lines, "logical line out of range");
        let pa = (logical + self.start) % self.lines;
        if pa >= self.gap {
            pa + 1
        } else {
            pa
        }
    }

    /// Records one write; every `interval` writes the gap moves one
    /// position and the required line copy is returned.
    pub fn record_write(&mut self) -> Option<GapMove> {
        self.writes_since_move += 1;
        if self.writes_since_move < self.interval {
            return None;
        }
        self.writes_since_move = 0;
        self.gap_moves += 1;
        let mv = if self.gap == 0 {
            // Full rotation complete: gap wraps to the top and the start
            // shifts by one, sliding every logical line.
            self.start = (self.start + 1) % self.lines;
            let mv = GapMove {
                from_line: self.lines,
                to_line: 0,
            };
            self.gap = self.lines;
            mv
        } else {
            let mv = GapMove {
                from_line: self.gap - 1,
                to_line: self.gap,
            };
            self.gap -= 1;
            mv
        };
        Some(mv)
    }

    /// Number of gap moves performed (each costs one extra line write).
    pub fn gap_moves(&self) -> u64 {
        self.gap_moves
    }

    /// Number of logical lines managed.
    pub fn lines(&self) -> u64 {
        self.lines
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn mapping_is_injective_at_all_times() {
        let mut sg = StartGap::new(16, 1);
        for step in 0..200 {
            let mapped: HashSet<u64> = (0..16).map(|l| sg.map(l)).collect();
            assert_eq!(mapped.len(), 16, "collision at step {step}");
            assert!(mapped.iter().all(|&p| p <= 16));
            // The gap line is never mapped.
            assert!(!mapped.contains(&sg.gap));
            sg.record_write();
        }
    }

    #[test]
    fn gap_moves_every_interval() {
        let mut sg = StartGap::new(8, 4);
        let mut moves = 0;
        for _ in 0..40 {
            if sg.record_write().is_some() {
                moves += 1;
            }
        }
        assert_eq!(moves, 10);
        assert_eq!(sg.gap_moves(), 10);
    }

    #[test]
    fn full_rotation_shifts_start() {
        let lines = 4u64;
        let mut sg = StartGap::new(lines, 1);
        let initial: Vec<u64> = (0..lines).map(|l| sg.map(l)).collect();
        // One full rotation = lines + 1 gap moves.
        for _ in 0..=lines {
            sg.record_write();
        }
        let after: Vec<u64> = (0..lines).map(|l| sg.map(l)).collect();
        assert_ne!(initial, after, "a full rotation must shift the mapping");
    }

    #[test]
    fn hot_line_wear_is_spread_over_rotations() {
        // Hammer logical line 0 and count physical-line write distribution.
        let lines = 8u64;
        let mut sg = StartGap::new(lines, 8);
        let mut wear = vec![0u64; lines as usize + 1];
        for _ in 0..20_000 {
            wear[sg.map(0) as usize] += 1;
            if let Some(mv) = sg.record_write() {
                wear[mv.to_line as usize] += 1; // the copy write
            }
        }
        let touched = wear.iter().filter(|&&w| w > 0).count();
        assert!(
            touched >= lines as usize,
            "hot line should rotate over (nearly) all physical lines, touched {touched}"
        );
        let max = *wear.iter().max().unwrap() as f64;
        let avg = wear.iter().sum::<u64>() as f64 / wear.len() as f64;
        assert!(
            max / avg < 3.0,
            "wear still concentrated: max {max}, avg {avg:.0}"
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_logical_rejected() {
        StartGap::new(4, 1).map(4);
    }
}
