//! Wear leveling, endurance modeling, and crash-consistent line
//! retirement for the NVM backend.
//!
//! The paper highlights that PS-ORAM is "friendly to NVM lifetime", but an
//! ORAM's physical write pattern is brutally skewed — the root bucket is
//! rewritten on every access — so a production deployment dies of wear-out
//! long before its mean line does. This module supplies the three pieces
//! the endurance adversary needs:
//!
//! * [`StartGap`] — the classic algebraic rotation (Qureshi et al.,
//!   MICRO'09): one spare line and a moving *gap* shift every logical line
//!   by one position per full rotation, no remap table required.
//! * [`EnduranceModel`] — seeded per-line cell budgets around a
//!   configurable mean, so hot lines exhaust their budget first.
//! * [`RemapTable`] — a spare-line pool with retire-on-conviction: when a
//!   line is convicted (stuck reads past its budget), it is remapped onto
//!   a spare and the content is repaired from the redundant copy.
//!
//! [`WearEngine`] ties them together under the persistence domain with a
//! *staged vs. durable* mapping discipline: gap moves and retirements
//! mutate the staged mapping, [`WearEngine::commit`] (called inside the
//! persist engine's commit round) makes them durable, and
//! [`WearEngine::revert`] (called at a crash) rolls the staged mapping
//! back — so a crash mid-gap-move or mid-retirement recovers to a single
//! consistent mapping and no address ever resolves to two lines. Per-line
//! write counts are *device* truth (programmed cells do not un-program)
//! and are never rolled back.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

/// Bytes per wear-tracked media line (one cacheline persist unit).
pub const WEAR_LINE_BYTES: u64 = 64;

/// Base of the spare-line id space handed out by [`RemapTable`]. Far
/// above any simulated NVM line so spares never collide with the
/// address-derived line ids.
pub const SPARE_LINE_BASE: u64 = 1 << 48;

/// A gap-move event: the controller must copy one line into the gap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GapMove {
    /// Physical line whose content moves into the old gap position.
    pub from_line: u64,
    /// Physical line that becomes the new gap.
    pub to_line: u64,
}

/// Start-Gap address rotation over `lines` logical lines (using `lines + 1`
/// physical lines).
///
/// # Examples
///
/// ```
/// use psoram_nvm::{GapMove, StartGap};
///
/// let mut sg = StartGap::new(8, 4); // move the gap every 4 writes
/// let before: Vec<u64> = (0..8).map(|l| sg.map(l)).collect();
/// let mv = (0..4).find_map(|_| sg.record_write()).expect("4 writes move the gap");
/// // The first move slides the line just below the gap into the gap...
/// assert_eq!(mv, GapMove { from_line: 7, to_line: 8 });
/// let after: Vec<u64> = (0..8).map(|l| sg.map(l)).collect();
/// // ...so exactly one logical line's mapping changed, onto the old gap.
/// let changed: Vec<usize> = (0..8).filter(|&l| before[l] != after[l]).collect();
/// assert_eq!(changed, vec![7]);
/// assert_eq!(after[7], 8);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StartGap {
    lines: u64,
    start: u64,
    /// Physical position of the gap, in `0..=lines`.
    gap: u64,
    interval: u64,
    writes_since_move: u64,
    gap_moves: u64,
}

impl StartGap {
    /// Creates a Start-Gap mapper over `lines` logical lines, moving the
    /// gap after every `interval` writes.
    ///
    /// # Panics
    ///
    /// Panics if `lines` or `interval` is zero.
    pub fn new(lines: u64, interval: u64) -> Self {
        assert!(lines > 0, "need at least one line");
        assert!(interval > 0, "gap move interval must be positive");
        StartGap {
            lines,
            start: 0,
            gap: lines,
            interval,
            writes_since_move: 0,
            gap_moves: 0,
        }
    }

    /// Maps a logical line to its current physical line.
    ///
    /// # Panics
    ///
    /// Panics if `logical >= lines`.
    pub fn map(&self, logical: u64) -> u64 {
        assert!(logical < self.lines, "logical line out of range");
        let pa = (logical + self.start) % self.lines;
        if pa >= self.gap {
            pa + 1
        } else {
            pa
        }
    }

    /// Records one write; every `interval` writes the gap moves one
    /// position and the required line copy is returned.
    pub fn record_write(&mut self) -> Option<GapMove> {
        self.writes_since_move += 1;
        if self.writes_since_move < self.interval {
            return None;
        }
        self.writes_since_move = 0;
        self.gap_moves += 1;
        let mv = if self.gap == 0 {
            // Full rotation complete: gap wraps to the top and the start
            // shifts by one, sliding every logical line.
            self.start = (self.start + 1) % self.lines;
            let mv = GapMove {
                from_line: self.lines,
                to_line: 0,
            };
            self.gap = self.lines;
            mv
        } else {
            let mv = GapMove {
                from_line: self.gap - 1,
                to_line: self.gap,
            };
            self.gap -= 1;
            mv
        };
        Some(mv)
    }

    /// Number of gap moves performed (each costs one extra line write).
    pub fn gap_moves(&self) -> u64 {
        self.gap_moves
    }

    /// Number of logical lines managed.
    pub fn lines(&self) -> u64 {
        self.lines
    }

    /// Current gap position (for mapping digests and invariant checks).
    pub fn gap(&self) -> u64 {
        self.gap
    }

    /// Current start offset (for mapping digests and invariant checks).
    pub fn start(&self) -> u64 {
        self.start
    }
}

/// Which wear-leveling design point sits under the persistence domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum WearScheme {
    /// No leveling: logical lines map to themselves, convictions have no
    /// spare to retire onto (the device fails in place).
    None,
    /// Start-Gap rotation (one spare line, algebraic shift).
    StartGap,
    /// Spare-pool retirement: convicted lines remap onto spares.
    Remap,
}

impl WearScheme {
    /// Every design point, in sweep order.
    pub fn all() -> [WearScheme; 3] {
        [WearScheme::None, WearScheme::StartGap, WearScheme::Remap]
    }

    /// Stable lower-case label (used in reports and metric keys).
    pub fn label(self) -> &'static str {
        match self {
            WearScheme::None => "none",
            WearScheme::StartGap => "start_gap",
            WearScheme::Remap => "remap",
        }
    }
}

impl std::fmt::Display for WearScheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Configuration of the [`WearEngine`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WearConfig {
    /// The leveling / retirement design point.
    pub scheme: WearScheme,
    /// Mean per-line cell budget (writes before the line wears out).
    pub mean_endurance: f64,
    /// Relative spread of the per-line budget around the mean (0.1 =
    /// ±10%), seeded per line by the [`EnduranceModel`].
    pub endurance_spread: f64,
    /// Start-Gap rotation interval (gap moves every this many writes).
    pub gap_interval: u64,
    /// Spare lines available to the [`RemapTable`] (Remap scheme only).
    pub spare_lines: u64,
    /// Uniform pre-aging: writes every line is assumed to already carry
    /// (models a near-end-of-life device without simulating years).
    pub preage_writes: u64,
}

impl WearConfig {
    /// The paper-scale endurance point: 10^7 ± 10% cell budget, the
    /// MICRO'09 gap interval, a small spare pool, no pre-aging.
    pub fn paper_default(scheme: WearScheme) -> Self {
        WearConfig {
            scheme,
            mean_endurance: 1e7,
            endurance_spread: 0.10,
            gap_interval: 100,
            spare_lines: 64,
            preage_writes: 0,
        }
    }

    /// A stress point for campaigns: tiny pre-aged budgets so wear faults
    /// fire within a few hundred accesses instead of years.
    pub fn stress(scheme: WearScheme) -> Self {
        WearConfig {
            scheme,
            mean_endurance: 512.0,
            endurance_spread: 0.25,
            gap_interval: 16,
            spare_lines: 16,
            preage_writes: 384,
        }
    }
}

/// Deterministic seeded per-line cell budgets.
///
/// Stateless: `budget(line)` hashes `(seed, line)` through a SplitMix64
/// finalizer into a uniform budget in `mean * (1 ± spread)`, so two
/// models with the same seed agree on every line forever.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnduranceModel {
    seed: u64,
    mean: f64,
    spread: f64,
}

impl EnduranceModel {
    /// Creates a model with the given mean budget and relative spread.
    pub fn new(seed: u64, mean: f64, spread: f64) -> Self {
        EnduranceModel {
            // Avoid the all-zeros fixed point without perturbing seeds.
            seed: seed ^ 0xBB67_AE85_84CA_A73B,
            mean,
            spread,
        }
    }

    /// The seeded cell budget of `line` (always at least 1).
    pub fn budget(&self, line: u64) -> u64 {
        let mut z = self
            .seed
            .wrapping_add(line.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        let u = (z >> 11) as f64 / (1u64 << 53) as f64; // uniform [0, 1)
        let budget = self.mean * (1.0 + self.spread * (2.0 * u - 1.0));
        budget.max(1.0) as u64
    }
}

/// The spare-line retirement map: convicted physical lines remap onto
/// spares drawn from a finite pool. Chains are allowed (a spare can wear
/// out and retire onto another spare); [`RemapTable::resolve`] follows
/// them to the terminal line.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RemapTable {
    /// Retired physical line → its replacement (possibly itself retired).
    map: BTreeMap<u64, u64>,
    /// Unused spares, kept descending so `pop` hands them out in order.
    free: Vec<u64>,
    retired: u64,
}

impl RemapTable {
    /// Creates a table with `spares` spare lines in its pool.
    pub fn new(spares: u64) -> Self {
        RemapTable {
            map: BTreeMap::new(),
            free: (0..spares).rev().map(|i| SPARE_LINE_BASE + i).collect(),
            retired: 0,
        }
    }

    /// Follows the retirement chain from `line` to its terminal
    /// replacement (identity when the line was never retired).
    pub fn resolve(&self, line: u64) -> u64 {
        let mut cur = line;
        // The chain is acyclic by construction (spares are handed out
        // once); bound the walk anyway so a corrupted table cannot hang.
        for _ in 0..=self.map.len() {
            match self.map.get(&cur) {
                Some(&next) => cur = next,
                None => return cur,
            }
        }
        cur
    }

    /// Retires `line` onto a fresh spare, returning the spare — or `None`
    /// when the pool is dry (the device has no capacity left to degrade
    /// into). `line` must be terminal (resolve before convicting).
    pub fn retire(&mut self, line: u64) -> Option<u64> {
        debug_assert!(
            !self.map.contains_key(&line),
            "retiring a non-terminal line"
        );
        let spare = self.free.pop()?;
        self.map.insert(line, spare);
        self.retired += 1;
        Some(spare)
    }

    /// Lines retired so far.
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// Spares still available.
    pub fn spares_left(&self) -> u64 {
        self.free.len() as u64
    }

    /// `true` when no two retirement chains share a terminal line — the
    /// "no address resolves to two lines" half of the mapping invariant
    /// (the other half, injectivity of Start-Gap, is proven separately).
    pub fn is_injective(&self) -> bool {
        // Interior chain nodes (a retired spare) share their head's
        // terminal by construction; the invariant is over chain *heads*:
        // two distinct still-addressable lines never share a terminal.
        let interior: std::collections::BTreeSet<u64> = self.map.values().copied().collect();
        let mut seen = std::collections::BTreeSet::new();
        self.map
            .keys()
            .filter(|k| !interior.contains(k))
            .all(|&k| seen.insert(self.resolve(k)))
    }
}

/// Counters the wear engine accumulates (monotonic, never rolled back).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WearStats {
    /// Media line writes recorded (including gap-move copies and
    /// retirement repair copies).
    pub writes_recorded: u64,
    /// Start-Gap moves performed.
    pub gap_moves: u64,
    /// Lines convicted by the fault layer (stuck past budget).
    pub convictions: u64,
    /// Convictions that retired onto a spare.
    pub retirements: u64,
    /// Repair copies written while retiring (content restored from the
    /// redundant copy onto the spare).
    pub repairs: u64,
    /// Mapping commits (staged state made durable in a persist round).
    pub map_commits: u64,
    /// Mapping reverts (staged state rolled back by a crash).
    pub map_reverts: u64,
}

/// The complete wear-leveling state, staged or durable.
#[derive(Debug, Clone, PartialEq)]
struct MapState {
    start_gap: Option<StartGap>,
    remap: RemapTable,
}

impl MapState {
    fn resolve(&self, line: u64) -> u64 {
        let leveled = match &self.start_gap {
            Some(sg) if line < sg.lines() => sg.map(line),
            _ => line,
        };
        self.remap.resolve(leveled)
    }
}

/// Outcome of convicting a worn line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Conviction {
    /// The line was retired onto `spare` and its content repaired from
    /// the redundant copy (staged; durable at the next commit round).
    Retired {
        /// The spare line now serving the retired line's address.
        spare: u64,
    },
    /// No spare capacity (or no retirement layer): the line is dead in
    /// place and the controller must fail safe.
    Exhausted,
}

/// The endurance adversary's bookkeeping under the persistence domain:
/// per-line write counts, seeded budgets, and the crash-consistent
/// leveling/retirement mapping.
///
/// Mapping mutations (gap moves, retirements) stage first;
/// [`WearEngine::commit`] — invoked inside the persist engine's commit
/// round — makes them durable, and [`WearEngine::revert`] — invoked at a
/// crash — rolls them back, so recovery always sees one consistent
/// mapping. Write counts are physical-cell truth and survive both.
#[derive(Debug, Clone)]
pub struct WearEngine {
    cfg: WearConfig,
    endurance: EnduranceModel,
    durable: MapState,
    staged: MapState,
    /// Physical line → lifetime writes. BTreeMap for deterministic
    /// iteration (digests, hottest-line queries).
    writes: BTreeMap<u64, u64>,
    stats: WearStats,
}

impl WearEngine {
    /// Creates an engine over a device of `lines` media lines.
    ///
    /// # Panics
    ///
    /// Panics if `lines` is zero.
    pub fn new(seed: u64, lines: u64, cfg: WearConfig) -> Self {
        assert!(lines > 0, "need at least one media line");
        let start_gap = (cfg.scheme == WearScheme::StartGap)
            .then(|| StartGap::new(lines, cfg.gap_interval.max(1)));
        let spares = if cfg.scheme == WearScheme::Remap {
            cfg.spare_lines
        } else {
            0
        };
        let state = MapState {
            start_gap,
            remap: RemapTable::new(spares),
        };
        WearEngine {
            cfg,
            endurance: EnduranceModel::new(seed, cfg.mean_endurance, cfg.endurance_spread),
            durable: state.clone(),
            staged: state,
            writes: BTreeMap::new(),
            stats: WearStats::default(),
        }
    }

    /// The engine's configuration.
    pub fn config(&self) -> WearConfig {
        self.cfg
    }

    fn line_of(addr: u64) -> u64 {
        addr / WEAR_LINE_BYTES
    }

    /// Records one media write at `addr` through the staged mapping; a
    /// Start-Gap rotation triggered by the write stages its gap move and
    /// charges the copy write.
    pub fn record_write(&mut self, addr: u64) {
        let phys = self.staged.resolve(Self::line_of(addr));
        *self.writes.entry(phys).or_insert(0) += 1;
        self.stats.writes_recorded += 1;
        if let Some(sg) = self.staged.start_gap.as_mut() {
            if let Some(mv) = sg.record_write() {
                // The gap move copies one line: extra media wear, staged
                // mapping shift until the next commit round.
                *self.writes.entry(mv.to_line).or_insert(0) += 1;
                self.stats.gap_moves += 1;
                self.stats.writes_recorded += 1;
            }
        }
    }

    /// Records a write flushed by the ADR energy reserve *at* the crash:
    /// the cells are programmed (wear is real) but the leveler does not
    /// advance — any staged rotation is about to be reverted anyway.
    pub fn record_crash_write(&mut self, addr: u64) {
        let phys = self.durable.resolve(Self::line_of(addr));
        *self.writes.entry(phys).or_insert(0) += 1;
        self.stats.writes_recorded += 1;
    }

    /// Wear fraction (lifetime writes / seeded budget, plus pre-aging) of
    /// the physical line currently serving `addr`. 1.0 means the budget
    /// is exhausted; values above 1.0 mean the line is living on borrowed
    /// time.
    pub fn fraction(&self, addr: u64) -> f64 {
        self.fraction_of_line(self.staged.resolve(Self::line_of(addr)))
    }

    fn fraction_of_line(&self, phys: u64) -> f64 {
        let writes = self.writes.get(&phys).copied().unwrap_or(0) + self.cfg.preage_writes;
        writes as f64 / self.endurance.budget(phys) as f64
    }

    /// The most-worn physical line among the lines serving `addrs`,
    /// with its wear fraction (ties break toward the lowest line id;
    /// empty input reports line 0 at fraction 0).
    pub fn hottest(&self, addrs: &[u64]) -> (u64, f64) {
        let mut best = (0u64, 0.0f64);
        let mut found = false;
        for &addr in addrs {
            let phys = self.staged.resolve(Self::line_of(addr));
            let frac = self.fraction_of_line(phys);
            if !found || frac > best.1 || (frac == best.1 && phys < best.0) {
                best = (phys, frac);
                found = true;
            }
        }
        best
    }

    /// Convicts the physical line `phys` (stuck reads past its budget).
    /// Under the Remap scheme with spare capacity left, the line retires
    /// onto a spare (staged) and the repair copy is charged; otherwise
    /// the device is exhausted at that line.
    pub fn convict(&mut self, phys: u64) -> Conviction {
        self.stats.convictions += 1;
        if self.cfg.scheme == WearScheme::Remap {
            let terminal = self.staged.remap.resolve(phys);
            if let Some(spare) = self.staged.remap.retire(terminal) {
                self.stats.retirements += 1;
                self.stats.repairs += 1;
                // Repairing from the redundant copy programs the spare.
                *self.writes.entry(spare).or_insert(0) += 1;
                return Conviction::Retired { spare };
            }
        }
        Conviction::Exhausted
    }

    /// Makes the staged mapping durable. Called inside the persist
    /// engine's commit round: the mapping update rides the same atomic
    /// commit point as the round it belongs to.
    pub fn commit(&mut self) {
        if self.staged != self.durable {
            self.durable = self.staged.clone();
            self.stats.map_commits += 1;
        }
    }

    /// Rolls the staged mapping back to the last durable state. Called at
    /// a crash: an in-flight gap move or retirement that missed its
    /// commit round never happened.
    pub fn revert(&mut self) {
        if self.staged != self.durable {
            self.staged = self.durable.clone();
            self.stats.map_reverts += 1;
        }
    }

    /// `true` while the staged mapping has mutations the next commit
    /// round will make durable.
    pub fn has_staged_changes(&self) -> bool {
        self.staged != self.durable
    }

    /// FNV-1a digest of the *durable* mapping state — what recovery would
    /// reconstruct. Folds the scheme, the Start-Gap registers, and every
    /// retirement chain entry.
    pub fn mapping_digest(&self) -> u64 {
        let mut h = 0xCBF2_9CE4_8422_2325u64;
        let mut fold = |v: u64| {
            for b in v.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
        };
        fold(self.cfg.scheme as u64);
        if let Some(sg) = &self.durable.start_gap {
            fold(sg.start());
            fold(sg.gap());
            fold(sg.gap_moves());
        }
        for (&from, &to) in &self.durable.remap.map {
            fold(from);
            fold(to);
        }
        fold(self.durable.remap.spares_left());
        h
    }

    /// Resolves `addr` through the staged mapping (current serving line).
    pub fn resolve(&self, addr: u64) -> u64 {
        self.staged.resolve(Self::line_of(addr))
    }

    /// Resolves `addr` through the durable mapping (what a crash
    /// recovery would use).
    pub fn durable_resolve(&self, addr: u64) -> u64 {
        self.durable.resolve(Self::line_of(addr))
    }

    /// Accumulated counters.
    pub fn stats(&self) -> WearStats {
        self.stats
    }

    /// Lifetime writes of the hottest physical line.
    pub fn max_line_writes(&self) -> u64 {
        self.writes.values().copied().max().unwrap_or(0)
    }

    /// Physical lines with at least one recorded write.
    pub fn lines_touched(&self) -> u64 {
        self.writes.len() as u64
    }

    /// The highest wear fraction across every touched line.
    pub fn max_fraction(&self) -> f64 {
        self.writes
            .keys()
            .map(|&l| self.fraction_of_line(l))
            .fold(0.0, f64::max)
    }

    /// The `n` most-written physical lines as `(line, writes)`, hottest
    /// first (ties break toward the lowest line id). Deterministic.
    pub fn hottest_lines(&self, n: usize) -> Vec<(u64, u64)> {
        let mut all: Vec<(u64, u64)> = self.writes.iter().map(|(&l, &w)| (l, w)).collect();
        all.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        all.truncate(n);
        all
    }

    /// Spares still available to the retirement layer.
    pub fn spares_left(&self) -> u64 {
        self.staged.remap.spares_left()
    }

    /// `true` when both the staged and the durable retirement maps are
    /// injective (no two retired lines share a terminal replacement).
    pub fn mapping_is_injective(&self) -> bool {
        self.staged.remap.is_injective() && self.durable.remap.is_injective()
    }
}

impl psoram_obsv::MetricsSource for WearEngine {
    fn publish(&self, prefix: &str, reg: &mut psoram_obsv::MetricsRegistry) {
        use psoram_obsv::MetricsRegistry as R;
        let s = self.stats;
        reg.set_counter(&R::key(prefix, "writes_recorded"), s.writes_recorded);
        reg.set_counter(&R::key(prefix, "gap_moves"), s.gap_moves);
        reg.set_counter(&R::key(prefix, "convictions"), s.convictions);
        reg.set_counter(&R::key(prefix, "retirements"), s.retirements);
        reg.set_counter(&R::key(prefix, "repairs"), s.repairs);
        reg.set_counter(&R::key(prefix, "map_commits"), s.map_commits);
        reg.set_counter(&R::key(prefix, "map_reverts"), s.map_reverts);
        reg.set_gauge(&R::key(prefix, "max_fraction"), self.max_fraction());
        reg.set_gauge(
            &R::key(prefix, "lines_touched"),
            self.lines_touched() as f64,
        );
        reg.set_gauge(&R::key(prefix, "spares_left"), self.spares_left() as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn mapping_is_injective_at_all_times() {
        let mut sg = StartGap::new(16, 1);
        for step in 0..200 {
            let mapped: HashSet<u64> = (0..16).map(|l| sg.map(l)).collect();
            assert_eq!(mapped.len(), 16, "collision at step {step}");
            assert!(mapped.iter().all(|&p| p <= 16));
            // The gap line is never mapped.
            assert!(!mapped.contains(&sg.gap));
            sg.record_write();
        }
    }

    #[test]
    fn gap_moves_every_interval() {
        let mut sg = StartGap::new(8, 4);
        let mut moves = 0;
        for _ in 0..40 {
            if sg.record_write().is_some() {
                moves += 1;
            }
        }
        assert_eq!(moves, 10);
        assert_eq!(sg.gap_moves(), 10);
    }

    #[test]
    fn full_rotation_shifts_start() {
        let lines = 4u64;
        let mut sg = StartGap::new(lines, 1);
        let initial: Vec<u64> = (0..lines).map(|l| sg.map(l)).collect();
        // One full rotation = lines + 1 gap moves.
        for _ in 0..=lines {
            sg.record_write();
        }
        let after: Vec<u64> = (0..lines).map(|l| sg.map(l)).collect();
        assert_ne!(initial, after, "a full rotation must shift the mapping");
    }

    #[test]
    fn hot_line_wear_is_spread_over_rotations() {
        // Hammer logical line 0 and count physical-line write distribution.
        let lines = 8u64;
        let mut sg = StartGap::new(lines, 8);
        let mut wear = vec![0u64; lines as usize + 1];
        for _ in 0..20_000 {
            wear[sg.map(0) as usize] += 1;
            if let Some(mv) = sg.record_write() {
                wear[mv.to_line as usize] += 1; // the copy write
            }
        }
        let touched = wear.iter().filter(|&&w| w > 0).count();
        assert!(
            touched >= lines as usize,
            "hot line should rotate over (nearly) all physical lines, touched {touched}"
        );
        let max = *wear.iter().max().unwrap() as f64;
        let avg = wear.iter().sum::<u64>() as f64 / wear.len() as f64;
        assert!(
            max / avg < 3.0,
            "wear still concentrated: max {max}, avg {avg:.0}"
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_logical_rejected() {
        StartGap::new(4, 1).map(4);
    }

    #[test]
    fn endurance_budgets_are_seeded_and_bounded() {
        let m = EnduranceModel::new(42, 1e7, 0.10);
        let again = EnduranceModel::new(42, 1e7, 0.10);
        let mut distinct = HashSet::new();
        for line in 0..1000u64 {
            let b = m.budget(line);
            assert_eq!(b, again.budget(line), "budget must be stable");
            assert!(
                (9e6..=1.1e7 + 1.0).contains(&(b as f64)),
                "budget {b} out of band"
            );
            distinct.insert(b);
        }
        assert!(distinct.len() > 100, "budgets should vary per line");
        // A different seed reshuffles the budgets.
        let other = EnduranceModel::new(43, 1e7, 0.10);
        assert!((0..1000u64).any(|l| other.budget(l) != m.budget(l)));
    }

    #[test]
    fn remap_resolves_chains_and_stays_injective() {
        let mut t = RemapTable::new(4);
        let s1 = t.retire(7).unwrap();
        assert_eq!(t.resolve(7), s1);
        // The spare itself wears out: chain to a second spare.
        let s2 = t.retire(s1).unwrap();
        assert_eq!(t.resolve(7), s2, "chains resolve to the terminal line");
        assert_eq!(t.resolve(s1), s2);
        assert!(t.is_injective());
        assert_eq!(t.retired(), 2);
        assert_eq!(t.spares_left(), 2);
        // Drain the pool.
        assert!(t.retire(8).is_some());
        assert!(t.retire(9).is_some());
        assert_eq!(t.retire(10), None, "dry pool refuses to retire");
    }

    #[test]
    fn engine_counts_wear_through_the_scheme() {
        let cfg = WearConfig::paper_default(WearScheme::None);
        let mut w = WearEngine::new(1, 64, cfg);
        for _ in 0..10 {
            w.record_write(0); // line 0
        }
        w.record_write(64); // line 1
        assert_eq!(w.max_line_writes(), 10);
        assert_eq!(w.lines_touched(), 2);
        assert_eq!(w.hottest_lines(1), vec![(0, 10)]);
        let (line, frac) = w.hottest(&[0, 64]);
        assert_eq!(line, 0);
        assert!(frac > 0.0);
        assert_eq!(w.stats().writes_recorded, 11);
    }

    #[test]
    fn start_gap_engine_spreads_the_hot_line() {
        let mut cfg = WearConfig::paper_default(WearScheme::StartGap);
        cfg.gap_interval = 4;
        let mut w = WearEngine::new(1, 16, cfg);
        for _ in 0..2000 {
            w.record_write(0);
            w.commit();
        }
        assert!(w.stats().gap_moves > 0);
        // Rotation must have spread line 0's writes over several
        // physical lines.
        assert!(
            w.lines_touched() >= 8,
            "rotation should spread wear, touched {}",
            w.lines_touched()
        );
        assert!(w.max_line_writes() < 2000);
    }

    #[test]
    fn staged_mutations_commit_or_revert_atomically() {
        let mut cfg = WearConfig::stress(WearScheme::Remap);
        let mut w = WearEngine::new(9, 32, cfg);
        let d0 = w.mapping_digest();
        let line = w.resolve(0);
        match w.convict(line) {
            Conviction::Retired { spare } => {
                assert_eq!(w.resolve(0), spare, "staged mapping serves the spare");
                assert_eq!(w.durable_resolve(0), line, "durable mapping unchanged");
                assert!(w.has_staged_changes());
                assert_eq!(w.mapping_digest(), d0, "digest covers durable state only");
                // Crash before the commit round: the retirement never
                // happened.
                w.revert();
                assert_eq!(w.resolve(0), line);
                assert!(!w.has_staged_changes());
                assert_eq!(w.stats().map_reverts, 1);
                // Convict again and commit: now it is durable.
                let Conviction::Retired { spare: s2 } = w.convict(line) else {
                    panic!("spares left; must retire");
                };
                w.commit();
                assert_eq!(w.durable_resolve(0), s2);
                assert_ne!(w.mapping_digest(), d0);
                assert!(w.mapping_is_injective());
            }
            Conviction::Exhausted => panic!("fresh pool must retire"),
        }
        // None-scheme convictions exhaust immediately.
        cfg.scheme = WearScheme::None;
        let mut none = WearEngine::new(9, 32, cfg);
        assert_eq!(none.convict(3), Conviction::Exhausted);
    }

    #[test]
    fn crash_writes_wear_the_durable_lines() {
        let mut cfg = WearConfig::stress(WearScheme::Remap);
        cfg.preage_writes = 0;
        let mut w = WearEngine::new(5, 16, cfg);
        let Conviction::Retired { spare } = w.convict(2) else {
            panic!("must retire");
        };
        // Staged points line 2 at the spare, durable does not: an ADR
        // crash flush of addr 128 (line 2) wears the *old* line.
        w.record_crash_write(128);
        w.revert();
        let writes: Vec<(u64, u64)> = w.hottest_lines(8);
        assert!(
            writes.contains(&(2, 1)),
            "crash write lands on line 2: {writes:?}"
        );
        assert!(
            writes.contains(&(spare, 1)),
            "repair copy wears the spare: {writes:?}"
        );
    }

    #[test]
    fn scheme_labels_are_stable() {
        assert_eq!(WearScheme::None.label(), "none");
        assert_eq!(WearScheme::StartGap.to_string(), "start_gap");
        assert_eq!(WearScheme::Remap.label(), "remap");
        assert_eq!(WearScheme::all().len(), 3);
    }
}
