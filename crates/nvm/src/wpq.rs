//! The ADR persistence domain: write pending queues with atomic batches.
//!
//! Intel ADR guarantees that, on a power failure, the contents of the
//! memory controller's write pending queues (WPQs) are flushed to the NVM.
//! PS-ORAM places *two* WPQs inside this domain — one for evicted data
//! blocks and one for dirty PosMap entries — and a **drainer** that brackets
//! each eviction round between a `start` and an `end` signal sent to both
//! queues (paper §4.1–4.2, steps 5-B/5-C). Entries of a round become durable
//! *atomically* when the `end` signal is observed; a crash before `end`
//! discards the whole round from both queues, so data and metadata can never
//! persist half-updated.

use psoram_crypto::Cmac;
use psoram_obsv::{Event, QueueKind, Tap};
use serde::{Deserialize, Serialize};

use crate::fault::{FaultClass, FaultPlan, RoundFate};

/// An entry queued for persistence in a WPQ.
///
/// The queue is generic in its payload; the ORAM controller uses one
/// instantiation for 64 B data blocks and one for PosMap entries.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WpqEntry<T> {
    /// NVM destination address of the entry.
    pub addr: u64,
    /// The value to persist.
    pub value: T,
}

/// Errors returned by the WPQ batch protocol.
///
/// The drainer protocol is strictly bracketed (`start`, pushes, `end`);
/// violations and capacity exhaustion surface as typed errors rather than
/// panics so a controller can stall and retry (see
/// [`WpqStats::full_rejections`] / [`WpqStats::protocol_errors`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WpqError {
    /// `start` signal while a batch is already open.
    BatchAlreadyOpen,
    /// Push or `end` signal with no batch open.
    NoBatchOpen,
    /// The queue is at capacity; the caller must drain (or split the
    /// eviction round) before retrying.
    Full {
        /// Capacity of the queue that rejected the push.
        capacity: usize,
    },
}

impl std::fmt::Display for WpqError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WpqError::BatchAlreadyOpen => write!(f, "WPQ start signal while a batch is open"),
            WpqError::NoBatchOpen => write!(f, "WPQ push or end signal outside a batch"),
            WpqError::Full { capacity } => {
                write!(f, "write pending queue full (capacity {capacity})")
            }
        }
    }
}

impl std::error::Error for WpqError {}

/// Anubis-style metadata record of one committed batch.
///
/// Frames live with the queue inside the ADR domain, so recovery can see
/// the *intended* shape of each committed round — how many entries it
/// had and which NVM addresses they targeted — even when the drain to
/// media was torn or lost. With a sealer installed ([`Wpq::seal_frames`])
/// each frame additionally carries an AES-CMAC tag over its length and
/// address list, so frame metadata tampering is itself detectable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchFrame {
    /// Entries committed in this batch.
    pub len: usize,
    /// NVM destination addresses, in push order.
    pub addrs: Vec<u64>,
    /// AES-CMAC over `len ‖ addrs` when a sealer is installed.
    pub tag: Option<[u8; 16]>,
}

impl BatchFrame {
    fn bytes(len: usize, addrs: &[u64]) -> Vec<u8> {
        let mut msg = Vec::with_capacity(8 + addrs.len() * 8);
        msg.extend_from_slice(&(len as u64).to_le_bytes());
        for a in addrs {
            msg.extend_from_slice(&a.to_le_bytes());
        }
        msg
    }

    /// Recomputes and checks this frame's tag. Untagged frames verify
    /// clean (no sealer was installed when they were committed).
    pub fn verify(&self, sealer: &Cmac) -> bool {
        match &self.tag {
            Some(tag) => sealer.verify(&Self::bytes(self.len, &self.addrs), tag),
            None => true,
        }
    }
}

/// Structural damage applied to a queue's committed backlog by a
/// [`FaultPlan`] during a crash.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DamageRecord {
    /// What kind of fault struck.
    pub class: FaultClass,
    /// NVM addresses of the affected entries.
    pub addrs: Vec<u64>,
}

/// Everything a fault-aware crash returns: the surviving entries, the
/// ADR-protected frame metadata, and the damage (if any) the plan chose.
#[derive(Debug, Clone)]
pub struct WpqCrashOutcome<T> {
    /// Entries that actually reached media.
    pub entries: Vec<WpqEntry<T>>,
    /// Frame records of every committed batch (pre-damage ground shape).
    pub frames: Vec<BatchFrame>,
    /// The structural fault applied to the in-flight batch, if any.
    pub damage: Option<DamageRecord>,
}

/// A bounded write pending queue with start/end-signalled atomic batches.
///
/// Entries pushed between [`Wpq::begin_batch`] and [`Wpq::end_batch`] become
/// durable together. [`Wpq::crash`] models a power failure: committed
/// entries are flushed by the ADR energy reserve and returned; the open
/// (uncommitted) batch is lost.
///
/// # Examples
///
/// ```
/// use psoram_nvm::{Wpq, WpqEntry};
///
/// let mut q: Wpq<u32> = Wpq::new(4);
/// q.begin_batch().unwrap();
/// q.push(WpqEntry { addr: 0x40, value: 7 }).unwrap();
/// q.end_batch().unwrap();
/// q.begin_batch().unwrap();
/// q.push(WpqEntry { addr: 0x80, value: 9 }).unwrap();
/// // Crash before the second end signal: only the first batch survives.
/// let survivors = q.crash();
/// assert_eq!(survivors.len(), 1);
/// assert_eq!(survivors[0].value, 7);
/// ```
#[derive(Debug, Clone)]
pub struct Wpq<T> {
    capacity: usize,
    committed: Vec<WpqEntry<T>>,
    open: Vec<WpqEntry<T>>,
    in_batch: bool,
    stats: WpqStats,
    tap: Tap,
    kind: QueueKind,
    /// One frame per committed batch still in the queue (cleared when the
    /// batches drain or crash out).
    frames: Vec<BatchFrame>,
    sealer: Option<Cmac>,
}

/// Occupancy and throughput statistics for a WPQ.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WpqStats {
    /// Total entries ever pushed.
    pub entries_pushed: u64,
    /// Batches committed via the end signal.
    pub batches_committed: u64,
    /// Entries drained to NVM during normal operation.
    pub entries_drained: u64,
    /// High-water mark of total queue occupancy.
    pub max_occupancy: usize,
    /// Pushes rejected because the queue was at capacity (each one is a
    /// controller stall-and-retry).
    pub full_rejections: u64,
    /// Batch-protocol violations (double start, push/end without start).
    pub protocol_errors: u64,
}

impl psoram_obsv::MetricsSource for WpqStats {
    fn publish(&self, prefix: &str, reg: &mut psoram_obsv::MetricsRegistry) {
        use psoram_obsv::MetricsRegistry as R;
        reg.set_counter(&R::key(prefix, "entries_pushed"), self.entries_pushed);
        reg.set_counter(&R::key(prefix, "batches_committed"), self.batches_committed);
        reg.set_counter(&R::key(prefix, "entries_drained"), self.entries_drained);
        reg.set_counter(&R::key(prefix, "max_occupancy"), self.max_occupancy as u64);
        reg.set_counter(&R::key(prefix, "full_rejections"), self.full_rejections);
        reg.set_counter(&R::key(prefix, "protocol_errors"), self.protocol_errors);
    }
}

impl<T> Wpq<T> {
    /// Creates an empty queue holding at most `capacity` entries
    /// (committed + open combined).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "WPQ capacity must be positive");
        Wpq {
            capacity,
            committed: Vec::new(),
            open: Vec::new(),
            in_batch: false,
            stats: WpqStats::default(),
            tap: Tap::detached(),
            kind: QueueKind::Data,
            frames: Vec::new(),
            sealer: None,
        }
    }

    /// Installs an AES-CMAC sealer: every batch committed from now on
    /// carries an authentication tag in its [`BatchFrame`]. Sealing is
    /// metadata-only — entry flow, stats, and events are unchanged.
    pub fn seal_frames(&mut self, sealer: Cmac) {
        self.sealer = Some(sealer);
    }

    /// Frame records of the committed batches still in the queue.
    pub fn frames(&self) -> &[BatchFrame] {
        &self.frames
    }

    /// Verifies every committed batch's frame tag.
    ///
    /// # Errors
    ///
    /// Returns the index of the first frame whose tag does not match.
    /// Without a sealer (or for untagged frames) everything verifies.
    pub fn verify_frames(&self) -> Result<(), usize> {
        if let Some(sealer) = &self.sealer {
            for (i, f) in self.frames.iter().enumerate() {
                if !f.verify(sealer) {
                    return Err(i);
                }
            }
        }
        Ok(())
    }

    /// Wires an observability tap into this queue, tagging its events
    /// with `kind`. Purely observational: the queue behaves identically
    /// with or without a tap.
    pub fn set_tap(&mut self, tap: Tap, kind: QueueKind) {
        self.tap = tap;
        self.kind = kind;
    }

    /// Starts a new atomic batch (the drainer's `start` signal).
    ///
    /// # Errors
    ///
    /// Returns [`WpqError::BatchAlreadyOpen`] if a batch is already open —
    /// the drainer protocol is strictly bracketed.
    pub fn begin_batch(&mut self) -> Result<(), WpqError> {
        if self.in_batch {
            self.stats.protocol_errors += 1;
            return Err(WpqError::BatchAlreadyOpen);
        }
        self.in_batch = true;
        Ok(())
    }

    /// Queues an entry in the open batch.
    ///
    /// # Errors
    ///
    /// Returns [`WpqError::Full`] if the queue is at capacity (the caller
    /// must drain or split the eviction round before retrying) and
    /// [`WpqError::NoBatchOpen`] if no batch is open.
    pub fn push(&mut self, entry: WpqEntry<T>) -> Result<(), WpqError> {
        if !self.in_batch {
            self.stats.protocol_errors += 1;
            return Err(WpqError::NoBatchOpen);
        }
        if self.len() >= self.capacity {
            self.stats.full_rejections += 1;
            self.tap.emit(|| Event::WpqReject {
                queue: self.kind,
                capacity: self.capacity as u64,
                cycle: self.tap.now(),
            });
            return Err(WpqError::Full {
                capacity: self.capacity,
            });
        }
        self.open.push(entry);
        self.stats.entries_pushed += 1;
        self.stats.max_occupancy = self.stats.max_occupancy.max(self.len());
        self.tap.emit(|| Event::WpqPush {
            queue: self.kind,
            occupancy: self.len() as u64,
            capacity: self.capacity as u64,
            cycle: self.tap.now(),
        });
        Ok(())
    }

    /// Commits the open batch (the drainer's `end` signal); its entries are
    /// now inside the persistence guarantee.
    ///
    /// # Errors
    ///
    /// Returns [`WpqError::NoBatchOpen`] if no batch is open.
    pub fn end_batch(&mut self) -> Result<(), WpqError> {
        if !self.in_batch {
            self.stats.protocol_errors += 1;
            return Err(WpqError::NoBatchOpen);
        }
        self.in_batch = false;
        let addrs: Vec<u64> = self.open.iter().map(|e| e.addr).collect();
        let tag = self
            .sealer
            .as_ref()
            .map(|s| s.tag(&BatchFrame::bytes(addrs.len(), &addrs)));
        self.frames.push(BatchFrame {
            len: addrs.len(),
            addrs,
            tag,
        });
        self.committed.append(&mut self.open);
        self.stats.batches_committed += 1;
        Ok(())
    }

    /// Discards the open batch and closes it without committing (used to
    /// back out of a half-assembled round, e.g. when the paired queue of a
    /// persistence domain rejected its `start` signal).
    pub fn abort_batch(&mut self) {
        self.open.clear();
        self.in_batch = false;
    }

    /// Drains all committed entries for writing to the NVM (normal-operation
    /// flush, step 5-C).
    pub fn drain_committed(&mut self) -> Vec<WpqEntry<T>> {
        self.stats.entries_drained += self.committed.len() as u64;
        self.tap.emit(|| Event::WpqDrain {
            queue: self.kind,
            drained: self.committed.len() as u64,
            cycle: self.tap.now(),
        });
        self.frames.clear();
        std::mem::take(&mut self.committed)
    }

    /// Models a power failure: returns the entries the ADR energy reserve
    /// flushes to NVM (all committed entries) and discards the open batch.
    pub fn crash(&mut self) -> Vec<WpqEntry<T>> {
        self.open.clear();
        self.in_batch = false;
        self.frames.clear();
        std::mem::take(&mut self.committed)
    }

    /// Models a power failure under a device [`FaultPlan`]: the ADR flush
    /// of the most recently committed (in-flight) batch may be torn at
    /// cacheline granularity, lost to a dropped end signal, or replayed
    /// by a duplicated one. Earlier batches' programming is presumed
    /// complete and always survives intact; the open batch is lost as
    /// usual. Frame metadata always reports the *intended* shape, so the
    /// caller can detect and classify the damage independently.
    pub fn crash_with_plan(&mut self, plan: &mut FaultPlan) -> WpqCrashOutcome<T>
    where
        T: Clone,
    {
        self.open.clear();
        self.in_batch = false;
        let mut entries = std::mem::take(&mut self.committed);
        let frames = std::mem::take(&mut self.frames);
        let last_len = frames.last().map_or(0, |f| f.len.min(entries.len()));
        let damage = match plan.round_fate(last_len) {
            RoundFate::Intact => None,
            RoundFate::Lost => {
                let dropped = entries.split_off(entries.len() - last_len);
                Some(DamageRecord {
                    class: FaultClass::SignalLoss,
                    addrs: dropped.iter().map(|e| e.addr).collect(),
                })
            }
            RoundFate::Torn { kept } => {
                let dropped = entries.split_off(entries.len() - last_len + kept);
                Some(DamageRecord {
                    class: FaultClass::TornFlush,
                    addrs: dropped.iter().map(|e| e.addr).collect(),
                })
            }
            RoundFate::Duplicated => {
                let replay: Vec<WpqEntry<T>> = entries[entries.len() - last_len..].to_vec();
                let addrs = replay.iter().map(|e| e.addr).collect();
                entries.extend(replay);
                Some(DamageRecord {
                    class: FaultClass::DuplicatedSignal,
                    addrs,
                })
            }
        };
        WpqCrashOutcome {
            entries,
            frames,
            damage,
        }
    }

    /// Entries currently queued (committed + open).
    pub fn len(&self) -> usize {
        self.committed.len() + self.open.len()
    }

    /// Entries in the currently open (uncommitted) batch.
    pub fn open_len(&self) -> usize {
        self.open.len()
    }

    /// `true` when no entries are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Remaining capacity before [`Wpq::push`] fails.
    pub fn remaining(&self) -> usize {
        self.capacity - self.len()
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// `true` while a batch is open (between start and end signals).
    pub fn in_batch(&self) -> bool {
        self.in_batch
    }

    /// Occupancy/throughput statistics.
    pub fn stats(&self) -> WpqStats {
        self.stats
    }
}

/// The PS-ORAM persistence domain: the drainer plus both WPQs.
///
/// The drainer issues `start`/`end` signals to the **data-block WPQ** and
/// the **PosMap WPQ** simultaneously, which is what makes an ORAM eviction
/// round's data and metadata persist atomically (design requirement §3.2).
///
/// # Examples
///
/// ```
/// use psoram_nvm::{PersistenceDomain, WpqEntry};
///
/// let mut pd: PersistenceDomain<[u8; 8], u32> = PersistenceDomain::new(96, 96);
/// pd.begin_round().unwrap();
/// pd.push_data(WpqEntry { addr: 0x40, value: [1; 8] }).unwrap();
/// pd.push_posmap(WpqEntry { addr: 0x99, value: 5 }).unwrap();
/// pd.commit_round().unwrap();
/// let (data, posmap) = pd.drain();
/// assert_eq!(data.len(), 1);
/// assert_eq!(posmap.len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct PersistenceDomain<D, P> {
    data_wpq: Wpq<D>,
    posmap_wpq: Wpq<P>,
}

impl<D, P> PersistenceDomain<D, P> {
    /// Creates a persistence domain with the given WPQ capacities.
    ///
    /// The paper sizes both at 96 entries for the full-path configuration
    /// and studies a 4-entry variant (§4.2.3).
    pub fn new(data_capacity: usize, posmap_capacity: usize) -> Self {
        PersistenceDomain {
            data_wpq: Wpq::new(data_capacity),
            posmap_wpq: Wpq::new(posmap_capacity),
        }
    }

    /// Drainer `start` signal to both queues.
    ///
    /// # Errors
    ///
    /// Returns [`WpqError::BatchAlreadyOpen`] if either queue already has an
    /// open batch; both queues are left batch-closed on error so the domain
    /// never ends up with only one side open.
    pub fn begin_round(&mut self) -> Result<(), WpqError> {
        self.data_wpq.begin_batch()?;
        if let Err(e) = self.posmap_wpq.begin_batch() {
            self.data_wpq.abort_batch();
            return Err(e);
        }
        Ok(())
    }

    /// Queues a data block for persistence.
    ///
    /// # Errors
    ///
    /// Returns [`WpqError::Full`] when the data WPQ is full and
    /// [`WpqError::NoBatchOpen`] outside a round.
    pub fn push_data(&mut self, entry: WpqEntry<D>) -> Result<(), WpqError> {
        self.data_wpq.push(entry)
    }

    /// Queues a PosMap entry for persistence.
    ///
    /// # Errors
    ///
    /// Returns [`WpqError::Full`] when the PosMap WPQ is full and
    /// [`WpqError::NoBatchOpen`] outside a round.
    pub fn push_posmap(&mut self, entry: WpqEntry<P>) -> Result<(), WpqError> {
        self.posmap_wpq.push(entry)
    }

    /// Drainer `end` signal to both queues — the atomic commit point of an
    /// eviction round.
    ///
    /// # Errors
    ///
    /// Returns [`WpqError::NoBatchOpen`] if no round is open (neither queue
    /// commits in that case).
    pub fn commit_round(&mut self) -> Result<(), WpqError> {
        if !self.data_wpq.in_batch() || !self.posmap_wpq.in_batch() {
            // Count the violation on the queue(s) that would have rejected
            // the end signal, but commit neither: the round must be atomic.
            if !self.data_wpq.in_batch() {
                self.data_wpq.stats.protocol_errors += 1;
            }
            if !self.posmap_wpq.in_batch() {
                self.posmap_wpq.stats.protocol_errors += 1;
            }
            return Err(WpqError::NoBatchOpen);
        }
        self.data_wpq.end_batch()?;
        self.posmap_wpq.end_batch()
    }

    /// Drains both queues for the NVM writeback (step 5-C).
    pub fn drain(&mut self) -> (Vec<WpqEntry<D>>, Vec<WpqEntry<P>>) {
        (
            self.data_wpq.drain_committed(),
            self.posmap_wpq.drain_committed(),
        )
    }

    /// Models a crash: both queues keep exactly their committed rounds.
    pub fn crash(&mut self) -> (Vec<WpqEntry<D>>, Vec<WpqEntry<P>>) {
        (self.data_wpq.crash(), self.posmap_wpq.crash())
    }

    /// Models a crash under a device [`FaultPlan`], applying independent
    /// fates to the data and PosMap queues' in-flight batches (data queue
    /// drawn first, deterministically).
    pub fn crash_with_plan(
        &mut self,
        plan: &mut FaultPlan,
    ) -> (WpqCrashOutcome<D>, WpqCrashOutcome<P>)
    where
        D: Clone,
        P: Clone,
    {
        let data = self.data_wpq.crash_with_plan(plan);
        let posmap = self.posmap_wpq.crash_with_plan(plan);
        (data, posmap)
    }

    /// Installs AES-CMAC frame sealing on both queues, deriving one
    /// sealer per queue from `key` (domain-separated on the final byte).
    pub fn seal_frames(&mut self, key: &[u8; 16]) {
        let mut dk = *key;
        dk[15] ^= 0xD0;
        let mut pk = *key;
        pk[15] ^= 0x90;
        self.data_wpq
            .seal_frames(Cmac::new(psoram_crypto::Aes128::new(&dk)));
        self.posmap_wpq
            .seal_frames(Cmac::new(psoram_crypto::Aes128::new(&pk)));
    }

    /// Wires an observability tap into both queues (data and PosMap
    /// events are tagged with their [`QueueKind`]).
    pub fn set_tap(&mut self, tap: Tap) {
        self.data_wpq.set_tap(tap.clone(), QueueKind::Data);
        self.posmap_wpq.set_tap(tap, QueueKind::PosMap);
    }

    /// The data-block WPQ.
    pub fn data_wpq(&self) -> &Wpq<D> {
        &self.data_wpq
    }

    /// The PosMap WPQ.
    pub fn posmap_wpq(&self) -> &Wpq<P> {
        &self.posmap_wpq
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn committed_entries_survive_crash_uncommitted_do_not() {
        let mut q: Wpq<u8> = Wpq::new(8);
        q.begin_batch().unwrap();
        q.push(WpqEntry { addr: 1, value: 1 }).unwrap();
        q.push(WpqEntry { addr: 2, value: 2 }).unwrap();
        q.end_batch().unwrap();
        q.begin_batch().unwrap();
        q.push(WpqEntry { addr: 3, value: 3 }).unwrap();
        let survivors = q.crash();
        assert_eq!(
            survivors.iter().map(|e| e.addr).collect::<Vec<_>>(),
            vec![1, 2]
        );
        assert!(q.is_empty());
        assert!(!q.in_batch());
    }

    #[test]
    fn push_respects_capacity() {
        let mut q: Wpq<u8> = Wpq::new(2);
        q.begin_batch().unwrap();
        q.push(WpqEntry { addr: 1, value: 1 }).unwrap();
        q.push(WpqEntry { addr: 2, value: 2 }).unwrap();
        let err = q.push(WpqEntry { addr: 3, value: 3 }).unwrap_err();
        assert_eq!(err, WpqError::Full { capacity: 2 });
        assert_eq!(q.stats().full_rejections, 1);
        // The queue survives the rejection and keeps working.
        q.end_batch().unwrap();
        assert_eq!(q.drain_committed().len(), 2);
    }

    #[test]
    fn double_start_signal_is_a_typed_error() {
        let mut q: Wpq<u8> = Wpq::new(2);
        q.begin_batch().unwrap();
        assert_eq!(q.begin_batch().unwrap_err(), WpqError::BatchAlreadyOpen);
        assert_eq!(q.stats().protocol_errors, 1);
        assert!(q.in_batch(), "failed start must not close the open batch");
    }

    #[test]
    fn push_and_end_without_start_are_typed_errors() {
        let mut q: Wpq<u8> = Wpq::new(2);
        assert_eq!(
            q.push(WpqEntry { addr: 1, value: 1 }).unwrap_err(),
            WpqError::NoBatchOpen
        );
        assert_eq!(q.end_batch().unwrap_err(), WpqError::NoBatchOpen);
        assert_eq!(q.stats().protocol_errors, 2);
        assert!(q.is_empty());
    }

    #[test]
    fn abort_batch_discards_open_entries_only() {
        let mut q: Wpq<u8> = Wpq::new(4);
        q.begin_batch().unwrap();
        q.push(WpqEntry { addr: 1, value: 1 }).unwrap();
        q.end_batch().unwrap();
        q.begin_batch().unwrap();
        q.push(WpqEntry { addr: 2, value: 2 }).unwrap();
        q.abort_batch();
        assert!(!q.in_batch());
        let committed = q.drain_committed();
        assert_eq!(
            committed.iter().map(|e| e.addr).collect::<Vec<_>>(),
            vec![1]
        );
    }

    #[test]
    fn domain_round_errors_keep_queues_in_lockstep() {
        let mut pd: PersistenceDomain<u8, u8> = PersistenceDomain::new(4, 4);
        assert_eq!(pd.commit_round().unwrap_err(), WpqError::NoBatchOpen);
        pd.begin_round().unwrap();
        assert_eq!(pd.begin_round().unwrap_err(), WpqError::BatchAlreadyOpen);
        assert!(pd.data_wpq().in_batch() && pd.posmap_wpq().in_batch());
        pd.commit_round().unwrap();
        assert!(!pd.data_wpq().in_batch() && !pd.posmap_wpq().in_batch());
    }

    #[test]
    fn drain_clears_committed_and_counts() {
        let mut q: Wpq<u8> = Wpq::new(4);
        q.begin_batch().unwrap();
        q.push(WpqEntry { addr: 1, value: 1 }).unwrap();
        q.end_batch().unwrap();
        let drained = q.drain_committed();
        assert_eq!(drained.len(), 1);
        assert!(q.is_empty());
        assert_eq!(q.stats().entries_drained, 1);
        assert_eq!(q.stats().batches_committed, 1);
    }

    #[test]
    fn max_occupancy_tracks_high_water_mark() {
        let mut q: Wpq<u8> = Wpq::new(8);
        q.begin_batch().unwrap();
        for i in 0..5 {
            q.push(WpqEntry {
                addr: i,
                value: i as u8,
            })
            .unwrap();
        }
        q.end_batch().unwrap();
        q.drain_committed();
        assert_eq!(q.stats().max_occupancy, 5);
    }

    #[test]
    fn domain_crash_is_atomic_across_both_queues() {
        let mut pd: PersistenceDomain<u8, u8> = PersistenceDomain::new(8, 8);
        // Round 1: committed.
        pd.begin_round().unwrap();
        pd.push_data(WpqEntry { addr: 1, value: 1 }).unwrap();
        pd.push_posmap(WpqEntry {
            addr: 10,
            value: 10,
        })
        .unwrap();
        pd.commit_round().unwrap();
        // Round 2: open at crash time.
        pd.begin_round().unwrap();
        pd.push_data(WpqEntry { addr: 2, value: 2 }).unwrap();
        pd.push_posmap(WpqEntry {
            addr: 20,
            value: 20,
        })
        .unwrap();
        let (data, posmap) = pd.crash();
        // Either both of a round's sides persist or neither does.
        assert_eq!(data.len(), 1);
        assert_eq!(posmap.len(), 1);
        assert_eq!(data[0].addr, 1);
        assert_eq!(posmap[0].addr, 10);
    }

    #[test]
    fn remaining_capacity_reported() {
        let mut q: Wpq<u8> = Wpq::new(4);
        assert_eq!(q.remaining(), 4);
        q.begin_batch().unwrap();
        q.push(WpqEntry { addr: 1, value: 1 }).unwrap();
        assert_eq!(q.remaining(), 3);
        assert_eq!(q.capacity(), 4);
    }

    use crate::fault::FaultConfig;
    use psoram_crypto::Aes128;

    fn sealed_queue() -> Wpq<u8> {
        let mut q: Wpq<u8> = Wpq::new(16);
        q.seal_frames(Cmac::new(Aes128::new(&[0x42; 16])));
        q
    }

    #[test]
    fn frames_record_committed_batch_shapes() {
        let mut q: Wpq<u8> = Wpq::new(8);
        q.begin_batch().unwrap();
        q.push(WpqEntry { addr: 7, value: 1 }).unwrap();
        q.push(WpqEntry { addr: 9, value: 2 }).unwrap();
        q.end_batch().unwrap();
        q.begin_batch().unwrap();
        q.push(WpqEntry { addr: 3, value: 3 }).unwrap();
        q.end_batch().unwrap();
        assert_eq!(q.frames().len(), 2);
        assert_eq!(q.frames()[0].len, 2);
        assert_eq!(q.frames()[0].addrs, vec![7, 9]);
        assert_eq!(q.frames()[1].addrs, vec![3]);
        // No sealer installed → no tags, but everything verifies clean.
        assert!(q.frames().iter().all(|f| f.tag.is_none()));
        assert_eq!(q.verify_frames(), Ok(()));
        q.drain_committed();
        assert!(q.frames().is_empty(), "drain must clear frame records");
    }

    #[test]
    fn sealed_frames_carry_verifiable_tags() {
        let mut q = sealed_queue();
        q.begin_batch().unwrap();
        q.push(WpqEntry { addr: 40, value: 4 }).unwrap();
        q.end_batch().unwrap();
        assert!(q.frames()[0].tag.is_some());
        assert_eq!(q.verify_frames(), Ok(()));
        // A frame tag from the wrong key must not verify.
        let other = Cmac::new(Aes128::new(&[0x43; 16]));
        assert!(!q.frames()[0].verify(&other));
    }

    #[test]
    fn fault_free_plan_crash_matches_plain_crash() {
        let mut plan = FaultPlan::new(1, FaultConfig::disabled());
        let mut q: Wpq<u8> = Wpq::new(8);
        q.begin_batch().unwrap();
        q.push(WpqEntry { addr: 1, value: 1 }).unwrap();
        q.end_batch().unwrap();
        q.begin_batch().unwrap();
        q.push(WpqEntry { addr: 2, value: 2 }).unwrap();
        let out = q.crash_with_plan(&mut plan);
        assert!(out.damage.is_none());
        assert_eq!(out.entries.len(), 1);
        assert_eq!(out.entries[0].addr, 1);
        assert_eq!(out.frames.len(), 1, "frames report the committed round");
        assert!(q.is_empty() && !q.in_batch());
    }

    /// Drives `crash_with_plan` under an aggressive mix until each
    /// structural fate has been observed, checking its invariant.
    #[test]
    fn structural_fates_damage_only_the_inflight_batch() {
        let mut plan = FaultPlan::new(0xFA7E, FaultConfig::aggressive());
        let (mut saw_torn, mut saw_lost, mut saw_dup) = (false, false, false);
        for _ in 0..400 {
            let mut q: Wpq<u8> = Wpq::new(32);
            // An older, fully programmed round (always survives)...
            q.begin_batch().unwrap();
            for a in 0..3u64 {
                q.push(WpqEntry { addr: a, value: 0 }).unwrap();
            }
            q.end_batch().unwrap();
            // ...and the in-flight round the ADR flush may mangle.
            q.begin_batch().unwrap();
            for a in 10..14u64 {
                q.push(WpqEntry { addr: a, value: 1 }).unwrap();
            }
            q.end_batch().unwrap();
            let out = q.crash_with_plan(&mut plan);
            let old: Vec<u64> = out.entries.iter().map(|e| e.addr).take(3).collect();
            assert_eq!(old, vec![0, 1, 2], "older rounds must survive intact");
            match out.damage {
                None => assert_eq!(out.entries.len(), 7),
                Some(DamageRecord {
                    class: FaultClass::SignalLoss,
                    ref addrs,
                }) => {
                    saw_lost = true;
                    assert_eq!(out.entries.len(), 3);
                    assert_eq!(addrs.len(), 4);
                }
                Some(DamageRecord {
                    class: FaultClass::TornFlush,
                    ref addrs,
                }) => {
                    saw_torn = true;
                    assert!(out.entries.len() < 7 && out.entries.len() >= 3);
                    assert_eq!(addrs.len(), 7 - out.entries.len());
                    // Torn flush keeps a strict prefix of the round.
                    let kept: Vec<u64> = out.entries.iter().skip(3).map(|e| e.addr).collect();
                    assert_eq!(kept, (10..10 + kept.len() as u64).collect::<Vec<_>>());
                }
                Some(DamageRecord {
                    class: FaultClass::DuplicatedSignal,
                    ref addrs,
                }) => {
                    saw_dup = true;
                    assert_eq!(out.entries.len(), 11, "round replayed once");
                    assert_eq!(addrs.len(), 4);
                }
                Some(ref d) => panic!("unexpected structural class {:?}", d.class),
            }
        }
        assert!(saw_torn && saw_lost && saw_dup);
    }

    #[test]
    fn domain_sealing_and_plan_crash_are_deterministic() {
        let run = |seed: u64| {
            let mut plan = FaultPlan::new(seed, FaultConfig::aggressive());
            let mut pd: PersistenceDomain<u8, u8> = PersistenceDomain::new(16, 16);
            pd.seal_frames(&[7; 16]);
            pd.begin_round().unwrap();
            pd.push_data(WpqEntry { addr: 1, value: 1 }).unwrap();
            pd.push_posmap(WpqEntry { addr: 9, value: 9 }).unwrap();
            pd.commit_round().unwrap();
            let (d, p) = pd.crash_with_plan(&mut plan);
            assert_eq!(pd.data_wpq().verify_frames(), Ok(()));
            assert!(d.frames[0].tag.is_some() && p.frames[0].tag.is_some());
            assert_ne!(
                d.frames[0].tag, p.frames[0].tag,
                "per-queue sealers must be domain-separated"
            );
            (
                d.entries.len(),
                p.entries.len(),
                d.damage.map(|x| x.class),
                p.damage.map(|x| x.class),
            )
        };
        assert_eq!(run(0xD00D), run(0xD00D));
    }

    #[test]
    fn wpq_error_displays() {
        assert!(WpqError::Full { capacity: 4 }
            .to_string()
            .contains("capacity 4"));
        assert!(WpqError::BatchAlreadyOpen
            .to_string()
            .contains("start signal"));
        assert!(WpqError::NoBatchOpen
            .to_string()
            .contains("outside a batch"));
    }
}
