//! The multi-channel NVM memory controller.

use psoram_obsv::{Event, Tap};
use serde::{Deserialize, Serialize};

use crate::channel::Channel;
use crate::request::AccessKind;
use crate::stats::NvmStats;
use crate::timing::{MemTech, TimingParams};

/// Configuration of the simulated NVM main memory.
///
/// # Examples
///
/// ```
/// use psoram_nvm::NvmConfig;
///
/// let cfg = NvmConfig::paper_pcm(4);
/// assert_eq!(cfg.channels, 4);
/// assert_eq!(cfg.block_bytes, 64);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NvmConfig {
    /// Device technology (PCM by default, per the paper).
    pub tech: MemTech,
    /// Number of independent channels (1, 2 or 4 in the paper).
    pub channels: usize,
    /// Banks per channel.
    pub banks_per_channel: usize,
    /// Transfer granularity in bytes (64 B cacheline in the paper).
    pub block_bytes: usize,
    /// Data-bus width in bytes transferred per memory cycle.
    pub bus_bytes_per_cycle: usize,
    /// Channel-interleave granularity in blocks (1 = cacheline
    /// interleaving; 4 = 256 B DIMM-granularity interleaving). Coarser
    /// granularity interacts with the ORAM tree's exponential bucket
    /// layout and produces the channel imbalance the paper observes when
    /// scaling from 2 to 4 channels (§5.2.3).
    pub interleave_blocks: u64,
    /// Controller write buffer entries (0 disables buffering). With a
    /// buffer, writes are acknowledged on entry and drained to the banks
    /// when the buffer crosses its high watermark (half full) — the
    /// read-priority scheduling real PCM controllers use to hide the long
    /// write pulse. Buffered writes are volatile: they are a *performance*
    /// structure, distinct from the WPQ persistence domain.
    pub write_buffer_entries: usize,
}

impl NvmConfig {
    /// The paper's Table 3 PCM main memory with the given channel count:
    /// 4 GB PCM @ 400 MHz, 64 B blocks, 8 banks per channel.
    pub fn paper_pcm(channels: usize) -> Self {
        NvmConfig {
            tech: MemTech::Pcm,
            channels,
            banks_per_channel: 8,
            block_bytes: 64,
            bus_bytes_per_cycle: 8,
            interleave_blocks: 1,
            write_buffer_entries: 0,
        }
    }

    /// Same organization with STT-RAM timing.
    pub fn paper_sttram(channels: usize) -> Self {
        NvmConfig {
            tech: MemTech::SttRam,
            ..Self::paper_pcm(channels)
        }
    }

    /// DRAM-timed reference memory for the non-ORAM comparison of §5.1.
    pub fn dram_reference(channels: usize) -> Self {
        NvmConfig {
            tech: MemTech::Dram,
            ..Self::paper_pcm(channels)
        }
    }

    /// Memory cycles occupied by one block transfer on the data bus.
    pub fn burst_cycles(&self) -> u64 {
        (self.block_bytes as u64).div_ceil(self.bus_bytes_per_cycle as u64)
    }
}

impl Default for NvmConfig {
    fn default() -> Self {
        Self::paper_pcm(1)
    }
}

/// Cycle-level multi-channel NVM controller.
///
/// Addresses are interleaved across channels at block granularity and across
/// banks within a channel. All times are in **memory cycles** (400 MHz);
/// multiply by [`crate::CORE_CYCLES_PER_MEM_CYCLE`] for core cycles.
///
/// # Examples
///
/// ```
/// use psoram_nvm::{NvmConfig, NvmController, AccessKind};
///
/// let mut mem = NvmController::new(NvmConfig::paper_pcm(2));
/// let t1 = mem.access(0x0000, AccessKind::Read, 0);
/// let t2 = mem.access(0x0040, AccessKind::Read, 0); // next block, other channel
/// assert_eq!(t1, t2); // perfectly parallel across channels
/// ```
#[derive(Debug, Clone)]
pub struct NvmController {
    config: NvmConfig,
    timing: TimingParams,
    channels: Vec<Channel>,
    stats: NvmStats,
    /// Buffered (acknowledged but not yet drained) writes: `(addr, bytes)`.
    write_buffer: std::collections::VecDeque<(u64, usize)>,
    /// Per-line (block-granularity) lifetime write counts. Queries sort,
    /// so the map stays deterministic despite the hash layout.
    line_writes: std::collections::HashMap<u64, u64>,
    /// Writes drained from the buffer (observability).
    drained_writes: u64,
    /// Observability tap (bank-level `NvmAccess` events, memory cycles).
    tap: Tap,
}

impl NvmController {
    /// Creates an idle memory system from `config`.
    ///
    /// # Panics
    ///
    /// Panics if `config.channels` is zero.
    pub fn new(config: NvmConfig) -> Self {
        assert!(config.channels > 0, "need at least one channel");
        let timing = TimingParams::for_tech(config.tech);
        let channels = (0..config.channels)
            .map(|_| Channel::new(config.banks_per_channel))
            .collect();
        NvmController {
            config,
            timing,
            channels,
            stats: NvmStats::default(),
            write_buffer: std::collections::VecDeque::new(),
            line_writes: std::collections::HashMap::new(),
            drained_writes: 0,
            tap: Tap::detached(),
        }
    }

    /// Wires an observability tap into the controller. Every scheduled
    /// bank access emits an [`Event::NvmAccess`] stamped in memory
    /// cycles; timing and statistics are unaffected.
    pub fn set_tap(&mut self, tap: Tap) {
        self.tap = tap;
    }

    /// Maps a byte address to `(channel, bank)`.
    ///
    /// Channels interleave at `interleave_blocks` granularity; banks within
    /// a channel always interleave at block granularity (so single-channel
    /// behaviour is independent of the channel-interleave setting).
    pub fn map_address(&self, addr: u64) -> (usize, usize) {
        let block = addr / self.config.block_bytes as u64;
        let group = block / self.config.interleave_blocks;
        let channel = (group % self.config.channels as u64) as usize;
        // Within-channel block index: strip the channel bits from the
        // interleave group, keep the offset inside the group.
        let local = (group / self.config.channels as u64) * self.config.interleave_blocks
            + block % self.config.interleave_blocks;
        let bank = (local % self.config.banks_per_channel as u64) as usize;
        (channel, bank)
    }

    /// Performs one block access arriving at memory cycle `arrival` and
    /// returns its completion cycle.
    pub fn access(&mut self, addr: u64, kind: AccessKind, arrival: u64) -> u64 {
        self.access_sized(addr, kind, arrival, self.config.block_bytes)
    }

    /// Performs one access of `bytes` bytes (sub-block writes such as
    /// PosMap entries occupy the bus for fewer cycles; cell-programming
    /// time is unchanged).
    pub fn access_sized(&mut self, addr: u64, kind: AccessKind, arrival: u64, bytes: usize) -> u64 {
        if kind.is_write() {
            // Line-granularity wear accounting: one cell-programming pulse
            // per accepted write, whether it drains now or via the buffer.
            let line = addr / self.config.block_bytes as u64;
            *self.line_writes.entry(line).or_insert(0) += 1;
        }
        // Read-priority write buffering: acknowledged writes park in the
        // buffer; they drain to the banks when the buffer crosses its high
        // watermark, out of the way of latency-critical reads.
        if kind.is_write() && self.config.write_buffer_entries > 0 {
            self.write_buffer.push_back((addr, bytes));
            self.stats.record(kind, bytes as u64);
            if self.write_buffer.len() >= self.config.write_buffer_entries {
                self.drain_write_buffer(arrival, self.config.write_buffer_entries / 2);
            }
            return arrival + 1; // accepted immediately
        }
        let (ch, bank) = self.map_address(addr);
        let burst = (bytes as u64)
            .div_ceil(self.config.bus_bytes_per_cycle as u64)
            .max(1);
        let sched = self.channels[ch].access(bank, kind, arrival, &self.timing, burst);
        self.stats.record(kind, bytes as u64);
        self.tap.emit(|| Event::NvmAccess {
            kind: obsv_kind(kind),
            channel: ch as u32,
            bank: bank as u32,
            arrival,
            complete: sched.complete,
        });
        sched.complete
    }

    /// Drains the write buffer down to `low_watermark` entries, scheduling
    /// the drained writes on the banks starting at `now`.
    pub fn drain_write_buffer(&mut self, now: u64, low_watermark: usize) -> u64 {
        let mut done = now;
        while self.write_buffer.len() > low_watermark {
            let (addr, bytes) = self.write_buffer.pop_front().expect("non-empty");
            let (ch, bank) = self.map_address(addr);
            let burst = (bytes as u64)
                .div_ceil(self.config.bus_bytes_per_cycle as u64)
                .max(1);
            let sched = self.channels[ch].access(bank, AccessKind::Write, now, &self.timing, burst);
            self.tap.emit(|| Event::NvmAccess {
                kind: psoram_obsv::AccessKind::Write,
                channel: ch as u32,
                bank: bank as u32,
                arrival: now,
                complete: sched.complete,
            });
            done = done.max(sched.complete);
            self.drained_writes += 1;
        }
        done
    }

    /// Writes currently parked in the (volatile) write buffer.
    pub fn write_buffer_len(&self) -> usize {
        self.write_buffer.len()
    }

    /// Writes that have drained from the buffer to the banks.
    pub fn drained_writes(&self) -> u64 {
        self.drained_writes
    }

    /// Performs a batch of block accesses all arriving at `arrival` and
    /// returns the cycle at which the *last* one completes.
    ///
    /// This is the shape of an ORAM path read/write: `Z * (L+1)` blocks
    /// spread over the channels and banks.
    pub fn access_batch(
        &mut self,
        addrs: impl IntoIterator<Item = u64>,
        kind: AccessKind,
        arrival: u64,
    ) -> u64 {
        let block = self.config.block_bytes;
        self.access_batch_sized(addrs, kind, arrival, block)
    }

    /// [`NvmController::access_batch`] with an explicit per-access size.
    pub fn access_batch_sized(
        &mut self,
        addrs: impl IntoIterator<Item = u64>,
        kind: AccessKind,
        arrival: u64,
        bytes: usize,
    ) -> u64 {
        let mut done = arrival;
        for addr in addrs {
            done = done.max(self.access_sized(addr, kind, arrival, bytes));
        }
        done
    }

    /// Immutable access to the accumulated traffic statistics.
    pub fn stats(&self) -> &NvmStats {
        &self.stats
    }

    /// Resets traffic statistics (not the timing state).
    pub fn reset_stats(&mut self) {
        self.stats = NvmStats::default();
    }

    /// The configuration this controller was built with.
    pub fn config(&self) -> &NvmConfig {
        &self.config
    }

    /// The active device timing parameters.
    pub fn timing(&self) -> &TimingParams {
        &self.timing
    }

    /// Per-channel, per-bank lifetime write counts (wear map).
    pub fn wear_map(&self) -> Vec<Vec<u64>> {
        self.channels.iter().map(Channel::bank_writes).collect()
    }

    /// The `n` most-written lines as `(line, writes)`, hottest first
    /// (ties break toward the lowest line). Deterministic: the backing
    /// map is sorted on every query.
    pub fn hottest_lines(&self, n: usize) -> Vec<(u64, u64)> {
        let mut all: Vec<(u64, u64)> = self.line_writes.iter().map(|(&l, &w)| (l, w)).collect();
        all.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        all.truncate(n);
        all
    }

    /// Distinct lines written at least once.
    pub fn lines_touched(&self) -> u64 {
        self.line_writes.len() as u64
    }

    /// Snapshot of the controller's wear skew: per-bank counts plus the
    /// `hot_n` hottest lines, publishable into a metrics registry.
    pub fn wear_report(&self, hot_n: usize) -> NvmWearReport {
        let hottest_lines = self.hottest_lines(hot_n);
        let max_line_writes = hottest_lines.first().map_or(0, |&(_, w)| w);
        NvmWearReport {
            bank_writes: self.wear_map(),
            hottest_lines,
            lines_touched: self.lines_touched(),
            max_line_writes,
        }
    }

    /// Total data-bus busy cycles summed over channels.
    pub fn total_bus_busy_cycles(&self) -> u64 {
        self.channels.iter().map(Channel::busy_cycles).sum()
    }

    /// Last cycle at which any channel had activity.
    pub fn last_activity(&self) -> u64 {
        self.channels
            .iter()
            .map(Channel::last_activity)
            .max()
            .unwrap_or(0)
    }
}

/// A deterministic snapshot of NVM wear skew: per-bank lifetime write
/// counts plus the hottest lines, publishable through the metrics
/// registry so `--metrics-out` snapshots show where the wear sits (the
/// raw [`NvmController::wear_map`] used to be reachable only from code).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NvmWearReport {
    /// Per-channel, per-bank lifetime write counts.
    pub bank_writes: Vec<Vec<u64>>,
    /// The hottest lines as `(line, writes)`, hottest first.
    pub hottest_lines: Vec<(u64, u64)>,
    /// Distinct lines written at least once.
    pub lines_touched: u64,
    /// Lifetime writes of the hottest line.
    pub max_line_writes: u64,
}

impl psoram_obsv::MetricsSource for NvmWearReport {
    fn publish(&self, prefix: &str, reg: &mut psoram_obsv::MetricsRegistry) {
        use psoram_obsv::MetricsRegistry as R;
        for (c, banks) in self.bank_writes.iter().enumerate() {
            for (b, &writes) in banks.iter().enumerate() {
                reg.set_gauge(&R::key(prefix, &format!("bank.c{c}.b{b}")), writes as f64);
            }
        }
        for (i, &(line, writes)) in self.hottest_lines.iter().enumerate() {
            reg.set_gauge(&R::key(prefix, &format!("hot.{i}.line")), line as f64);
            reg.set_gauge(&R::key(prefix, &format!("hot.{i}.writes")), writes as f64);
        }
        reg.set_gauge(&R::key(prefix, "lines_touched"), self.lines_touched as f64);
        reg.set_gauge(
            &R::key(prefix, "max_line_writes"),
            self.max_line_writes as f64,
        );
    }
}

/// Maps the controller's request kind onto the observability vocabulary.
fn obsv_kind(kind: AccessKind) -> psoram_obsv::AccessKind {
    match kind {
        AccessKind::Read => psoram_obsv::AccessKind::Read,
        AccessKind::Write => psoram_obsv::AccessKind::Write,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn address_mapping_interleaves_blocks_across_channels() {
        let mem = NvmController::new(NvmConfig::paper_pcm(4));
        assert_eq!(mem.map_address(0x00).0, 0);
        assert_eq!(mem.map_address(0x40).0, 1);
        assert_eq!(mem.map_address(0x80).0, 2);
        assert_eq!(mem.map_address(0xC0).0, 3);
        assert_eq!(mem.map_address(0x100).0, 0);
    }

    #[test]
    fn same_channel_blocks_rotate_banks() {
        let mem = NvmController::new(NvmConfig::paper_pcm(1));
        let (_, b0) = mem.map_address(0x00);
        let (_, b1) = mem.map_address(0x40);
        assert_ne!(b0, b1);
    }

    #[test]
    fn more_channels_speed_up_batches() {
        let addrs: Vec<u64> = (0..96u64).map(|i| i * 64).collect();
        let mut one = NvmController::new(NvmConfig::paper_pcm(1));
        let mut four = NvmController::new(NvmConfig::paper_pcm(4));
        let t1 = one.access_batch(addrs.clone(), AccessKind::Read, 0);
        let t4 = four.access_batch(addrs, AccessKind::Read, 0);
        assert!(t4 < t1, "4-channel {t4} should beat 1-channel {t1}");
        // ...but not 4x, matching the paper's sub-linear scaling discussion.
        assert!(t4 * 2 > t1 / 2);
    }

    #[test]
    fn stats_count_reads_and_writes_separately() {
        let mut mem = NvmController::new(NvmConfig::default());
        mem.access(0, AccessKind::Read, 0);
        mem.access(64, AccessKind::Write, 0);
        mem.access(128, AccessKind::Write, 0);
        assert_eq!(mem.stats().reads, 1);
        assert_eq!(mem.stats().writes, 2);
        assert_eq!(mem.stats().write_bytes, 128);
    }

    #[test]
    fn wear_map_shape_matches_geometry() {
        let cfg = NvmConfig::paper_pcm(2);
        let mut mem = NvmController::new(cfg.clone());
        for i in 0..64u64 {
            mem.access(i * 64, AccessKind::Write, 0);
        }
        let wear = mem.wear_map();
        assert_eq!(wear.len(), cfg.channels);
        assert!(wear.iter().all(|ch| ch.len() == cfg.banks_per_channel));
        let total: u64 = wear.iter().flatten().sum();
        assert_eq!(total, 64);
    }

    #[test]
    fn line_wear_tracks_hot_lines_deterministically() {
        let mut mem = NvmController::new(NvmConfig::paper_pcm(2));
        for _ in 0..5 {
            mem.access(0x40, AccessKind::Write, 0);
        }
        mem.access(0x80, AccessKind::Write, 0);
        mem.access(0x00, AccessKind::Read, 0); // reads do not wear cells
        assert_eq!(mem.hottest_lines(2), vec![(1, 5), (2, 1)]);
        assert_eq!(mem.lines_touched(), 2);
        let report = mem.wear_report(1);
        assert_eq!(report.max_line_writes, 5);
        assert_eq!(report.hottest_lines, vec![(1, 5)]);
        assert_eq!(report.bank_writes.len(), 2);
        let mut reg = psoram_obsv::MetricsRegistry::new();
        reg.publish("nvm.wear", &report);
        assert_eq!(reg.gauge("nvm.wear.hot.0.writes"), Some(5.0));
        assert_eq!(reg.gauge("nvm.wear.lines_touched"), Some(2.0));
    }

    #[test]
    fn buffered_writes_wear_lines_at_acceptance() {
        let mut cfg = NvmConfig::paper_pcm(1);
        cfg.write_buffer_entries = 16;
        let mut mem = NvmController::new(cfg);
        for _ in 0..3 {
            mem.access(0, AccessKind::Write, 0);
        }
        assert_eq!(mem.hottest_lines(1), vec![(0, 3)]);
    }

    #[test]
    fn sttram_reads_faster_than_pcm() {
        let mut pcm = NvmController::new(NvmConfig::paper_pcm(1));
        let mut stt = NvmController::new(NvmConfig::paper_sttram(1));
        assert!(stt.access(0, AccessKind::Read, 0) < pcm.access(0, AccessKind::Read, 0));
    }

    #[test]
    fn reset_stats_clears_traffic_only() {
        let mut mem = NvmController::new(NvmConfig::default());
        let t1 = mem.access(0, AccessKind::Write, 0);
        mem.reset_stats();
        assert_eq!(mem.stats().writes, 0);
        // Timing state survives: the same bank is still busy.
        let t2 = mem.access(0, AccessKind::Write, 0);
        assert!(t2 > t1);
    }

    #[test]
    fn burst_cycles_for_paper_config() {
        assert_eq!(NvmConfig::paper_pcm(1).burst_cycles(), 8);
    }

    #[test]
    fn write_buffer_acknowledges_writes_immediately() {
        let mut cfg = NvmConfig::paper_pcm(1);
        cfg.write_buffer_entries = 16;
        let mut mem = NvmController::new(cfg);
        let done = mem.access(0, AccessKind::Write, 100);
        assert_eq!(done, 101, "buffered write acks in one cycle");
        assert_eq!(mem.write_buffer_len(), 1);
        assert_eq!(mem.stats().writes, 1, "traffic counted at acceptance");
    }

    #[test]
    fn write_buffer_drains_at_high_watermark() {
        let mut cfg = NvmConfig::paper_pcm(1);
        cfg.write_buffer_entries = 8;
        let mut mem = NvmController::new(cfg);
        for i in 0..8u64 {
            mem.access(i * 64, AccessKind::Write, 0);
        }
        // Hitting the watermark drains down to half.
        assert_eq!(mem.write_buffer_len(), 4);
        assert_eq!(mem.drained_writes(), 4);
    }

    #[test]
    fn buffered_writes_keep_reads_fast() {
        let run = |buffer: usize| {
            let mut cfg = NvmConfig::paper_pcm(1);
            cfg.write_buffer_entries = buffer;
            let mut mem = NvmController::new(cfg);
            // A write burst followed immediately by a dependent read.
            for i in 0..6u64 {
                mem.access(i * 64, AccessKind::Write, 0);
            }
            mem.access(0x8000, AccessKind::Read, 0)
        };
        let unbuffered = run(0);
        let buffered = run(64);
        assert!(
            buffered < unbuffered,
            "read behind writes: {buffered} !< {unbuffered}"
        );
    }

    #[test]
    fn explicit_drain_empties_buffer() {
        let mut cfg = NvmConfig::paper_pcm(1);
        cfg.write_buffer_entries = 32;
        let mut mem = NvmController::new(cfg);
        for i in 0..10u64 {
            mem.access(i * 64, AccessKind::Write, 0);
        }
        let done = mem.drain_write_buffer(100, 0);
        assert_eq!(mem.write_buffer_len(), 0);
        assert!(done > 100);
        assert_eq!(mem.drained_writes(), 10);
    }
}
