//! On-chip NVM buffer latency model for the `FullNVM` baselines.
//!
//! In the paper's `FullNVM` design, the stash and PosMap are built from NVM
//! cells *on chip* instead of SRAM, so that their contents trivially survive
//! a crash — at the cost of paying NVM read/write latencies on every stash
//! or PosMap operation. `FullNVM` uses PCM-timed buffers and `FullNVM(STT)`
//! STT-RAM-timed ones (both keep PCM main memory).

use serde::{Deserialize, Serialize};

use crate::timing::{MemTech, TimingParams, CORE_CYCLES_PER_MEM_CYCLE};

/// Latency model of an on-chip buffer built from NVM cells.
///
/// Latencies are expressed in **core cycles** because the buffer sits inside
/// the ORAM controller's clock domain. SRAM-backed buffers use a 1-cycle
/// access as the reference.
///
/// # Examples
///
/// ```
/// use psoram_nvm::{OnChipNvmModel, MemTech};
///
/// let pcm = OnChipNvmModel::for_tech(MemTech::Pcm);
/// let stt = OnChipNvmModel::for_tech(MemTech::SttRam);
/// assert!(pcm.write_cycles > stt.write_cycles);
/// assert!(stt.read_cycles > OnChipNvmModel::sram().read_cycles);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OnChipNvmModel {
    /// Core cycles per buffer read.
    pub read_cycles: u64,
    /// Core cycles per buffer write.
    pub write_cycles: u64,
}

impl OnChipNvmModel {
    /// An SRAM buffer: single-cycle access (the `Baseline`/`PS-ORAM` stash).
    pub fn sram() -> Self {
        OnChipNvmModel {
            read_cycles: 1,
            write_cycles: 1,
        }
    }

    /// An on-chip buffer with the cell timing of `tech`.
    ///
    /// On-chip arrays avoid the off-chip bus, so we charge the cell-level
    /// components only: `tRCD` for reads and `tCWD + tWP` for writes,
    /// converted from memory cycles to core cycles.
    pub fn for_tech(tech: MemTech) -> Self {
        let t = TimingParams::for_tech(tech);
        OnChipNvmModel {
            read_cycles: t.t_rcd * CORE_CYCLES_PER_MEM_CYCLE,
            write_cycles: (t.t_cwd + t.t_wp) * CORE_CYCLES_PER_MEM_CYCLE,
        }
    }
}

impl Default for OnChipNvmModel {
    fn default() -> Self {
        Self::sram()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sram_is_single_cycle() {
        let m = OnChipNvmModel::sram();
        assert_eq!(m.read_cycles, 1);
        assert_eq!(m.write_cycles, 1);
    }

    #[test]
    fn pcm_buffer_latency_dominates_stt() {
        let pcm = OnChipNvmModel::for_tech(MemTech::Pcm);
        let stt = OnChipNvmModel::for_tech(MemTech::SttRam);
        assert!(pcm.read_cycles > stt.read_cycles);
        assert!(pcm.write_cycles > stt.write_cycles);
    }

    #[test]
    fn pcm_values_derive_from_table3() {
        let m = OnChipNvmModel::for_tech(MemTech::Pcm);
        assert_eq!(m.read_cycles, 48 * 8);
        assert_eq!(m.write_cycles, (4 + 60) * 8);
    }

    #[test]
    fn default_is_sram() {
        assert_eq!(OnChipNvmModel::default(), OnChipNvmModel::sram());
    }
}
