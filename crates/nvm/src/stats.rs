//! Traffic statistics for the simulated memory system.

use psoram_obsv::{MetricsRegistry, MetricsSource};
use serde::{Deserialize, Serialize};

use crate::request::AccessKind;

/// Read/write traffic counters for an [`crate::NvmController`].
///
/// These are the quantities behind the paper's Figure 6 (NVM read/write
/// traffic) and the NVM-lifetime discussion.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NvmStats {
    /// Number of block reads serviced.
    pub reads: u64,
    /// Number of block writes serviced.
    pub writes: u64,
    /// Bytes read.
    pub read_bytes: u64,
    /// Bytes written.
    pub write_bytes: u64,
}

impl NvmStats {
    /// Records one access of `bytes` bytes.
    pub fn record(&mut self, kind: AccessKind, bytes: u64) {
        match kind {
            AccessKind::Read => {
                self.reads += 1;
                self.read_bytes += bytes;
            }
            AccessKind::Write => {
                self.writes += 1;
                self.write_bytes += bytes;
            }
        }
    }

    /// Total accesses of either kind.
    pub fn total_accesses(&self) -> u64 {
        self.reads + self.writes
    }

    /// Component-wise difference (`self - earlier`), for interval stats.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `earlier` has larger counters.
    pub fn since(&self, earlier: &NvmStats) -> NvmStats {
        NvmStats {
            reads: self.reads - earlier.reads,
            writes: self.writes - earlier.writes,
            read_bytes: self.read_bytes - earlier.read_bytes,
            write_bytes: self.write_bytes - earlier.write_bytes,
        }
    }
}

impl MetricsSource for NvmStats {
    fn publish(&self, prefix: &str, reg: &mut MetricsRegistry) {
        reg.set_counter(&MetricsRegistry::key(prefix, "reads"), self.reads);
        reg.set_counter(&MetricsRegistry::key(prefix, "writes"), self.writes);
        reg.set_counter(&MetricsRegistry::key(prefix, "read_bytes"), self.read_bytes);
        reg.set_counter(
            &MetricsRegistry::key(prefix, "write_bytes"),
            self.write_bytes,
        );
    }
}

impl std::ops::Add for NvmStats {
    type Output = NvmStats;

    fn add(self, rhs: NvmStats) -> NvmStats {
        NvmStats {
            reads: self.reads + rhs.reads,
            writes: self.writes + rhs.writes,
            read_bytes: self.read_bytes + rhs.read_bytes,
            write_bytes: self.write_bytes + rhs.write_bytes,
        }
    }
}

impl std::fmt::Display for NvmStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "reads={} writes={} read_bytes={} write_bytes={}",
            self.reads, self.writes, self.read_bytes, self.write_bytes
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accumulates() {
        let mut s = NvmStats::default();
        s.record(AccessKind::Read, 64);
        s.record(AccessKind::Write, 64);
        s.record(AccessKind::Write, 64);
        assert_eq!(s.reads, 1);
        assert_eq!(s.writes, 2);
        assert_eq!(s.total_accesses(), 3);
        assert_eq!(s.write_bytes, 128);
    }

    #[test]
    fn since_subtracts_componentwise() {
        let mut a = NvmStats::default();
        a.record(AccessKind::Read, 64);
        let snapshot = a;
        a.record(AccessKind::Write, 64);
        let d = a.since(&snapshot);
        assert_eq!(d.reads, 0);
        assert_eq!(d.writes, 1);
    }

    #[test]
    fn add_is_componentwise() {
        let mut a = NvmStats::default();
        a.record(AccessKind::Read, 64);
        let mut b = NvmStats::default();
        b.record(AccessKind::Write, 32);
        let c = a + b;
        assert_eq!(c.reads, 1);
        assert_eq!(c.writes, 1);
        assert_eq!(c.read_bytes, 64);
        assert_eq!(c.write_bytes, 32);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!NvmStats::default().to_string().is_empty());
    }
}
