//! Device timing parameters for the simulated memory technologies.

use serde::{Deserialize, Serialize};

/// Core clock cycles per memory clock cycle.
///
/// The paper models a 3.2 GHz in-order core over a 400 MHz memory system,
/// giving a fixed 8:1 ratio. All [`crate::NvmController`] bookkeeping is in
/// *memory* cycles; multiply by this constant to convert to core cycles.
pub const CORE_CYCLES_PER_MEM_CYCLE: u64 = 8;

/// Memory device technology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MemTech {
    /// Phase-change memory (the paper's default main memory).
    Pcm,
    /// Spin-transfer-torque RAM (used for `FullNVM(STT)` on-chip buffers).
    SttRam,
    /// Idealized DRAM-like timing, used only by the non-ORAM reference
    /// system in the §5.1 overhead comparison.
    Dram,
}

impl std::fmt::Display for MemTech {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MemTech::Pcm => write!(f, "PCM"),
            MemTech::SttRam => write!(f, "STT-RAM"),
            MemTech::Dram => write!(f, "DRAM"),
        }
    }
}

/// Device timing constraints, in memory-clock cycles (400 MHz).
///
/// Field names follow the paper's Table 3 (and NVMain's convention):
///
/// * `t_rcd` — row-to-column delay: activate → first read data.
/// * `t_wp`  — write-pulse width: the cell programming time.
/// * `t_cwd` — column-write delay: write command → data on the bus.
/// * `t_wtr` — write-to-read turnaround on the same bank.
/// * `t_rp`  — row precharge / recovery after an access.
/// * `t_ccd` — minimum gap between successive column commands.
///
/// # Examples
///
/// ```
/// use psoram_nvm::{TimingParams, MemTech};
///
/// let pcm = TimingParams::for_tech(MemTech::Pcm);
/// assert_eq!(pcm.t_rcd, 48);
/// assert_eq!(pcm.t_wp, 60);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimingParams {
    /// Activate-to-read delay (cycles).
    pub t_rcd: u64,
    /// Write pulse width (cycles).
    pub t_wp: u64,
    /// Column write delay (cycles).
    pub t_cwd: u64,
    /// Write-to-read turnaround (cycles).
    pub t_wtr: u64,
    /// Precharge/recovery (cycles).
    pub t_rp: u64,
    /// Column-to-column delay (cycles).
    pub t_ccd: u64,
}

impl TimingParams {
    /// The paper's Table 3 timing for a given technology.
    ///
    /// PCM: `48/60/4/3/1/2`; STT-RAM: `14/14/10/5/1/2`. The DRAM reference
    /// uses conventional DDR-like values (`11/0/4/3/11/2`; writes cost no
    /// cell-programming pulse beyond the burst).
    pub fn for_tech(tech: MemTech) -> Self {
        match tech {
            MemTech::Pcm => TimingParams {
                t_rcd: 48,
                t_wp: 60,
                t_cwd: 4,
                t_wtr: 3,
                t_rp: 1,
                t_ccd: 2,
            },
            MemTech::SttRam => TimingParams {
                t_rcd: 14,
                t_wp: 14,
                t_cwd: 10,
                t_wtr: 5,
                t_rp: 1,
                t_ccd: 2,
            },
            MemTech::Dram => TimingParams {
                t_rcd: 11,
                t_wp: 0,
                t_cwd: 4,
                t_wtr: 3,
                t_rp: 11,
                t_ccd: 2,
            },
        }
    }

    /// Latency (cycles) from read command issue until the last data beat of
    /// a `burst_cycles`-long transfer has arrived.
    pub fn read_latency(&self, burst_cycles: u64) -> u64 {
        self.t_rcd + burst_cycles
    }

    /// Latency (cycles) from write command issue until the data has been
    /// accepted by the device (bus side). Cell programming (`t_wp`)
    /// continues afterwards and keeps the bank busy.
    pub fn write_accept_latency(&self, burst_cycles: u64) -> u64 {
        self.t_cwd + burst_cycles
    }

    /// Total bank-occupancy of a write: accept + program + recover.
    pub fn write_bank_occupancy(&self, burst_cycles: u64) -> u64 {
        self.write_accept_latency(burst_cycles) + self.t_wp + self.t_rp
    }

    /// Total bank-occupancy of a read: deliver + recover.
    pub fn read_bank_occupancy(&self, burst_cycles: u64) -> u64 {
        self.read_latency(burst_cycles) + self.t_rp
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_pcm_timing_values() {
        let t = TimingParams::for_tech(MemTech::Pcm);
        assert_eq!(
            (t.t_rcd, t.t_wp, t.t_cwd, t.t_wtr, t.t_rp, t.t_ccd),
            (48, 60, 4, 3, 1, 2)
        );
    }

    #[test]
    fn paper_sttram_timing_values() {
        let t = TimingParams::for_tech(MemTech::SttRam);
        assert_eq!(
            (t.t_rcd, t.t_wp, t.t_cwd, t.t_wtr, t.t_rp, t.t_ccd),
            (14, 14, 10, 5, 1, 2)
        );
    }

    #[test]
    fn pcm_writes_slower_than_reads() {
        let t = TimingParams::for_tech(MemTech::Pcm);
        assert!(t.write_bank_occupancy(8) > t.read_bank_occupancy(8));
    }

    #[test]
    fn sttram_faster_than_pcm() {
        let p = TimingParams::for_tech(MemTech::Pcm);
        let s = TimingParams::for_tech(MemTech::SttRam);
        assert!(s.read_latency(8) < p.read_latency(8));
        assert!(s.write_bank_occupancy(8) < p.write_bank_occupancy(8));
    }

    #[test]
    fn display_names() {
        assert_eq!(MemTech::Pcm.to_string(), "PCM");
        assert_eq!(MemTech::SttRam.to_string(), "STT-RAM");
        assert_eq!(MemTech::Dram.to_string(), "DRAM");
    }
}
