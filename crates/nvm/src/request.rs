//! Memory request types.

use serde::{Deserialize, Serialize};

/// Kind of a memory access as seen by the NVM controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessKind {
    /// Read one block (cacheline) from the device.
    Read,
    /// Write one block (cacheline) to the device.
    Write,
}

impl AccessKind {
    /// `true` for [`AccessKind::Read`].
    pub fn is_read(self) -> bool {
        matches!(self, AccessKind::Read)
    }

    /// `true` for [`AccessKind::Write`].
    pub fn is_write(self) -> bool {
        matches!(self, AccessKind::Write)
    }
}

impl std::fmt::Display for AccessKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AccessKind::Read => write!(f, "read"),
            AccessKind::Write => write!(f, "write"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_predicates() {
        assert!(AccessKind::Read.is_read());
        assert!(!AccessKind::Read.is_write());
        assert!(AccessKind::Write.is_write());
        assert!(!AccessKind::Write.is_read());
    }

    #[test]
    fn display() {
        assert_eq!(AccessKind::Read.to_string(), "read");
        assert_eq!(AccessKind::Write.to_string(), "write");
    }
}
