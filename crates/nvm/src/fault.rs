//! Device-level fault model for the WPQ/NVM backend.
//!
//! PS-ORAM's crash-consistency argument leans on two device guarantees
//! that real NVM parts do not actually give:
//!
//! 1. **ADR atomicity** — that the energy reserve drains every committed
//!    WPQ batch to media in full. In practice persists complete at
//!    cacheline (64 B) granularity, so an interrupted drain can tear a
//!    batch mid-way, and a dropped (or doubled) drainer `end` signal can
//!    lose or replay a whole round.
//! 2. **Media fidelity** — that a cell returns what was written. PCM and
//!    STT-RAM exhibit resistance drift and stuck-at faults, so recently
//!    programmed lines can read back corrupted, and reads can fail
//!    transiently.
//!
//! [`FaultPlan`] is a seeded adversary that decides, at each crash and
//! each media read, which of these violations occur. It owns its own
//! SplitMix64 stream so installing it never perturbs controller RNGs:
//! with all probabilities at zero the instrumented system is
//! bit-identical to the uninstrumented one.
//!
//! On top of the device violations, the plan models an *active* memory
//! adversary against freshness: re-serving a stale-but-authentic snapshot
//! of a persist unit ([`FaultClass::StaleReplay`]), or swapping two
//! authentic units across addresses ([`FaultClass::CrossSplice`]). Both
//! defeat pure content authentication — the replayed bytes carry a valid
//! tag — and are only caught by the counter-tree freshness layer in
//! `psoram-core`.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use serde::{Deserialize, Serialize};

/// Classification of a detected device fault.
///
/// This is the `FaultClass` half of the recovery taxonomy: recovery code
/// classifies damage it *detects* into one of these, pairs it with a
/// repair-or-fail-safe decision, and reports it (see `RecoveryError` in
/// `psoram-core`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum FaultClass {
    /// An ADR drain was interrupted mid-batch: a prefix of the round's
    /// cachelines reached media, the suffix did not.
    TornFlush,
    /// A drainer `end` signal was dropped: the whole committed round
    /// never reached media.
    SignalLoss,
    /// A drainer `end` signal was duplicated: the round's writes were
    /// applied twice (benign for idempotent slot writes, but it must be
    /// detected, deduplicated, and accounted).
    DuplicatedSignal,
    /// Media corruption: bit rot or interrupted cell programming in a
    /// recently written region.
    MediaCorruption,
    /// A media read failed transiently (or the line is stuck).
    TransientRead,
    /// A stale-but-authentic snapshot of a persist unit was re-served in
    /// place of the freshest version (replay; includes rollback to the
    /// never-written genesis state).
    StaleReplay,
    /// An authentic unit (content plus its stored freshness record) was
    /// moved from one address onto another.
    CrossSplice,
    /// A media line exhausted its cell budget: wear-correlated stuck-at
    /// failure that no retry (and, without spare capacity, no repair)
    /// can recover.
    WearOut,
}

impl FaultClass {
    /// Stable lower-case label (used in reports and event args).
    pub fn label(self) -> &'static str {
        match self {
            FaultClass::TornFlush => "torn_flush",
            FaultClass::SignalLoss => "signal_loss",
            FaultClass::DuplicatedSignal => "duplicated_signal",
            FaultClass::MediaCorruption => "media_corruption",
            FaultClass::TransientRead => "transient_read",
            FaultClass::StaleReplay => "stale_replay",
            FaultClass::CrossSplice => "cross_splice",
            FaultClass::WearOut => "wear_out",
        }
    }
}

impl std::fmt::Display for FaultClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Per-fault-kind injection probabilities.
///
/// All values are probabilities in `[0, 1]`. The round-fate draws
/// (`torn_flush`, `signal_loss`, `duplicate_signal`) are evaluated in
/// that order against the round whose media programming the crash
/// interrupted; `bit_flip_per_unit` is drawn once per surviving persist
/// unit; `transient_read` once per path load, with `stuck_read` the
/// conditional probability that the failure is persistent rather than
/// transient (defeating bounded retry).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultConfig {
    /// P(interrupted drain tears the in-flight round).
    pub torn_flush: f64,
    /// P(the in-flight round's end signal was lost entirely).
    pub signal_loss: f64,
    /// P(the in-flight round's end signal was duplicated).
    pub duplicate_signal: f64,
    /// P(bit flip) per surviving persist unit of the in-flight round.
    pub bit_flip_per_unit: f64,
    /// P(read failure) per media path load.
    pub transient_read: f64,
    /// P(failure is stuck | read failure): retries will not help.
    pub stuck_read: f64,
    /// P(the crash re-serves one stale-but-authentic persist unit of the
    /// in-flight round) — the replay adversary.
    pub stale_replay: f64,
    /// P(the crash swaps two authentic persist units across addresses) —
    /// the splice adversary.
    pub cross_splice: f64,
    /// P(one path load transiently re-serves a stale snapshot of a unit)
    /// — the read-time replay adversary.
    pub read_replay: f64,
    /// Scale of the wear-coupled media arm: the per-path-load fault
    /// probability is `wear_media_fault * frac²`, where `frac` is the
    /// hottest loaded line's wear fraction (clamped to 1) — so faults
    /// concentrate progressively on hot lines instead of landing
    /// uniformly.
    pub wear_media_fault: f64,
    /// P(the wear fault is a stuck-at conviction | the line is past its
    /// budget): retirement (or fail-safe) instead of a transient retry.
    pub wear_stuck: f64,
}

impl FaultConfig {
    /// No faults: an installed plan with this config is inert.
    pub fn disabled() -> Self {
        FaultConfig {
            torn_flush: 0.0,
            signal_loss: 0.0,
            duplicate_signal: 0.0,
            bit_flip_per_unit: 0.0,
            transient_read: 0.0,
            stuck_read: 0.0,
            stale_replay: 0.0,
            cross_splice: 0.0,
            read_replay: 0.0,
            wear_media_fault: 0.0,
            wear_stuck: 0.0,
        }
    }

    /// The device-fault campaign mix: every class fires often enough for
    /// a few-hundred-crash campaign to exercise all of them. The replay
    /// adversary stays off — see [`FaultConfig::replay_mix`].
    pub fn campaign_default() -> Self {
        FaultConfig {
            torn_flush: 0.25,
            signal_loss: 0.10,
            duplicate_signal: 0.10,
            bit_flip_per_unit: 0.06,
            transient_read: 0.03,
            stuck_read: 0.10,
            ..Self::disabled()
        }
    }

    /// An aggressive mix for stress tests: most crashes damage something.
    pub fn aggressive() -> Self {
        FaultConfig {
            torn_flush: 0.45,
            signal_loss: 0.25,
            duplicate_signal: 0.15,
            bit_flip_per_unit: 0.25,
            transient_read: 0.08,
            stuck_read: 0.15,
            ..Self::disabled()
        }
    }

    /// Arms the replay/splice adversary on top of an existing mix.
    pub fn with_replay(mut self) -> Self {
        self.stale_replay = 0.30;
        self.cross_splice = 0.18;
        self.read_replay = 0.05;
        self
    }

    /// The replay campaign mix: the default device mix plus the
    /// replay/splice adversary.
    pub fn replay_mix() -> Self {
        Self::campaign_default().with_replay()
    }

    /// Arms the wear-coupled media arm on top of an existing mix. At
    /// full scale a budget-exhausted line faults on (almost) every load;
    /// half of those convictions are stuck-at.
    pub fn with_wear(mut self) -> Self {
        self.wear_media_fault = 0.9;
        self.wear_stuck = 0.5;
        self
    }

    /// The endurance campaign mix: *only* the wear arm, so every injected
    /// fault in a lifetime campaign is wear-correlated and the crash-side
    /// schedule stays identical to an uninstrumented run.
    pub fn wear_only() -> Self {
        Self::disabled().with_wear()
    }

    /// The full wear campaign mix: the default device mix plus the
    /// wear-coupled arm.
    pub fn wear_mix() -> Self {
        Self::campaign_default().with_wear()
    }

    /// `true` when every probability is zero.
    pub fn is_disabled(&self) -> bool {
        self.torn_flush == 0.0
            && self.signal_loss == 0.0
            && self.duplicate_signal == 0.0
            && self.bit_flip_per_unit == 0.0
            && self.transient_read == 0.0
            && self.stale_replay == 0.0
            && self.cross_splice == 0.0
            && self.read_replay == 0.0
            && self.wear_media_fault == 0.0
    }
}

/// Counters of faults a plan has injected (ground truth, for differential
/// checks against what recovery *detected*).
///
/// The replay-adversary counters (`stale_replays`, `cross_splices`,
/// `read_replays`) are skipped during serialization while at their
/// defaults, so device-campaign artifacts produced before the replay
/// adversary existed deserialize unchanged and a replay-free run
/// serializes exactly as it did before the fields existed. That
/// skip-at-default contract is why `Serialize`/`Deserialize` are
/// hand-written rather than derived.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Rounds torn mid-drain.
    pub torn_flushes: u64,
    /// Rounds lost to a dropped end signal.
    pub signal_losses: u64,
    /// Rounds replayed by a duplicated end signal.
    pub duplicated_signals: u64,
    /// Individual persist units hit by bit flips.
    pub bit_flips: u64,
    /// Read failures injected (transient and stuck).
    pub read_faults: u64,
    /// Read failures that were stuck (retry-defeating).
    pub stuck_reads: u64,
    /// Crash-round fates drawn (including `Intact`).
    pub fates_drawn: u64,
    /// Persist units re-served stale at a crash (replay adversary).
    pub stale_replays: u64,
    /// Unit pairs swapped across addresses at a crash (splice adversary).
    pub cross_splices: u64,
    /// Path loads that transiently re-served a stale unit snapshot.
    pub read_replays: u64,
    /// Wear-correlated media faults injected (transient and stuck).
    pub wear_faults: u64,
    /// Wear faults that were stuck-at convictions (past-budget lines).
    pub wear_stuck_faults: u64,
}

impl FaultStats {
    /// Total faults injected across all classes.
    pub fn total_injected(&self) -> u64 {
        self.torn_flushes
            + self.signal_losses
            + self.duplicated_signals
            + self.bit_flips
            + self.read_faults
            + self.total_replays()
            + self.wear_faults
    }

    /// Freshness attacks injected (crash replays, splices, read replays).
    pub fn total_replays(&self) -> u64 {
        self.stale_replays + self.cross_splices + self.read_replays
    }
}

impl Serialize for FaultStats {
    fn to_value(&self) -> serde::Value {
        let mut fields = vec![
            ("torn_flushes".to_string(), self.torn_flushes.to_value()),
            ("signal_losses".to_string(), self.signal_losses.to_value()),
            (
                "duplicated_signals".to_string(),
                self.duplicated_signals.to_value(),
            ),
            ("bit_flips".to_string(), self.bit_flips.to_value()),
            ("read_faults".to_string(), self.read_faults.to_value()),
            ("stuck_reads".to_string(), self.stuck_reads.to_value()),
            ("fates_drawn".to_string(), self.fates_drawn.to_value()),
        ];
        if self.stale_replays != 0 {
            fields.push(("stale_replays".to_string(), self.stale_replays.to_value()));
        }
        if self.cross_splices != 0 {
            fields.push(("cross_splices".to_string(), self.cross_splices.to_value()));
        }
        if self.read_replays != 0 {
            fields.push(("read_replays".to_string(), self.read_replays.to_value()));
        }
        // Like the replay counters, the wear counters are skipped at
        // their defaults so pre-endurance artifacts round-trip unchanged
        // and a wear-free run serializes exactly as before.
        if self.wear_faults != 0 {
            fields.push(("wear_faults".to_string(), self.wear_faults.to_value()));
        }
        if self.wear_stuck_faults != 0 {
            fields.push((
                "wear_stuck_faults".to_string(),
                self.wear_stuck_faults.to_value(),
            ));
        }
        serde::Value::Object(fields)
    }
}

impl Deserialize for FaultStats {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        let fields = v
            .as_object()
            .ok_or_else(|| serde::DeError::custom("expected object for FaultStats"))?;
        fn optional(v: &serde::Value, key: &str) -> Result<u64, serde::DeError> {
            match v.get(key) {
                Some(inner) => u64::from_value(inner),
                None => Ok(0),
            }
        }
        Ok(FaultStats {
            torn_flushes: Deserialize::from_value(serde::object_field(
                fields,
                "torn_flushes",
                "FaultStats",
            )?)?,
            signal_losses: Deserialize::from_value(serde::object_field(
                fields,
                "signal_losses",
                "FaultStats",
            )?)?,
            duplicated_signals: Deserialize::from_value(serde::object_field(
                fields,
                "duplicated_signals",
                "FaultStats",
            )?)?,
            bit_flips: Deserialize::from_value(serde::object_field(
                fields,
                "bit_flips",
                "FaultStats",
            )?)?,
            read_faults: Deserialize::from_value(serde::object_field(
                fields,
                "read_faults",
                "FaultStats",
            )?)?,
            stuck_reads: Deserialize::from_value(serde::object_field(
                fields,
                "stuck_reads",
                "FaultStats",
            )?)?,
            fates_drawn: Deserialize::from_value(serde::object_field(
                fields,
                "fates_drawn",
                "FaultStats",
            )?)?,
            stale_replays: optional(v, "stale_replays")?,
            cross_splices: optional(v, "cross_splices")?,
            read_replays: optional(v, "read_replays")?,
            wear_faults: optional(v, "wear_faults")?,
            wear_stuck_faults: optional(v, "wear_stuck_faults")?,
        })
    }
}

impl psoram_obsv::MetricsSource for FaultStats {
    fn publish(&self, prefix: &str, reg: &mut psoram_obsv::MetricsRegistry) {
        use psoram_obsv::MetricsRegistry as R;
        reg.set_counter(&R::key(prefix, "torn_flushes"), self.torn_flushes);
        reg.set_counter(&R::key(prefix, "signal_losses"), self.signal_losses);
        reg.set_counter(
            &R::key(prefix, "duplicated_signals"),
            self.duplicated_signals,
        );
        reg.set_counter(&R::key(prefix, "bit_flips"), self.bit_flips);
        reg.set_counter(&R::key(prefix, "read_faults"), self.read_faults);
        reg.set_counter(&R::key(prefix, "stuck_reads"), self.stuck_reads);
        reg.set_counter(&R::key(prefix, "fates_drawn"), self.fates_drawn);
        reg.set_counter(&R::key(prefix, "stale_replays"), self.stale_replays);
        reg.set_counter(&R::key(prefix, "cross_splices"), self.cross_splices);
        reg.set_counter(&R::key(prefix, "read_replays"), self.read_replays);
        reg.set_counter(&R::key(prefix, "wear_faults"), self.wear_faults);
        reg.set_counter(&R::key(prefix, "wear_stuck_faults"), self.wear_stuck_faults);
    }
}

/// The fate a [`FaultPlan`] assigns to the round whose media programming
/// a crash interrupted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoundFate {
    /// The drain completed; every unit reached media (bit flips may still
    /// hit individual units).
    Intact,
    /// Only the first `kept` units reached media; the rest read back as
    /// interrupted-programming garbage.
    Torn {
        /// Units (cachelines) that completed before the tear.
        kept: usize,
    },
    /// The end signal was dropped: no unit of the round reached media.
    Lost,
    /// The end signal was duplicated: the round applied twice.
    Duplicated,
}

/// The outcome a [`FaultPlan`] assigns to one media path load.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadFault {
    /// The read succeeds.
    None,
    /// The read fails `attempts` times, then succeeds (bounded retry with
    /// backoff recovers it).
    Transient {
        /// Failed attempts before the read goes through.
        attempts: u32,
    },
    /// The line is stuck: every retry fails; the controller must
    /// fail-safe.
    Stuck,
}

/// A seeded device-fault adversary.
///
/// Deterministic: the same seed, config, and call sequence produce the
/// same fault schedule, which is what keeps device-fault campaigns
/// byte-identical across job counts. The plan draws from its own
/// SplitMix64 stream and never touches any controller RNG.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    cfg: FaultConfig,
    state: u64,
    stats: FaultStats,
}

impl FaultPlan {
    /// Creates a plan from a seed and a fault mix.
    pub fn new(seed: u64, cfg: FaultConfig) -> Self {
        FaultPlan {
            cfg,
            // Avoid the all-zeros fixed point without perturbing other seeds.
            state: seed ^ 0x6A09_E667_F3BC_C909,
            stats: FaultStats::default(),
        }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            // Still consume a draw so the schedule does not depend on
            // which probabilities are zero.
            let _ = self.next_u64();
            return false;
        }
        ((self.next_u64() >> 11) as f64) < p * (1u64 << 53) as f64
    }

    /// Draws the fate of the in-flight round of `units` persist units.
    ///
    /// With `units == 0` the fate is always [`RoundFate::Intact`] (there
    /// is nothing in flight), but draws are still consumed so the
    /// downstream schedule is independent of round sizes.
    pub fn round_fate(&mut self, units: usize) -> RoundFate {
        self.stats.fates_drawn += 1;
        let torn = self.chance(self.cfg.torn_flush);
        let lost = self.chance(self.cfg.signal_loss);
        let dup = self.chance(self.cfg.duplicate_signal);
        let kept_draw = self.next_u64();
        if units == 0 {
            return RoundFate::Intact;
        }
        if lost {
            self.stats.signal_losses += 1;
            RoundFate::Lost
        } else if torn {
            self.stats.torn_flushes += 1;
            RoundFate::Torn {
                kept: (kept_draw % units as u64) as usize,
            }
        } else if dup {
            self.stats.duplicated_signals += 1;
            RoundFate::Duplicated
        } else {
            RoundFate::Intact
        }
    }

    /// Draws whether one surviving persist unit takes a bit flip.
    pub fn unit_corrupted(&mut self) -> bool {
        let hit = self.chance(self.cfg.bit_flip_per_unit);
        if hit {
            self.stats.bit_flips += 1;
        }
        hit
    }

    /// Entropy for choosing which byte/bit of a damaged unit to flip.
    pub fn entropy(&mut self) -> u64 {
        self.next_u64()
    }

    /// Draws whether the crash re-serves one stale unit of the in-flight
    /// round, and which (an index into the round's persist units).
    ///
    /// With the replay adversary disabled (probability zero) no entropy
    /// is consumed at all, so a replay-free mix keeps the exact fault
    /// schedule of a plan that never knew about replays. With it armed,
    /// draws are always consumed — even when `units == 0` and nothing
    /// can be replayed — so the downstream schedule is independent of
    /// round sizes. A replayed unit of the last applied round always has
    /// an authentic prior snapshot (the round overwrote it), so a `Some`
    /// here is always applied — the counter is ground truth for the
    /// differential detection check.
    pub fn replay_fate(&mut self, units: usize) -> Option<usize> {
        if self.cfg.stale_replay <= 0.0 {
            return None;
        }
        let hit = self.chance(self.cfg.stale_replay);
        let pick = self.next_u64();
        if units == 0 || !hit {
            return None;
        }
        Some((pick % units as u64) as usize)
    }

    /// Counts one *applied* crash-time replay. The controller confirms
    /// after restoring the unit's stale snapshot, so the ground-truth
    /// counter only covers attacks that actually landed on media (a
    /// drawn replay with no recorded history, for instance, never
    /// happened).
    pub fn confirm_stale_replay(&mut self) {
        self.stats.stale_replays += 1;
    }

    /// Draws whether the crash swaps two authentic units of the in-flight
    /// round across addresses, and which pair (distinct indices).
    ///
    /// Entropy rules mirror [`FaultPlan::replay_fate`]: zero probability
    /// consumes nothing; an armed mix always draws, even when `units < 2`
    /// and no pair exists.
    pub fn splice_fate(&mut self, units: usize) -> Option<(usize, usize)> {
        if self.cfg.cross_splice <= 0.0 {
            return None;
        }
        let hit = self.chance(self.cfg.cross_splice);
        let first = self.next_u64();
        let second = self.next_u64();
        if units < 2 || !hit {
            return None;
        }
        let i = (first % units as u64) as usize;
        let mut j = (second % (units as u64 - 1)) as usize;
        if j >= i {
            j += 1;
        }
        Some((i, j))
    }

    /// Counts one *applied* cross-address splice (see
    /// [`FaultPlan::confirm_stale_replay`] for the confirm discipline).
    /// A drawn pair whose indices land on the same media unit, or whose
    /// units were already destroyed by bit rot, is a no-op the
    /// controller never confirms.
    pub fn confirm_cross_splice(&mut self) {
        self.stats.cross_splices += 1;
    }

    /// Draws whether one media path load transiently re-serves a stale
    /// snapshot, returning entropy for choosing which path unit.
    ///
    /// Entropy rules mirror [`FaultPlan::replay_fate`]: zero probability
    /// consumes nothing. Whether the pick lands on a unit that *has* a
    /// stale snapshot is the controller's to decide; it reports an
    /// applied serve back via [`FaultPlan::confirm_read_replay`] so the
    /// ground-truth counter only counts attacks that actually reached
    /// the fetch path.
    pub fn read_replay(&mut self) -> Option<u64> {
        if self.cfg.read_replay <= 0.0 {
            return None;
        }
        let hit = self.chance(self.cfg.read_replay);
        let pick = self.next_u64();
        hit.then_some(pick)
    }

    /// Counts one applied read-time replay (see [`FaultPlan::read_replay`]).
    pub fn confirm_read_replay(&mut self) {
        self.stats.read_replays += 1;
    }

    /// Draws the outcome of one media path load.
    pub fn read_fault(&mut self) -> ReadFault {
        let fail = self.chance(self.cfg.transient_read);
        let stuck = self.chance(self.cfg.stuck_read);
        let extra = self.next_u64();
        if !fail {
            return ReadFault::None;
        }
        self.stats.read_faults += 1;
        if stuck {
            self.stats.stuck_reads += 1;
            ReadFault::Stuck
        } else {
            ReadFault::Transient {
                attempts: 1 + (extra % 2) as u32,
            }
        }
    }

    /// Draws the wear-coupled outcome of one media path load, given the
    /// wear fraction of the hottest line the load touches (lifetime
    /// writes / seeded cell budget; 1.0 = budget exhausted).
    ///
    /// The fault probability is `wear_media_fault * frac²` (clamping
    /// `frac` to 1), so cold lines are effectively immune and faults
    /// concentrate progressively on hot lines. A fault on a past-budget
    /// line (`frac >= 1`) escalates to [`ReadFault::Stuck`] with
    /// probability `wear_stuck` — a conviction the controller must retire
    /// or fail safe on; everything else is a transient drift failure that
    /// bounded retry recovers.
    ///
    /// Entropy rules mirror [`FaultPlan::replay_fate`]: with the arm
    /// disabled (`wear_media_fault <= 0`) *no* entropy is consumed, so a
    /// wear-free mix keeps the exact fault schedule of a plan that never
    /// knew about wear — goldens pass un-re-blessed. Armed, the draw
    /// always consumes its three units, whatever the wear values, so the
    /// schedule is independent of how worn the device happens to be.
    pub fn wear_fault(&mut self, wear_fraction: f64) -> ReadFault {
        if self.cfg.wear_media_fault <= 0.0 {
            return ReadFault::None;
        }
        let frac = wear_fraction.clamp(0.0, 1.0);
        let fail = self.chance(self.cfg.wear_media_fault * frac * frac);
        let stuck = self.chance(self.cfg.wear_stuck);
        let extra = self.next_u64();
        if !fail {
            return ReadFault::None;
        }
        self.stats.wear_faults += 1;
        if stuck && wear_fraction >= 1.0 {
            self.stats.wear_stuck_faults += 1;
            ReadFault::Stuck
        } else {
            ReadFault::Transient {
                attempts: 1 + (extra % 2) as u32,
            }
        }
    }

    /// Counters of everything injected so far.
    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    /// The plan's fault mix.
    pub fn config(&self) -> FaultConfig {
        self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_seeds_produce_identical_schedules() {
        let mut a = FaultPlan::new(7, FaultConfig::replay_mix());
        let mut b = FaultPlan::new(7, FaultConfig::replay_mix());
        for units in [0usize, 1, 5, 9, 3, 12] {
            assert_eq!(a.round_fate(units), b.round_fate(units));
            assert_eq!(a.unit_corrupted(), b.unit_corrupted());
            assert_eq!(a.read_fault(), b.read_fault());
            assert_eq!(a.replay_fate(units), b.replay_fate(units));
            assert_eq!(a.splice_fate(units), b.splice_fate(units));
            assert_eq!(a.read_replay(), b.read_replay());
            assert_eq!(a.entropy(), b.entropy());
        }
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn disabled_plan_injects_nothing() {
        let mut p = FaultPlan::new(3, FaultConfig::disabled());
        for _ in 0..200 {
            assert_eq!(p.round_fate(8), RoundFate::Intact);
            assert!(!p.unit_corrupted());
            assert_eq!(p.read_fault(), ReadFault::None);
            assert_eq!(p.replay_fate(8), None);
            assert_eq!(p.splice_fate(8), None);
            assert_eq!(p.read_replay(), None);
            assert_eq!(p.wear_fault(1.0), ReadFault::None);
        }
        assert_eq!(p.stats().total_injected(), 0);
        assert!(FaultConfig::disabled().is_disabled());
        assert!(!FaultConfig::campaign_default().is_disabled());
        assert!(!FaultConfig::replay_mix().is_disabled());
    }

    #[test]
    fn replay_draws_are_schedule_invariant() {
        // Within an armed mix the replay draws must consume entropy even
        // when nothing can be replayed (empty round, singleton round for
        // a splice), so the downstream schedule does not depend on round
        // sizes.
        let mut a = FaultPlan::new(5, FaultConfig::replay_mix());
        let mut b = FaultPlan::new(5, FaultConfig::replay_mix());
        assert_eq!(a.replay_fate(0), None);
        assert_eq!(a.splice_fate(1), None);
        let _ = b.replay_fate(9);
        let _ = b.splice_fate(9);
        assert_eq!(a.entropy(), b.entropy(), "draw counts diverged");

        // With the adversary off (probability zero) the draws burn *no*
        // entropy: a replay-free mix keeps the exact schedule of a plan
        // that never drew replay fates at all.
        let mut c = FaultPlan::new(6, FaultConfig::campaign_default());
        let mut d = FaultPlan::new(6, FaultConfig::campaign_default());
        let _ = c.replay_fate(4);
        let _ = c.splice_fate(4);
        let _ = c.read_replay();
        assert_eq!(c.entropy(), d.entropy(), "disabled draws consumed entropy");
    }

    #[test]
    fn splice_picks_a_distinct_pair() {
        let mut p = FaultPlan::new(
            17,
            FaultConfig {
                cross_splice: 1.0,
                ..FaultConfig::disabled()
            },
        );
        for units in [2usize, 3, 5, 8, 13] {
            for _ in 0..64 {
                let (i, j) = p.splice_fate(units).expect("p=1 must splice");
                assert_ne!(i, j);
                assert!(i < units && j < units);
            }
        }
    }

    #[test]
    fn replay_classes_fire_under_replay_mix() {
        let mut p = FaultPlan::new(0xF2E5, FaultConfig::replay_mix());
        let mut applied_reads = 0;
        for _ in 0..2000 {
            if p.replay_fate(8).is_some() {
                p.confirm_stale_replay();
            }
            if p.splice_fate(8).is_some() {
                p.confirm_cross_splice();
            }
            if p.read_replay().is_some() {
                p.confirm_read_replay();
                applied_reads += 1;
            }
        }
        let s = p.stats();
        assert!(s.stale_replays > 0, "no stale replay in 2000 draws");
        assert!(s.cross_splices > 0, "no cross splice in 2000 draws");
        assert_eq!(s.read_replays, applied_reads);
        assert_eq!(
            s.total_replays(),
            s.stale_replays + s.cross_splices + s.read_replays
        );
        assert!(s.total_injected() >= s.total_replays());
    }

    #[test]
    fn fault_stats_serde_skips_replay_fields_at_default() {
        // Golden-compatibility contract: a replay-free stats record
        // serializes exactly as it did before the adversary existed.
        let s = FaultStats {
            torn_flushes: 3,
            fates_drawn: 10,
            ..FaultStats::default()
        };
        let json = serde_json::to_string(&s).expect("serialize");
        assert!(!json.contains("stale_replays"));
        assert!(!json.contains("cross_splices"));
        assert!(!json.contains("read_replays"));
        let back: FaultStats = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, s);

        let armed = FaultStats {
            stale_replays: 2,
            cross_splices: 1,
            read_replays: 4,
            ..s
        };
        let json = serde_json::to_string(&armed).expect("serialize");
        assert!(json.contains("stale_replays"));
        let back: FaultStats = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, armed);
    }

    #[test]
    fn wear_draws_are_schedule_invariant() {
        // Armed: the wear draw consumes its fixed entropy whatever the
        // wear fraction, so the downstream schedule is independent of how
        // worn the device is.
        let mut a = FaultPlan::new(5, FaultConfig::wear_mix());
        let mut b = FaultPlan::new(5, FaultConfig::wear_mix());
        let _ = a.wear_fault(0.0);
        let _ = b.wear_fault(1.5);
        assert_eq!(a.entropy(), b.entropy(), "draw counts diverged");

        // Disabled: no entropy at all — a wear-free mix keeps the exact
        // schedule of a plan that never drew wear fates (golden compat).
        let mut c = FaultPlan::new(6, FaultConfig::campaign_default());
        let mut d = FaultPlan::new(6, FaultConfig::campaign_default());
        let _ = c.wear_fault(1.0);
        let _ = c.wear_fault(0.3);
        assert_eq!(c.entropy(), d.entropy(), "disabled draws consumed entropy");
    }

    #[test]
    fn wear_faults_concentrate_on_hot_lines() {
        let mut p = FaultPlan::new(0xEA2, FaultConfig::wear_only());
        let mut cold = 0u64;
        let mut hot = 0u64;
        let mut stuck = 0u64;
        for _ in 0..2000 {
            if p.wear_fault(0.05) != ReadFault::None {
                cold += 1;
            }
            match p.wear_fault(1.0) {
                ReadFault::None => {}
                ReadFault::Transient { attempts } => {
                    assert!((1..=2).contains(&attempts));
                    hot += 1;
                }
                ReadFault::Stuck => {
                    hot += 1;
                    stuck += 1;
                }
            }
        }
        assert!(hot > 100 * cold.max(1), "hot {hot} vs cold {cold}");
        assert!(stuck > 0, "past-budget lines must convict eventually");
        let s = p.stats();
        assert_eq!(s.wear_faults, hot + cold);
        assert_eq!(s.wear_stuck_faults, stuck);
        assert!(s.total_injected() >= s.wear_faults);
        // A below-budget line never sticks, however worn.
        let mut q = FaultPlan::new(1, FaultConfig::wear_only());
        for _ in 0..500 {
            assert_ne!(q.wear_fault(0.99), ReadFault::Stuck);
        }
        assert!(!FaultConfig::wear_only().is_disabled());
    }

    #[test]
    fn fault_stats_serde_skips_wear_fields_at_default() {
        let s = FaultStats {
            read_faults: 2,
            fates_drawn: 4,
            ..FaultStats::default()
        };
        let json = serde_json::to_string(&s).expect("serialize");
        assert!(!json.contains("wear_faults"));
        assert!(!json.contains("wear_stuck_faults"));
        let back: FaultStats = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, s);

        let armed = FaultStats {
            wear_faults: 7,
            wear_stuck_faults: 3,
            ..s
        };
        let json = serde_json::to_string(&armed).expect("serialize");
        assert!(json.contains("wear_faults"));
        let back: FaultStats = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, armed);
    }

    #[test]
    fn torn_keeps_a_strict_prefix() {
        let mut p = FaultPlan::new(11, FaultConfig::aggressive());
        let mut saw_torn = false;
        for _ in 0..500 {
            if let RoundFate::Torn { kept } = p.round_fate(6) {
                assert!(kept < 6, "a torn round must drop at least one unit");
                saw_torn = true;
            }
        }
        assert!(saw_torn, "aggressive mix never tore a round in 500 draws");
        assert!(p.stats().torn_flushes > 0);
    }

    #[test]
    fn empty_rounds_are_always_intact_but_consume_draws() {
        let mut a = FaultPlan::new(5, FaultConfig::aggressive());
        let mut b = FaultPlan::new(5, FaultConfig::aggressive());
        assert_eq!(a.round_fate(0), RoundFate::Intact);
        // b skips the empty round: streams must now diverge, proving the
        // empty round consumed entropy (schedule independence).
        let a_next = a.entropy();
        let b_next = b.entropy();
        assert_ne!(a_next, b_next);
    }

    #[test]
    fn all_classes_fire_under_campaign_mix() {
        let mut p = FaultPlan::new(0xCA_50, FaultConfig::campaign_default());
        for _ in 0..3000 {
            let _ = p.round_fate(8);
            let _ = p.unit_corrupted();
            let _ = p.read_fault();
        }
        let s = p.stats();
        assert!(s.torn_flushes > 0, "no torn flush in 3000 draws");
        assert!(s.signal_losses > 0, "no signal loss in 3000 draws");
        assert!(s.duplicated_signals > 0, "no duplicated signal");
        assert!(s.bit_flips > 0, "no bit flip");
        assert!(s.read_faults > 0, "no read fault");
        assert!(s.stuck_reads > 0, "no stuck read");
        assert_eq!(s.fates_drawn, 3000);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(FaultClass::TornFlush.label(), "torn_flush");
        assert_eq!(FaultClass::SignalLoss.to_string(), "signal_loss");
        assert_eq!(FaultClass::DuplicatedSignal.label(), "duplicated_signal");
        assert_eq!(FaultClass::MediaCorruption.label(), "media_corruption");
        assert_eq!(FaultClass::TransientRead.label(), "transient_read");
        assert_eq!(FaultClass::StaleReplay.label(), "stale_replay");
        assert_eq!(FaultClass::CrossSplice.to_string(), "cross_splice");
        assert_eq!(FaultClass::WearOut.label(), "wear_out");
    }
}
