//! Device-level fault model for the WPQ/NVM backend.
//!
//! PS-ORAM's crash-consistency argument leans on two device guarantees
//! that real NVM parts do not actually give:
//!
//! 1. **ADR atomicity** — that the energy reserve drains every committed
//!    WPQ batch to media in full. In practice persists complete at
//!    cacheline (64 B) granularity, so an interrupted drain can tear a
//!    batch mid-way, and a dropped (or doubled) drainer `end` signal can
//!    lose or replay a whole round.
//! 2. **Media fidelity** — that a cell returns what was written. PCM and
//!    STT-RAM exhibit resistance drift and stuck-at faults, so recently
//!    programmed lines can read back corrupted, and reads can fail
//!    transiently.
//!
//! [`FaultPlan`] is a seeded adversary that decides, at each crash and
//! each media read, which of these violations occur. It owns its own
//! SplitMix64 stream so installing it never perturbs controller RNGs:
//! with all probabilities at zero the instrumented system is
//! bit-identical to the uninstrumented one.

use serde::{Deserialize, Serialize};

/// Classification of a detected device fault.
///
/// This is the `FaultClass` half of the recovery taxonomy: recovery code
/// classifies damage it *detects* into one of these, pairs it with a
/// repair-or-fail-safe decision, and reports it (see `RecoveryError` in
/// `psoram-core`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum FaultClass {
    /// An ADR drain was interrupted mid-batch: a prefix of the round's
    /// cachelines reached media, the suffix did not.
    TornFlush,
    /// A drainer `end` signal was dropped: the whole committed round
    /// never reached media.
    SignalLoss,
    /// A drainer `end` signal was duplicated: the round's writes were
    /// applied twice (benign for idempotent slot writes, but it must be
    /// detected, deduplicated, and accounted).
    DuplicatedSignal,
    /// Media corruption: bit rot or interrupted cell programming in a
    /// recently written region.
    MediaCorruption,
    /// A media read failed transiently (or the line is stuck).
    TransientRead,
}

impl FaultClass {
    /// Stable lower-case label (used in reports and event args).
    pub fn label(self) -> &'static str {
        match self {
            FaultClass::TornFlush => "torn_flush",
            FaultClass::SignalLoss => "signal_loss",
            FaultClass::DuplicatedSignal => "duplicated_signal",
            FaultClass::MediaCorruption => "media_corruption",
            FaultClass::TransientRead => "transient_read",
        }
    }
}

impl std::fmt::Display for FaultClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Per-fault-kind injection probabilities.
///
/// All values are probabilities in `[0, 1]`. The round-fate draws
/// (`torn_flush`, `signal_loss`, `duplicate_signal`) are evaluated in
/// that order against the round whose media programming the crash
/// interrupted; `bit_flip_per_unit` is drawn once per surviving persist
/// unit; `transient_read` once per path load, with `stuck_read` the
/// conditional probability that the failure is persistent rather than
/// transient (defeating bounded retry).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultConfig {
    /// P(interrupted drain tears the in-flight round).
    pub torn_flush: f64,
    /// P(the in-flight round's end signal was lost entirely).
    pub signal_loss: f64,
    /// P(the in-flight round's end signal was duplicated).
    pub duplicate_signal: f64,
    /// P(bit flip) per surviving persist unit of the in-flight round.
    pub bit_flip_per_unit: f64,
    /// P(read failure) per media path load.
    pub transient_read: f64,
    /// P(failure is stuck | read failure): retries will not help.
    pub stuck_read: f64,
}

impl FaultConfig {
    /// No faults: an installed plan with this config is inert.
    pub fn disabled() -> Self {
        FaultConfig {
            torn_flush: 0.0,
            signal_loss: 0.0,
            duplicate_signal: 0.0,
            bit_flip_per_unit: 0.0,
            transient_read: 0.0,
            stuck_read: 0.0,
        }
    }

    /// The device-fault campaign mix: every class fires often enough for
    /// a few-hundred-crash campaign to exercise all of them.
    pub fn campaign_default() -> Self {
        FaultConfig {
            torn_flush: 0.25,
            signal_loss: 0.10,
            duplicate_signal: 0.10,
            bit_flip_per_unit: 0.06,
            transient_read: 0.03,
            stuck_read: 0.10,
        }
    }

    /// An aggressive mix for stress tests: most crashes damage something.
    pub fn aggressive() -> Self {
        FaultConfig {
            torn_flush: 0.45,
            signal_loss: 0.25,
            duplicate_signal: 0.15,
            bit_flip_per_unit: 0.25,
            transient_read: 0.08,
            stuck_read: 0.15,
        }
    }

    /// `true` when every probability is zero.
    pub fn is_disabled(&self) -> bool {
        self.torn_flush == 0.0
            && self.signal_loss == 0.0
            && self.duplicate_signal == 0.0
            && self.bit_flip_per_unit == 0.0
            && self.transient_read == 0.0
    }
}

/// Counters of faults a plan has injected (ground truth, for differential
/// checks against what recovery *detected*).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultStats {
    /// Rounds torn mid-drain.
    pub torn_flushes: u64,
    /// Rounds lost to a dropped end signal.
    pub signal_losses: u64,
    /// Rounds replayed by a duplicated end signal.
    pub duplicated_signals: u64,
    /// Individual persist units hit by bit flips.
    pub bit_flips: u64,
    /// Read failures injected (transient and stuck).
    pub read_faults: u64,
    /// Read failures that were stuck (retry-defeating).
    pub stuck_reads: u64,
    /// Crash-round fates drawn (including `Intact`).
    pub fates_drawn: u64,
}

impl FaultStats {
    /// Total faults injected across all classes.
    pub fn total_injected(&self) -> u64 {
        self.torn_flushes
            + self.signal_losses
            + self.duplicated_signals
            + self.bit_flips
            + self.read_faults
    }
}

impl psoram_obsv::MetricsSource for FaultStats {
    fn publish(&self, prefix: &str, reg: &mut psoram_obsv::MetricsRegistry) {
        use psoram_obsv::MetricsRegistry as R;
        reg.set_counter(&R::key(prefix, "torn_flushes"), self.torn_flushes);
        reg.set_counter(&R::key(prefix, "signal_losses"), self.signal_losses);
        reg.set_counter(
            &R::key(prefix, "duplicated_signals"),
            self.duplicated_signals,
        );
        reg.set_counter(&R::key(prefix, "bit_flips"), self.bit_flips);
        reg.set_counter(&R::key(prefix, "read_faults"), self.read_faults);
        reg.set_counter(&R::key(prefix, "stuck_reads"), self.stuck_reads);
        reg.set_counter(&R::key(prefix, "fates_drawn"), self.fates_drawn);
    }
}

/// The fate a [`FaultPlan`] assigns to the round whose media programming
/// a crash interrupted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoundFate {
    /// The drain completed; every unit reached media (bit flips may still
    /// hit individual units).
    Intact,
    /// Only the first `kept` units reached media; the rest read back as
    /// interrupted-programming garbage.
    Torn {
        /// Units (cachelines) that completed before the tear.
        kept: usize,
    },
    /// The end signal was dropped: no unit of the round reached media.
    Lost,
    /// The end signal was duplicated: the round applied twice.
    Duplicated,
}

/// The outcome a [`FaultPlan`] assigns to one media path load.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadFault {
    /// The read succeeds.
    None,
    /// The read fails `attempts` times, then succeeds (bounded retry with
    /// backoff recovers it).
    Transient {
        /// Failed attempts before the read goes through.
        attempts: u32,
    },
    /// The line is stuck: every retry fails; the controller must
    /// fail-safe.
    Stuck,
}

/// A seeded device-fault adversary.
///
/// Deterministic: the same seed, config, and call sequence produce the
/// same fault schedule, which is what keeps device-fault campaigns
/// byte-identical across job counts. The plan draws from its own
/// SplitMix64 stream and never touches any controller RNG.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    cfg: FaultConfig,
    state: u64,
    stats: FaultStats,
}

impl FaultPlan {
    /// Creates a plan from a seed and a fault mix.
    pub fn new(seed: u64, cfg: FaultConfig) -> Self {
        FaultPlan {
            cfg,
            // Avoid the all-zeros fixed point without perturbing other seeds.
            state: seed ^ 0x6A09_E667_F3BC_C909,
            stats: FaultStats::default(),
        }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            // Still consume a draw so the schedule does not depend on
            // which probabilities are zero.
            let _ = self.next_u64();
            return false;
        }
        ((self.next_u64() >> 11) as f64) < p * (1u64 << 53) as f64
    }

    /// Draws the fate of the in-flight round of `units` persist units.
    ///
    /// With `units == 0` the fate is always [`RoundFate::Intact`] (there
    /// is nothing in flight), but draws are still consumed so the
    /// downstream schedule is independent of round sizes.
    pub fn round_fate(&mut self, units: usize) -> RoundFate {
        self.stats.fates_drawn += 1;
        let torn = self.chance(self.cfg.torn_flush);
        let lost = self.chance(self.cfg.signal_loss);
        let dup = self.chance(self.cfg.duplicate_signal);
        let kept_draw = self.next_u64();
        if units == 0 {
            return RoundFate::Intact;
        }
        if lost {
            self.stats.signal_losses += 1;
            RoundFate::Lost
        } else if torn {
            self.stats.torn_flushes += 1;
            RoundFate::Torn {
                kept: (kept_draw % units as u64) as usize,
            }
        } else if dup {
            self.stats.duplicated_signals += 1;
            RoundFate::Duplicated
        } else {
            RoundFate::Intact
        }
    }

    /// Draws whether one surviving persist unit takes a bit flip.
    pub fn unit_corrupted(&mut self) -> bool {
        let hit = self.chance(self.cfg.bit_flip_per_unit);
        if hit {
            self.stats.bit_flips += 1;
        }
        hit
    }

    /// Entropy for choosing which byte/bit of a damaged unit to flip.
    pub fn entropy(&mut self) -> u64 {
        self.next_u64()
    }

    /// Draws the outcome of one media path load.
    pub fn read_fault(&mut self) -> ReadFault {
        let fail = self.chance(self.cfg.transient_read);
        let stuck = self.chance(self.cfg.stuck_read);
        let extra = self.next_u64();
        if !fail {
            return ReadFault::None;
        }
        self.stats.read_faults += 1;
        if stuck {
            self.stats.stuck_reads += 1;
            ReadFault::Stuck
        } else {
            ReadFault::Transient {
                attempts: 1 + (extra % 2) as u32,
            }
        }
    }

    /// Counters of everything injected so far.
    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    /// The plan's fault mix.
    pub fn config(&self) -> FaultConfig {
        self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_seeds_produce_identical_schedules() {
        let mut a = FaultPlan::new(7, FaultConfig::campaign_default());
        let mut b = FaultPlan::new(7, FaultConfig::campaign_default());
        for units in [0usize, 1, 5, 9, 3, 12] {
            assert_eq!(a.round_fate(units), b.round_fate(units));
            assert_eq!(a.unit_corrupted(), b.unit_corrupted());
            assert_eq!(a.read_fault(), b.read_fault());
            assert_eq!(a.entropy(), b.entropy());
        }
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn disabled_plan_injects_nothing() {
        let mut p = FaultPlan::new(3, FaultConfig::disabled());
        for _ in 0..200 {
            assert_eq!(p.round_fate(8), RoundFate::Intact);
            assert!(!p.unit_corrupted());
            assert_eq!(p.read_fault(), ReadFault::None);
        }
        assert_eq!(p.stats().total_injected(), 0);
        assert!(FaultConfig::disabled().is_disabled());
        assert!(!FaultConfig::campaign_default().is_disabled());
    }

    #[test]
    fn torn_keeps_a_strict_prefix() {
        let mut p = FaultPlan::new(11, FaultConfig::aggressive());
        let mut saw_torn = false;
        for _ in 0..500 {
            if let RoundFate::Torn { kept } = p.round_fate(6) {
                assert!(kept < 6, "a torn round must drop at least one unit");
                saw_torn = true;
            }
        }
        assert!(saw_torn, "aggressive mix never tore a round in 500 draws");
        assert!(p.stats().torn_flushes > 0);
    }

    #[test]
    fn empty_rounds_are_always_intact_but_consume_draws() {
        let mut a = FaultPlan::new(5, FaultConfig::aggressive());
        let mut b = FaultPlan::new(5, FaultConfig::aggressive());
        assert_eq!(a.round_fate(0), RoundFate::Intact);
        // b skips the empty round: streams must now diverge, proving the
        // empty round consumed entropy (schedule independence).
        let a_next = a.entropy();
        let b_next = b.entropy();
        assert_ne!(a_next, b_next);
    }

    #[test]
    fn all_classes_fire_under_campaign_mix() {
        let mut p = FaultPlan::new(0xCA_50, FaultConfig::campaign_default());
        for _ in 0..3000 {
            let _ = p.round_fate(8);
            let _ = p.unit_corrupted();
            let _ = p.read_fault();
        }
        let s = p.stats();
        assert!(s.torn_flushes > 0, "no torn flush in 3000 draws");
        assert!(s.signal_losses > 0, "no signal loss in 3000 draws");
        assert!(s.duplicated_signals > 0, "no duplicated signal");
        assert!(s.bit_flips > 0, "no bit flip");
        assert!(s.read_faults > 0, "no read fault");
        assert!(s.stuck_reads > 0, "no stuck read");
        assert_eq!(s.fates_drawn, 3000);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(FaultClass::TornFlush.label(), "torn_flush");
        assert_eq!(FaultClass::SignalLoss.to_string(), "signal_loss");
        assert_eq!(FaultClass::DuplicatedSignal.label(), "duplicated_signal");
        assert_eq!(FaultClass::MediaCorruption.label(), "media_corruption");
        assert_eq!(FaultClass::TransientRead.label(), "transient_read");
    }
}
