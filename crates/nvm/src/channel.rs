//! Per-channel scheduling: bank selection plus data-bus serialization.

use crate::bank::{Bank, BankSchedule};
use crate::request::AccessKind;
use crate::timing::TimingParams;

/// One memory channel: a set of banks sharing a data bus.
///
/// Requests are serviced in arrival order (FCFS). Bank-level constraints
/// (`tRCD`, `tWP`, `tWTR`, `tCCD`, `tRP`) are enforced by [`Bank`]; the
/// channel additionally serializes data bursts on the shared bus.
#[derive(Debug, Clone)]
pub struct Channel {
    banks: Vec<Bank>,
    /// One past the last cycle of the most recent data burst on the bus.
    bus_free_at: u64,
    busy_cycles: u64,
    last_activity: u64,
}

impl Channel {
    /// Creates a channel with `num_banks` idle banks.
    pub fn new(num_banks: usize) -> Self {
        assert!(num_banks > 0, "a channel needs at least one bank");
        Channel {
            banks: vec![Bank::new(); num_banks],
            bus_free_at: 0,
            busy_cycles: 0,
            last_activity: 0,
        }
    }

    /// Number of banks on this channel.
    #[allow(dead_code)] // introspection accessor
    pub fn num_banks(&self) -> usize {
        self.banks.len()
    }

    /// Schedules one access on bank `bank_idx` arriving at cycle `arrival`.
    ///
    /// Returns the completion cycle (data delivered for reads, data accepted
    /// for writes).
    ///
    /// # Panics
    ///
    /// Panics if `bank_idx` is out of range.
    pub fn access(
        &mut self,
        bank_idx: usize,
        kind: AccessKind,
        arrival: u64,
        timing: &TimingParams,
        burst_cycles: u64,
    ) -> BankSchedule {
        // Command-issue offset after which the data burst begins; used to
        // translate the bus-free constraint into an issue-time constraint.
        let burst_offset = match kind {
            AccessKind::Read => timing.t_rcd,
            AccessKind::Write => timing.t_cwd,
        };
        let earliest = arrival.max(self.bus_free_at.saturating_sub(burst_offset));
        let sched = self.banks[bank_idx].schedule(kind, earliest, timing, burst_cycles);
        debug_assert!(sched.burst_start >= self.bus_free_at || self.bus_free_at == 0);
        self.bus_free_at = sched.burst_end;
        self.busy_cycles += sched.burst_end - sched.burst_start;
        self.last_activity = self.last_activity.max(sched.burst_end);
        sched
    }

    /// One past the last cycle the data bus is occupied.
    #[allow(dead_code)] // introspection accessor
    pub fn bus_free_at(&self) -> u64 {
        self.bus_free_at
    }

    /// Total cycles the data bus has been occupied (utilization numerator).
    pub fn busy_cycles(&self) -> u64 {
        self.busy_cycles
    }

    /// Last cycle at which this channel had any activity.
    pub fn last_activity(&self) -> u64 {
        self.last_activity
    }

    /// Per-bank lifetime write counts (wear proxy).
    pub fn bank_writes(&self) -> Vec<u64> {
        self.banks.iter().map(Bank::writes).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timing::{MemTech, TimingParams};

    const BURST: u64 = 8;

    fn pcm() -> TimingParams {
        TimingParams::for_tech(MemTech::Pcm)
    }

    #[test]
    fn bursts_never_overlap_on_the_bus() {
        let mut ch = Channel::new(8);
        let t = pcm();
        let mut prev_end = 0;
        for i in 0..32 {
            let s = ch.access(i % 8, AccessKind::Read, 0, &t, BURST);
            assert!(s.burst_start >= prev_end, "burst {i} overlaps previous");
            prev_end = s.burst_end;
        }
    }

    #[test]
    fn different_banks_overlap_latency_but_not_bus() {
        let mut ch = Channel::new(2);
        let t = pcm();
        let a = ch.access(0, AccessKind::Read, 0, &t, BURST);
        let b = ch.access(1, AccessKind::Read, 0, &t, BURST);
        // Second read hides most of its tRCD under the first one's.
        assert!(b.complete - a.complete < t.read_latency(BURST));
        assert!(b.burst_start >= a.burst_end);
    }

    #[test]
    fn same_bank_serializes_fully() {
        let mut ch = Channel::new(2);
        let t = pcm();
        let a = ch.access(0, AccessKind::Read, 0, &t, BURST);
        let b = ch.access(0, AccessKind::Read, 0, &t, BURST);
        assert!(b.issue >= a.issue + t.read_bank_occupancy(BURST));
    }

    #[test]
    fn busy_cycles_accumulate_per_burst() {
        let mut ch = Channel::new(4);
        let t = pcm();
        for i in 0..4 {
            ch.access(i, AccessKind::Write, 0, &t, BURST);
        }
        assert_eq!(ch.busy_cycles(), 4 * BURST);
    }

    #[test]
    #[should_panic(expected = "at least one bank")]
    fn zero_banks_rejected() {
        let _ = Channel::new(0);
    }
}
