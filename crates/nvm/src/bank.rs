//! Per-bank service state.

use crate::request::AccessKind;
use crate::timing::TimingParams;

/// Service state of a single NVM bank.
///
/// The bank tracks when it can accept its next command and enforces the
/// write-to-read turnaround (`tWTR`) and command-to-command (`tCCD`)
/// constraints. The data-bus constraint lives at the channel level.
#[derive(Debug, Clone, Default)]
pub struct Bank {
    /// Earliest memory cycle at which a new command may start at this bank.
    ready_at: u64,
    /// Earliest cycle a *read* may issue (enforces `tWTR` after a write).
    read_ok_at: u64,
    /// Earliest cycle any command may issue (enforces `tCCD`).
    cmd_ok_at: u64,
    /// Lifetime write count for wear accounting.
    writes: u64,
}

/// Outcome of scheduling one access on a bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BankSchedule {
    /// Cycle the command is issued.
    pub issue: u64,
    /// Cycle the requester observes completion (data delivered for reads,
    /// data accepted for writes).
    pub complete: u64,
    /// First cycle of the data burst on the channel bus.
    pub burst_start: u64,
    /// One past the last cycle of the data burst on the channel bus.
    pub burst_end: u64,
}

impl Bank {
    /// Creates an idle bank.
    pub fn new() -> Self {
        Bank::default()
    }

    /// Schedules an access at this bank.
    ///
    /// `earliest` is the earliest cycle the command may issue (request
    /// arrival, possibly pushed later by channel bus availability handled by
    /// the caller via a second pass). Returns the schedule and updates the
    /// bank state.
    pub fn schedule(
        &mut self,
        kind: AccessKind,
        earliest: u64,
        timing: &TimingParams,
        burst_cycles: u64,
    ) -> BankSchedule {
        let mut issue = earliest.max(self.ready_at).max(self.cmd_ok_at);
        if kind.is_read() {
            // Write-to-read turnaround on the same bank.
            issue = issue.max(self.read_ok_at);
        }
        let (complete, burst_start, occupancy) = match kind {
            AccessKind::Read => {
                let complete = issue + timing.read_latency(burst_cycles);
                (
                    complete,
                    complete - burst_cycles,
                    timing.read_bank_occupancy(burst_cycles),
                )
            }
            AccessKind::Write => {
                let complete = issue + timing.write_accept_latency(burst_cycles);
                (
                    complete,
                    issue + timing.t_cwd,
                    timing.write_bank_occupancy(burst_cycles),
                )
            }
        };
        let burst_end = burst_start + burst_cycles;
        self.ready_at = issue + occupancy;
        self.cmd_ok_at = issue + timing.t_ccd;
        if kind.is_write() {
            self.read_ok_at = burst_end + timing.t_wtr;
            self.writes += 1;
        }
        BankSchedule {
            issue,
            complete,
            burst_start,
            burst_end,
        }
    }

    /// Earliest cycle at which this bank can accept another command.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn ready_at(&self) -> u64 {
        self.ready_at
    }

    /// Lifetime number of writes serviced by this bank (wear proxy).
    pub fn writes(&self) -> u64 {
        self.writes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timing::MemTech;

    const BURST: u64 = 8;

    fn pcm() -> TimingParams {
        TimingParams::for_tech(MemTech::Pcm)
    }

    #[test]
    fn idle_read_latency_is_trcd_plus_burst() {
        let mut b = Bank::new();
        let s = b.schedule(AccessKind::Read, 0, &pcm(), BURST);
        assert_eq!(s.issue, 0);
        assert_eq!(s.complete, 48 + BURST);
        assert_eq!(s.burst_end - s.burst_start, BURST);
    }

    #[test]
    fn write_keeps_bank_busy_through_programming() {
        let mut b = Bank::new();
        let t = pcm();
        let s = b.schedule(AccessKind::Write, 0, &t, BURST);
        // Data accepted after tCWD + burst.
        assert_eq!(s.complete, t.t_cwd + BURST);
        // Bank not ready again until the write pulse and precharge are done.
        assert_eq!(b.ready_at(), t.write_bank_occupancy(BURST));
    }

    #[test]
    fn back_to_back_reads_serialize_on_bank_occupancy() {
        let mut b = Bank::new();
        let t = pcm();
        let s1 = b.schedule(AccessKind::Read, 0, &t, BURST);
        let s2 = b.schedule(AccessKind::Read, 0, &t, BURST);
        assert!(s2.issue >= s1.issue + t.read_bank_occupancy(BURST));
    }

    #[test]
    fn read_after_write_waits_for_turnaround() {
        let mut b = Bank::new();
        let t = pcm();
        let w = b.schedule(AccessKind::Write, 0, &t, BURST);
        let r = b.schedule(AccessKind::Read, 0, &t, BURST);
        assert!(r.issue >= w.burst_end + t.t_wtr);
    }

    #[test]
    fn wear_counts_only_writes() {
        let mut b = Bank::new();
        let t = pcm();
        b.schedule(AccessKind::Read, 0, &t, BURST);
        b.schedule(AccessKind::Write, 0, &t, BURST);
        b.schedule(AccessKind::Write, 0, &t, BURST);
        assert_eq!(b.writes(), 2);
    }

    #[test]
    fn later_arrival_delays_issue() {
        let mut b = Bank::new();
        let s = b.schedule(AccessKind::Read, 1000, &pcm(), BURST);
        assert_eq!(s.issue, 1000);
    }
}
