//! # psoram-nvm
//!
//! Cycle-level NVM main-memory timing simulator (in the spirit of NVMain 2.0)
//! plus the ADR **write-pending-queue (WPQ) persistence domain** used by the
//! PS-ORAM controller.
//!
//! The model covers what the PS-ORAM evaluation needs:
//!
//! * PCM and STT-RAM device timing (`tRCD/tWP/tCWD/tWTR/tRP/tCCD`, Table 3 of
//!   the paper) at a 400 MHz memory clock under a 3.2 GHz core clock.
//! * Multi-channel, multi-bank organization with cacheline interleaving,
//!   per-bank service state and per-channel data-bus contention — enough to
//!   reproduce the paper's single- vs multi-channel scaling (Figure 7).
//! * Read/write traffic and per-bank wear statistics (Figure 6, lifetime
//!   discussion).
//! * A persistence domain ([`wpq`]) with *atomic* start/end-signalled batches
//!   feeding the NVM, exactly as in PS-ORAM eviction step 5-B/5-C.
//! * An on-chip NVM buffer latency model ([`onchip`]) for the paper's
//!   `FullNVM` / `FullNVM(STT)` baselines, where the stash and PosMap are
//!   built from NVM instead of SRAM.
//!
//! # Examples
//!
//! ```
//! use psoram_nvm::{NvmConfig, NvmController, AccessKind};
//!
//! let mut mem = NvmController::new(NvmConfig::paper_pcm(1));
//! let done = mem.access(0x1000, AccessKind::Read, 0);
//! assert!(done > 0);
//! assert_eq!(mem.stats().reads, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bank;
mod channel;
mod controller;
pub mod fault;
pub mod onchip;
mod request;
mod stats;
mod timing;
pub mod wear;
pub mod wpq;

pub use controller::{NvmConfig, NvmController, NvmWearReport};
pub use fault::{FaultClass, FaultConfig, FaultPlan, FaultStats, ReadFault, RoundFate};
pub use onchip::OnChipNvmModel;
pub use request::AccessKind;
pub use stats::NvmStats;
pub use timing::{MemTech, TimingParams, CORE_CYCLES_PER_MEM_CYCLE};
pub use wear::{
    Conviction, EnduranceModel, GapMove, RemapTable, StartGap, WearConfig, WearEngine, WearScheme,
    WearStats, SPARE_LINE_BASE, WEAR_LINE_BYTES,
};
pub use wpq::{
    BatchFrame, DamageRecord, PersistenceDomain, Wpq, WpqCrashOutcome, WpqEntry, WpqError, WpqStats,
};
