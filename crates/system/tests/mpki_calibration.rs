//! Calibration regression test: every synthetic SPEC workload generator,
//! run through the *real* cache hierarchy of the non-ORAM reference
//! system (§5.1), must reproduce its Table 4 LLC MPKI target.
//!
//! Methodology mirrors the figure binaries: 10 000 unmeasured warmup
//! records remove cache cold-start effects, then 60 000 measured records
//! at a fixed seed. The run is fully deterministic, so a failure here
//! means the generators, the hierarchy, or the measurement window
//! changed — not noise.

use psoram_system::{System, SystemConfig};
use psoram_trace::SpecWorkload;

const WARMUP: usize = 10_000;
const MEASURED: usize = 60_000;

/// Per-workload relative MPKI tolerance. The blanket requirement is
/// ±10%; the measured deviations at the pinned seed are all under ±5%
/// (worst: 403.gcc at +4.2%, whose 1.19 MPKI target makes each miss
/// worth ~3.5% on its own), so the uniform table keeps headroom for
/// legitimate hierarchy tweaks without letting calibration rot.
fn tolerance(_w: SpecWorkload) -> f64 {
    0.10
}

#[test]
fn all_workloads_hit_table4_mpki_through_real_hierarchy() {
    let mut failures = Vec::new();
    for w in SpecWorkload::all() {
        let mut sys = System::new(SystemConfig::non_oram_reference(1));
        let r = sys.run_workload_with_warmup(w, WARMUP, MEASURED);
        let target = w.paper_mpki();
        let got = r.mpki();
        let rel = (got - target) / target;
        println!(
            "{:<16} target {:>7.2}  got {:>7.2}  err {:>+6.1}%  (tol ±{:.0}%)",
            w.name(),
            target,
            got,
            rel * 100.0,
            tolerance(w) * 100.0
        );
        if rel.abs() > tolerance(w) {
            failures.push(format!(
                "{}: MPKI {got:.2} vs target {target:.2} ({:+.1}% > ±{:.0}%)",
                w.name(),
                rel * 100.0,
                tolerance(w) * 100.0
            ));
        }
    }
    assert!(
        failures.is_empty(),
        "workload generators drifted from Table 4:\n{}",
        failures.join("\n")
    );
}

#[test]
fn calibration_run_is_deterministic() {
    let run = || {
        let mut sys = System::new(SystemConfig::non_oram_reference(1));
        let r = sys.run_workload_with_warmup(SpecWorkload::Omnetpp, 2_000, 8_000);
        (r.llc_misses, r.instructions, r.exec_cycles)
    };
    assert_eq!(
        run(),
        run(),
        "identical seeds must give identical MPKI runs"
    );
}
