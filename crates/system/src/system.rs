//! The trace-driven full-system simulator.

use psoram_cache::{Hierarchy, MemOp};
use psoram_core::{BlockAddr, CrashPoint, Op, OramError, PathOram};
use psoram_nvm::{AccessKind, NvmController, CORE_CYCLES_PER_MEM_CYCLE};
use psoram_obsv::Tap;
use psoram_trace::{SpecWorkload, TraceGenerator, TraceRecord, WorkloadSpec};

use crate::config::SystemConfig;
use crate::result::SimResult;

/// Memory backend below the LLC: the ORAM stack or a plain NVM controller.
#[derive(Debug)]
enum Backend {
    Oram(Box<PathOram>),
    Plain(Box<NvmController>),
}

/// A complete simulated system: in-order core, cache hierarchy, and the
/// ORAM/NVM memory backend.
///
/// The core retires one instruction per cycle and blocks on memory
/// operations, matching the paper's single in-order core at 3.2 GHz (§5.1
/// argues the memory system dominates, so in-order vs out-of-order does not
/// change the comparison).
///
/// # Examples
///
/// ```
/// use psoram_core::ProtocolVariant;
/// use psoram_system::{System, SystemConfig};
/// use psoram_trace::SpecWorkload;
///
/// let mut sys = System::new(SystemConfig::quick_test(ProtocolVariant::Baseline, 1));
/// let r = sys.run_workload(SpecWorkload::Gcc, 1_000);
/// assert_eq!(r.variant, "Baseline");
/// ```
#[derive(Debug)]
pub struct System {
    config: SystemConfig,
    hierarchy: Hierarchy,
    backend: Backend,
    clock: u64,
    instructions: u64,
    accesses: u64,
    crashes_recovered: u64,
    recoveries_consistent: u64,
    mark: Option<Snapshot>,
    /// Observability tap (detached by default; see [`System::set_recorder`]).
    obsv: Tap,
}

/// Counter snapshot taken at the end of warmup, so results measure only
/// the steady-state window.
#[derive(Debug, Clone)]
struct Snapshot {
    clock: u64,
    instructions: u64,
    accesses: u64,
    llc_misses: u64,
    nvm: psoram_nvm::NvmStats,
    oram: psoram_core::OramStats,
}

impl System {
    /// Builds an idle system from `config`.
    pub fn new(config: SystemConfig) -> Self {
        let hierarchy = Hierarchy::new(config.hierarchy);
        let backend = if config.use_oram {
            let mut oram = PathOram::with_nvm(
                config.oram.clone(),
                config.variant,
                config.nvm.clone(),
                config.seed,
            );
            oram.set_payload_encryption(config.encrypt_payloads);
            oram.set_top_cache_levels(config.top_cache_levels);
            if config.integrity {
                oram.enable_integrity();
            }
            Backend::Oram(Box::new(oram))
        } else {
            Backend::Plain(Box::new(NvmController::new(config.nvm.clone())))
        };
        System {
            config,
            hierarchy,
            backend,
            clock: 0,
            instructions: 0,
            accesses: 0,
            crashes_recovered: 0,
            recoveries_consistent: 0,
            mark: None,
            obsv: Tap::detached(),
        }
    }

    /// Attaches an observability recorder to the whole stack: the cache
    /// hierarchy, the ORAM controller (or plain NVM controller), and the
    /// persist engine all share one tap, so their events carry the same
    /// simulated-cycle clock.
    pub fn set_recorder(&mut self, recorder: std::sync::Arc<dyn psoram_obsv::Recorder>) {
        let tap = Tap::attached(recorder);
        self.hierarchy.set_tap(tap.clone());
        match &mut self.backend {
            Backend::Oram(o) => o.set_obsv_tap(tap.clone()),
            Backend::Plain(n) => n.set_tap(tap.clone()),
        }
        self.obsv = tap;
    }

    /// Marks the end of warmup: subsequent [`System::result`] calls report
    /// only activity after this point (the simpoint-style measurement
    /// window).
    pub fn mark_measurement_start(&mut self) {
        let (nvm, oram) = match &self.backend {
            Backend::Oram(o) => (o.nvm_stats(), o.stats()),
            Backend::Plain(n) => (*n.stats(), Default::default()),
        };
        self.mark = Some(Snapshot {
            clock: self.clock,
            instructions: self.instructions,
            accesses: self.accesses,
            llc_misses: self.hierarchy.stats().llc_misses,
            nvm,
            oram,
        });
    }

    /// The system configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// Current core-cycle clock.
    pub fn clock(&self) -> u64 {
        self.clock
    }

    /// Access to the ORAM controller, when one is configured.
    pub fn oram(&self) -> Option<&PathOram> {
        match &self.backend {
            Backend::Oram(o) => Some(o),
            Backend::Plain(_) => None,
        }
    }

    /// Mutable access to the ORAM controller (crash injection in system
    /// tests).
    pub fn oram_mut(&mut self) -> Option<&mut PathOram> {
        match &mut self.backend {
            Backend::Oram(o) => Some(o),
            Backend::Plain(_) => None,
        }
    }

    /// Dissolves the system and hands the ORAM controller back (takeable
    /// ownership, mirroring `ShardController::into_policy`): the service
    /// layer can rebuild a shard's hierarchy while keeping its
    /// persistence domain. `None` when no ORAM backend is configured.
    pub fn take_oram(self) -> Option<Box<PathOram>> {
        match self.backend {
            Backend::Oram(o) => Some(o),
            Backend::Plain(_) => None,
        }
    }

    /// Schedules a power failure at the ORAM backend's access attempt
    /// `access_index` (see [`PathOram::schedule_crash`]); when it fires
    /// mid-workload the system recovers and reissues the access in place,
    /// so fault campaigns run through the complete cache+NVM stack.
    ///
    /// Returns `false` when no ORAM backend is configured.
    pub fn schedule_crash(&mut self, access_index: u64, point: CrashPoint) -> bool {
        match &mut self.backend {
            Backend::Oram(o) => {
                o.schedule_crash(access_index, point);
                true
            }
            Backend::Plain(_) => false,
        }
    }

    /// Crashes that fired and were recovered during stepping.
    pub fn crashes_recovered(&self) -> u64 {
        self.crashes_recovered
    }

    /// How many of those recoveries passed the recoverability check.
    pub fn recoveries_consistent(&self) -> u64 {
        self.recoveries_consistent
    }

    /// Executes one trace record (compute burst + one memory access).
    pub fn step(&mut self, rec: &TraceRecord) {
        // Compute burst at 1 IPC, plus the memory instruction itself.
        self.clock += rec.instrs_before;
        self.instructions += rec.instrs_before + 1;
        self.access(rec.addr, rec.is_write);
    }

    /// Drives one memory access (byte address) through the cache
    /// hierarchy and backend at the current clock, blocking the core
    /// until the access resolves. This is the per-request entry point
    /// the service layer uses when a shard owns a full cache/NVM
    /// hierarchy; [`System::step`] wraps it with the trace-record
    /// compute burst.
    pub fn access(&mut self, addr: u64, is_write: bool) {
        self.accesses += 1;
        self.obsv.set_now(self.clock);
        let r = self.hierarchy.access(addr, is_write);
        self.clock += r.latency_cycles;
        for op in &r.memory_ops {
            self.issue_memory_op(*op);
        }
    }

    fn issue_memory_op(&mut self, op: MemOp) {
        match &mut self.backend {
            Backend::Oram(oram) => {
                let (kind, addr) = match op {
                    MemOp::Read(a) => (Op::Read, a),
                    MemOp::Write(a) => (Op::Write, a),
                };
                let block = BlockAddr(
                    (addr / self.config.oram.block_bytes as u64)
                        % self.config.oram.capacity_blocks(),
                );
                let data = match kind {
                    Op::Write => Some(vec![0xA5u8; self.config.oram.payload_bytes]),
                    Op::Read => None,
                };
                let out = loop {
                    match oram.access_at(kind, block, data.clone(), self.clock) {
                        Ok(out) => break out,
                        Err(OramError::Crashed) => {
                            // Power failure below the cache hierarchy: the
                            // persistence domain drains, the machine reboots,
                            // recovery runs, and the access is reissued.
                            let rec = oram.recover();
                            self.crashes_recovered += 1;
                            if rec.consistent {
                                self.recoveries_consistent += 1;
                            }
                        }
                        Err(e) => panic!("in-range access cannot fail: {e}"),
                    }
                };
                // The in-order core blocks until the line fill returns;
                // writes retire once accepted by the controller.
                self.clock = out.complete_cycle;
            }
            Backend::Plain(nvm) => {
                let (kind, addr) = match op {
                    MemOp::Read(a) => (AccessKind::Read, a),
                    MemOp::Write(a) => (AccessKind::Write, a),
                };
                let done = nvm.access(addr, kind, self.clock / CORE_CYCLES_PER_MEM_CYCLE);
                if kind.is_read() {
                    self.clock = done * CORE_CYCLES_PER_MEM_CYCLE;
                }
            }
        }
    }

    /// Runs `n` records of a named SPEC-like workload and reports results.
    pub fn run_workload(&mut self, workload: SpecWorkload, n: usize) -> SimResult {
        self.run_workload_with_warmup(workload, 0, n)
    }

    /// Runs `warmup` unmeasured records, then `n` measured records of a
    /// named workload — the simpoint-style methodology that removes cache
    /// cold-start effects from the reported MPKI and cycle counts.
    pub fn run_workload_with_warmup(
        &mut self,
        workload: SpecWorkload,
        warmup: usize,
        n: usize,
    ) -> SimResult {
        let mut spec = workload.spec();
        self.fit_spec(&mut spec);
        let mut gen = TraceGenerator::new(&spec, self.config.seed ^ 0x17ACE);
        for rec in gen.by_ref().take(warmup) {
            self.step(&rec);
        }
        if warmup > 0 {
            self.mark_measurement_start();
        }
        self.run_trace(gen, n, workload.name())
    }

    /// Runs `n` records from an arbitrary generator.
    pub fn run_trace(
        &mut self,
        gen: impl Iterator<Item = TraceRecord>,
        n: usize,
        name: &str,
    ) -> SimResult {
        for rec in gen.take(n) {
            self.step(&rec);
        }
        self.result(name)
    }

    /// Shrinks a workload's footprint to fit the configured ORAM capacity
    /// (half the capacity for the cold region), preserving its MPKI and
    /// pattern. Documented as part of the trace substitution in DESIGN.md.
    pub fn fit_spec(&self, spec: &mut WorkloadSpec) {
        let cap_lines = self.config.oram.capacity_blocks();
        let max_cold = (cap_lines / 2).max(1024);
        if spec.cold_lines > max_cold {
            spec.cold_lines = max_cold;
        }
    }

    /// Collects the run's results (since the measurement mark, if one was
    /// set).
    pub fn result(&self, workload: &str) -> SimResult {
        let h = self.hierarchy.stats();
        let (variant, nvm, oram) = match &self.backend {
            Backend::Oram(o) => (o.variant().label().to_string(), o.nvm_stats(), o.stats()),
            Backend::Plain(nvm) => ("non-ORAM".to_string(), *nvm.stats(), Default::default()),
        };
        match &self.mark {
            None => SimResult {
                workload: workload.to_string(),
                variant,
                instructions: self.instructions,
                accesses: self.accesses,
                llc_misses: h.llc_misses,
                exec_cycles: self.clock,
                nvm,
                oram,
            },
            Some(m) => SimResult {
                workload: workload.to_string(),
                variant,
                instructions: self.instructions - m.instructions,
                accesses: self.accesses - m.accesses,
                llc_misses: h.llc_misses - m.llc_misses,
                exec_cycles: self.clock - m.clock,
                nvm: nvm.since(&m.nvm),
                oram: oram.since(&m.oram),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psoram_core::ProtocolVariant;

    fn quick(variant: ProtocolVariant) -> System {
        System::new(SystemConfig::quick_test(variant, 1))
    }

    #[test]
    fn runs_a_workload_end_to_end() {
        let mut sys = quick(ProtocolVariant::PsOram);
        let r = sys.run_workload(SpecWorkload::Mcf, 3_000);
        assert!(r.exec_cycles > 0);
        assert!(r.llc_misses > 0);
        assert!(r.nvm.reads > 0);
        assert!(r.nvm.writes > 0);
        assert_eq!(r.variant, "PS-ORAM");
    }

    #[test]
    fn oram_system_is_much_slower_than_plain_nvm() {
        let mut with = quick(ProtocolVariant::Baseline);
        let mut without = System::new(SystemConfig {
            use_oram: false,
            ..SystemConfig::quick_test(ProtocolVariant::Baseline, 1)
        });
        let a = with.run_workload(SpecWorkload::Lbm, 4_000);
        let b = without.run_workload(SpecWorkload::Lbm, 4_000);
        let overhead = a.exec_cycles as f64 / b.exec_cycles as f64;
        assert!(overhead > 1.8, "ORAM overhead only {overhead:.2}x");
    }

    #[test]
    fn mpki_lands_near_target_for_quick_config() {
        let mut sys = quick(ProtocolVariant::Baseline);
        let r = sys.run_workload(SpecWorkload::Bzip2, 30_000);
        let target = SpecWorkload::Bzip2.paper_mpki();
        let got = r.mpki();
        assert!(
            (got - target).abs() / target < 0.35,
            "MPKI {got:.2} too far from target {target:.2}"
        );
    }

    #[test]
    fn deterministic_runs() {
        let run = || {
            let mut sys = quick(ProtocolVariant::PsOram);
            sys.run_workload(SpecWorkload::Gcc, 2_000).exec_cycles
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn ps_oram_close_to_baseline_in_system_context() {
        let cycles = |variant| {
            let mut sys = quick(variant);
            sys.run_workload(SpecWorkload::Sphinx3, 10_000).exec_cycles as f64
        };
        let base = cycles(ProtocolVariant::Baseline);
        let ps = cycles(ProtocolVariant::PsOram);
        let full = cycles(ProtocolVariant::FullNvm);
        assert!(ps / base < 1.25, "PS-ORAM overhead {:.3}", ps / base);
        assert!(
            full / base > ps / base,
            "FullNVM should cost more than PS-ORAM"
        );
    }

    #[test]
    fn crash_injection_through_system_api() {
        let mut sys = quick(ProtocolVariant::PsOram);
        sys.run_workload(SpecWorkload::Mcf, 1_000);
        let oram = sys.oram_mut().unwrap();
        oram.crash_now();
        assert!(oram.recover().consistent);
    }

    #[test]
    fn full_stack_crash_recover_continue() {
        // Scheduled power failures fire beneath the cache hierarchy while a
        // workload runs; the system recovers in place and the trace keeps
        // going — the full-stack leg of the fault-injection harness.
        let mut sys = quick(ProtocolVariant::PsOram);
        sys.run_workload(SpecWorkload::Mcf, 500);
        let base = sys.oram().unwrap().access_attempts();
        for k in 1..=5u64 {
            assert!(sys.schedule_crash(base + 5 * k, CrashPoint::AfterLoadPath));
        }
        // One long run: the deterministic generator replays its prefix into
        // a warm cache, so only the tail produces fresh ORAM traffic.
        sys.run_workload(SpecWorkload::Mcf, 8_000);
        assert_eq!(
            sys.crashes_recovered(),
            5,
            "every scheduled crash must fire"
        );
        assert_eq!(
            sys.recoveries_consistent(),
            5,
            "every recovery must be consistent"
        );
        let oram = sys.oram_mut().unwrap();
        assert!(!oram.is_crashed());
        oram.verify_contents(true).unwrap();
    }

    #[test]
    fn top_cache_and_integrity_through_system_config() {
        let mut cfg = SystemConfig::quick_test(ProtocolVariant::PsOram, 1);
        cfg.top_cache_levels = 4;
        cfg.integrity = true;
        let mut sys = System::new(cfg);
        let r = sys.run_workload(SpecWorkload::Gcc, 3_000);
        assert!(r.exec_cycles > 0);
        let oram = sys.oram().unwrap();
        assert!(oram.integrity_enabled());
        assert_eq!(oram.top_cache_bytes(), ((1 << 4) - 1) * 4 * 64);
        // Fewer NVM reads than an uncached run.
        let mut plain = System::new(SystemConfig::quick_test(ProtocolVariant::PsOram, 1));
        let p = plain.run_workload(SpecWorkload::Gcc, 3_000);
        assert!(r.nvm.reads < p.nvm.reads);
    }

    #[test]
    fn access_is_step_without_compute_burst() {
        // The extracted per-request entry point must drive the same
        // cache+backend path as step(): a run made of bare accesses
        // matches a run of zero-burst trace records cycle for cycle.
        let recs: Vec<TraceRecord> = {
            let spec = SpecWorkload::Gcc.spec();
            TraceGenerator::new(&spec, 42).take(500).collect()
        };
        let mut via_step = quick(ProtocolVariant::PsOram);
        let mut via_access = quick(ProtocolVariant::PsOram);
        for rec in &recs {
            via_step.step(&TraceRecord {
                instrs_before: 0,
                ..*rec
            });
            via_access.access(rec.addr, rec.is_write);
        }
        assert_eq!(via_step.clock(), via_access.clock());
        assert_eq!(
            via_step.result("w").nvm.writes,
            via_access.result("w").nvm.writes
        );
    }

    #[test]
    fn sharded_systems_are_independent_and_deterministic() {
        // Two shards built from one base config: each its own hierarchy
        // and persistence domain. Crashing one must not perturb the
        // other, and each shard replays identically from its config.
        let base = SystemConfig::quick_test(ProtocolVariant::PsOram, 1);
        let run = |shard: u32, crash: bool| {
            let mut sys = System::new(base.for_shard(shard));
            sys.run_workload(SpecWorkload::Mcf, 1_500);
            if crash {
                let oram = sys.oram_mut().unwrap();
                oram.crash_now();
                assert!(oram.recover().consistent);
            }
            sys.run_workload(SpecWorkload::Mcf, 500).exec_cycles
        };
        let shard0_alone = run(0, false);
        let shard1_alone = run(1, false);
        // Crash shard 1; shard 0's replay is byte-identical.
        assert_eq!(run(0, false), shard0_alone);
        let shard1_crashed = run(1, true);
        assert_eq!(run(0, false), shard0_alone, "shard 0 unaffected");
        assert_ne!(shard0_alone, shard1_alone, "distinct seeds diverge");
        assert!(shard1_crashed > 0);
    }

    #[test]
    fn take_oram_hands_back_the_backend() {
        let mut sys = quick(ProtocolVariant::PsOram);
        sys.run_workload(SpecWorkload::Gcc, 500);
        let clock = sys.oram().unwrap().clock();
        let oram = sys.take_oram().unwrap();
        assert_eq!(oram.clock(), clock);
        assert!(System::new(SystemConfig {
            use_oram: false,
            ..SystemConfig::quick_test(ProtocolVariant::Baseline, 1)
        })
        .take_oram()
        .is_none());
    }

    #[test]
    fn fit_spec_bounds_cold_footprint() {
        let sys = quick(ProtocolVariant::Baseline);
        let mut spec = SpecWorkload::Mcf.spec();
        sys.fit_spec(&mut spec);
        assert!(spec.cold_lines <= sys.config().oram.capacity_blocks() / 2);
    }
}
