//! # psoram-system
//!
//! The full-system PS-ORAM simulator: a trace-driven in-order core (1 IPC
//! for non-memory work, blocking memory operations), the Table 3 cache
//! hierarchy, an ORAM controller in one of the paper's seven protocol
//! variants, and the cycle-level NVM main memory.
//!
//! This is the layer the paper's figures are produced from: feed it a
//! workload, get back execution cycles, MPKI, and NVM traffic.
//!
//! # Examples
//!
//! ```
//! use psoram_core::ProtocolVariant;
//! use psoram_system::{System, SystemConfig};
//! use psoram_trace::SpecWorkload;
//!
//! let cfg = SystemConfig::quick_test(ProtocolVariant::PsOram, 1);
//! let mut sys = System::new(cfg);
//! let result = sys.run_workload(SpecWorkload::Mcf, 2_000);
//! assert!(result.exec_cycles > 0);
//! assert!(result.instructions > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod result;
mod system;

pub use config::SystemConfig;
pub use result::SimResult;
pub use system::System;
