//! Simulation results.

use psoram_core::OramStats;
use psoram_nvm::NvmStats;
use serde::{Deserialize, Serialize};

/// Outcome of one full-system simulation run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimResult {
    /// Workload name.
    pub workload: String,
    /// Protocol variant label (or `"non-ORAM"`).
    pub variant: String,
    /// Retired instructions.
    pub instructions: u64,
    /// Memory accesses issued by the core.
    pub accesses: u64,
    /// LLC misses (ORAM accesses).
    pub llc_misses: u64,
    /// Total execution time in core cycles.
    pub exec_cycles: u64,
    /// Off-chip NVM traffic.
    pub nvm: NvmStats,
    /// ORAM controller statistics (zeroed for the non-ORAM reference).
    pub oram: OramStats,
}

impl psoram_obsv::MetricsSource for SimResult {
    fn publish(&self, prefix: &str, reg: &mut psoram_obsv::MetricsRegistry) {
        use psoram_obsv::MetricsRegistry as R;
        reg.set_counter(&R::key(prefix, "instructions"), self.instructions);
        reg.set_counter(&R::key(prefix, "accesses"), self.accesses);
        reg.set_counter(&R::key(prefix, "llc_misses"), self.llc_misses);
        reg.set_counter(&R::key(prefix, "exec_cycles"), self.exec_cycles);
        reg.set_gauge(&R::key(prefix, "mpki"), self.mpki());
        reg.set_gauge(&R::key(prefix, "ipc"), self.ipc());
        self.nvm.publish(&R::key(prefix, "nvm"), reg);
        self.oram.publish(&R::key(prefix, "oram"), reg);
    }
}

impl SimResult {
    /// Measured LLC misses per kilo-instruction.
    pub fn mpki(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.llc_misses as f64 * 1000.0 / self.instructions as f64
        }
    }

    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.exec_cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.exec_cycles as f64
        }
    }

    /// Total read transactions as counted in Figure 6(a): NVM reads plus
    /// on-chip NVM buffer reads (`FullNVM` designs).
    pub fn total_reads(&self) -> u64 {
        self.nvm.reads + self.oram.onchip_nvm_reads
    }

    /// Total write transactions as counted in Figure 6(b): NVM writes plus
    /// on-chip NVM buffer writes.
    pub fn total_writes(&self) -> u64 {
        self.nvm.writes + self.oram.onchip_nvm_writes
    }

    /// Execution time normalized to a baseline run.
    pub fn normalized_time(&self, baseline: &SimResult) -> f64 {
        self.exec_cycles as f64 / baseline.exec_cycles as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(cycles: u64) -> SimResult {
        SimResult {
            workload: "w".into(),
            variant: "v".into(),
            instructions: 1000,
            accesses: 300,
            llc_misses: 30,
            exec_cycles: cycles,
            nvm: NvmStats::default(),
            oram: OramStats::default(),
        }
    }

    #[test]
    fn mpki_and_ipc() {
        let r = result(2000);
        assert!((r.mpki() - 30.0).abs() < 1e-12);
        assert!((r.ipc() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn normalized_time_ratios() {
        let base = result(1000);
        let slow = result(1500);
        assert!((slow.normalized_time(&base) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn traffic_includes_onchip_buffers() {
        let mut r = result(10);
        r.nvm.record(psoram_nvm::AccessKind::Write, 64);
        r.oram.onchip_nvm_writes = 5;
        assert_eq!(r.total_writes(), 6);
    }
}
