//! Full-system configuration (the paper's Table 3).

use psoram_cache::HierarchyConfig;
use psoram_core::{OramConfig, ProtocolVariant};
use psoram_nvm::NvmConfig;
use serde::{Deserialize, Serialize};

/// Configuration of a complete simulated system.
///
/// Defaults mirror Table 3: a 3.2 GHz in-order core, 32 KB/2-way L1,
/// 1 MB/8-way L2, a 4 GB `Z = 4` ORAM over single-channel 400 MHz PCM.
///
/// # Examples
///
/// ```
/// use psoram_core::ProtocolVariant;
/// use psoram_system::SystemConfig;
///
/// let cfg = SystemConfig::paper_default(ProtocolVariant::PsOram, 1);
/// assert_eq!(cfg.oram.levels, 23);
/// assert!(cfg.use_oram);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SystemConfig {
    /// Cache hierarchy geometry.
    pub hierarchy: HierarchyConfig,
    /// ORAM geometry (ignored when `use_oram` is `false`).
    pub oram: OramConfig,
    /// Protocol variant of the ORAM controller.
    pub variant: ProtocolVariant,
    /// Main-memory organization.
    pub nvm: NvmConfig,
    /// `false` simulates the non-ORAM reference system of §5.1 (LLC misses
    /// go straight to the NVM).
    pub use_oram: bool,
    /// Seed for the controller's randomness.
    pub seed: u64,
    /// Functionally encrypt payloads (timing is identical either way;
    /// disable for very long sweeps).
    pub encrypt_payloads: bool,
    /// Tree levels mirrored in a fast volatile buffer (hybrid-memory
    /// top-of-tree cache; 0 disables it).
    pub top_cache_levels: u32,
    /// Enable Merkle integrity protection over the data tree.
    pub integrity: bool,
}

impl SystemConfig {
    /// The paper's Table 3 system with the given variant and channel count.
    ///
    /// Note: at the full `L = 23` geometry, long runs materialize a large
    /// sparse tree. The experiment harness uses [`SystemConfig::experiment`]
    /// (a moderately scaled tree) by default; see `DESIGN.md` for the
    /// substitution note.
    pub fn paper_default(variant: ProtocolVariant, channels: usize) -> Self {
        SystemConfig {
            hierarchy: HierarchyConfig::paper_default(),
            oram: OramConfig::paper_default(),
            variant,
            nvm: NvmConfig::paper_pcm(channels),
            use_oram: true,
            seed: 0x905_2022,
            encrypt_payloads: true,
            top_cache_levels: 0,
            integrity: false,
        }
    }

    /// The scaled experiment geometry (`L = 18`): same path-length dynamics
    /// per level, tractable memory footprint for multi-million-access
    /// sweeps.
    pub fn experiment(variant: ProtocolVariant, channels: usize) -> Self {
        let mut cfg = Self::paper_default(variant, channels);
        cfg.oram = cfg.oram.with_levels(18);
        cfg.oram.data_wpq_capacity = cfg.oram.path_slots();
        cfg.oram.posmap_wpq_capacity = cfg.oram.path_slots();
        cfg.encrypt_payloads = false;
        cfg
    }

    /// A small, fast configuration for tests and doc examples.
    ///
    /// The ORAM tree is tiny (`L = 12`), so the L2 is shrunk to 64 KB to
    /// keep the workloads' cold footprints larger than the LLC — otherwise
    /// their MPKI (and thus the memory-boundedness the experiments measure)
    /// would collapse.
    pub fn quick_test(variant: ProtocolVariant, channels: usize) -> Self {
        let mut cfg = Self::paper_default(variant, channels);
        cfg.oram = OramConfig::small_test().with_levels(12);
        cfg.oram.data_wpq_capacity = cfg.oram.path_slots();
        cfg.oram.posmap_wpq_capacity = cfg.oram.path_slots();
        cfg.hierarchy.l2.size_bytes = 64 * 1024;
        cfg
    }

    /// The non-ORAM reference system (§5.1's "non-ORAM system with NVM
    /// main memory").
    pub fn non_oram_reference(channels: usize) -> Self {
        let mut cfg = Self::paper_default(ProtocolVariant::Baseline, channels);
        cfg.use_oram = false;
        cfg
    }

    /// Derives the configuration for shard `shard` of a partitioned
    /// service: identical geometry (every shard gets its own full
    /// cache/NVM hierarchy and its own persistence domain) with a
    /// shard-unique controller seed, so N sharded systems built from one
    /// base config are independent but individually deterministic.
    pub fn for_shard(&self, shard: u32) -> Self {
        let mut cfg = self.clone();
        cfg.seed = self
            .seed
            .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(shard as u64 + 1));
        cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_table3() {
        let cfg = SystemConfig::paper_default(ProtocolVariant::Baseline, 1);
        assert_eq!(cfg.hierarchy.l1d.size_bytes, 32 * 1024);
        assert_eq!(cfg.hierarchy.l2.size_bytes, 1024 * 1024);
        assert_eq!(cfg.oram.bucket_slots, 4);
        assert_eq!(cfg.oram.stash_capacity, 200);
        assert_eq!(cfg.nvm.channels, 1);
    }

    #[test]
    fn experiment_keeps_wpq_sized_to_path() {
        let cfg = SystemConfig::experiment(ProtocolVariant::PsOram, 1);
        assert_eq!(cfg.oram.data_wpq_capacity, cfg.oram.path_slots());
    }

    #[test]
    fn non_oram_reference_disables_oram() {
        assert!(!SystemConfig::non_oram_reference(4).use_oram);
    }

    #[test]
    fn for_shard_derives_unique_seeds_same_geometry() {
        let base = SystemConfig::quick_test(ProtocolVariant::PsOram, 1);
        let a = base.for_shard(0);
        let b = base.for_shard(1);
        assert_ne!(a.seed, b.seed, "shards must not share RNG streams");
        assert_ne!(a.seed, base.seed);
        assert_eq!(a.oram, b.oram, "shard geometry must match the base");
        assert_eq!(a.seed, base.for_shard(0).seed, "derivation is stable");
    }
}
