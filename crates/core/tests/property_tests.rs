//! Property-based tests: read-your-writes, crash-anywhere recoverability,
//! eviction-plan invariants.

use proptest::prelude::*;

use psoram_core::{
    plan_eviction, Block, BlockAddr, CrashPoint, Leaf, OramConfig, OramTree, PathOram,
    ProtocolVariant,
};

fn payload(tag: u8) -> Vec<u8> {
    vec![tag; 8]
}

/// A program: a sequence of (addr, write?, value) operations.
fn ops_strategy(max_addr: u64) -> impl Strategy<Value = Vec<(u64, bool, u8)>> {
    prop::collection::vec((0..max_addr, any::<bool>(), any::<u8>()), 1..60)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Read-your-writes must hold for every variant under random programs.
    #[test]
    fn read_your_writes(ops in ops_strategy(40), seed in 0u64..1000) {
        for variant in [ProtocolVariant::Baseline, ProtocolVariant::PsOram, ProtocolVariant::FullNvm] {
            let mut oram = PathOram::new(OramConfig::small_test(), variant, seed);
            let mut model = std::collections::HashMap::new();
            for (addr, is_write, val) in &ops {
                let a = BlockAddr(*addr);
                if *is_write {
                    oram.write(a, payload(*val)).unwrap();
                    model.insert(*addr, payload(*val));
                } else {
                    let got = oram.read(a).unwrap();
                    let expected = model.get(addr).cloned().unwrap_or_else(|| vec![0u8; 8]);
                    prop_assert_eq!(&got, &expected, "variant {}", variant);
                }
            }
        }
    }

    /// PS-ORAM: a crash at any step boundary of any access, after any
    /// program prefix, recovers to a state where every committed value is
    /// readable.
    #[test]
    fn ps_oram_crash_anywhere_recovers(
        ops in ops_strategy(30),
        step in 0usize..5,
        seed in 0u64..1000,
    ) {
        let mut oram = PathOram::new(OramConfig::small_test(), ProtocolVariant::PsOram, seed);
        for (addr, is_write, val) in &ops {
            let a = BlockAddr(*addr);
            if *is_write {
                oram.write(a, payload(*val)).unwrap();
            } else {
                oram.read(a).unwrap();
            }
        }
        oram.inject_crash(CrashPoint::step_boundaries()[step]);
        let _ = oram.read(BlockAddr(ops[0].0));
        prop_assert!(oram.is_crashed());
        prop_assert!(oram.recover().consistent, "recoverability check failed");
        prop_assert!(oram.verify_contents(true).is_ok());
    }

    /// Same with mid-eviction crashes and a 4-entry persistence domain
    /// (the paper's limited-WPQ configuration).
    #[test]
    fn ps_oram_small_wpq_crash_mid_eviction_recovers(
        ops in ops_strategy(30),
        k in 0usize..12,
        seed in 0u64..1000,
    ) {
        let cfg = OramConfig::small_test().with_wpq_capacity(4, 4);
        let mut oram = PathOram::new(cfg, ProtocolVariant::PsOram, seed);
        for (addr, is_write, val) in &ops {
            let a = BlockAddr(*addr);
            if *is_write {
                oram.write(a, payload(*val)).unwrap();
            } else {
                oram.read(a).unwrap();
            }
        }
        oram.inject_crash(CrashPoint::DuringEviction(k));
        let _ = oram.read(BlockAddr(ops[0].0));
        if oram.is_crashed() {
            prop_assert!(oram.recover().consistent, "ordered small-WPQ eviction must stay recoverable");
            prop_assert!(oram.verify_contents(true).is_ok());
        } else {
            oram.disarm_crash();
        }
    }

    /// The recoverability invariant holds continuously, not just at crash
    /// time: after any program, check_recoverability passes for PS-ORAM.
    #[test]
    fn ps_oram_invariant_holds_during_normal_operation(
        ops in ops_strategy(40),
        seed in 0u64..1000,
    ) {
        let mut oram = PathOram::new(OramConfig::small_test(), ProtocolVariant::PsOram, seed);
        for (addr, is_write, val) in &ops {
            let a = BlockAddr(*addr);
            if *is_write {
                oram.write(a, payload(*val)).unwrap();
            } else {
                oram.read(a).unwrap();
            }
            prop_assert!(oram.check_recoverability().is_ok());
        }
    }

    /// Eviction planning: every path slot is covered exactly once, no block
    /// is duplicated or lost, and blocks land on prefix-compatible buckets.
    #[test]
    fn eviction_plan_is_a_partition(
        leaves in prop::collection::vec(0u64..64, 1..20),
        evict_leaf in 0u64..64,
    ) {
        let cfg = OramConfig::small_test();
        let tree = OramTree::new(&cfg);
        let blocks: Vec<Block> = leaves
            .iter()
            .enumerate()
            .map(|(i, &l)| Block::new(BlockAddr(i as u64), Leaf(l), vec![0; 8]))
            .collect();
        let n = blocks.len();
        let (plan, leftovers) = plan_eviction(vec![], blocks, &tree, Leaf(evict_leaf));

        // Full coverage of the path.
        prop_assert_eq!(plan.writes.len(), cfg.path_slots());
        // Conservation: placed + leftovers == input.
        prop_assert_eq!(plan.real_blocks() + leftovers.len(), n);
        // Placement legality: a block's leaf path must pass through its bucket.
        for w in &plan.writes {
            if let Some(b) = &w.block {
                let path = tree.path_indices(b.leaf());
                prop_assert!(
                    path.contains(&w.bucket),
                    "block with leaf {} placed off-path at bucket {}",
                    b.leaf(),
                    w.bucket
                );
            }
        }
        // No duplicate slots.
        let mut seen = std::collections::HashSet::new();
        for w in &plan.writes {
            prop_assert!(seen.insert((w.bucket, w.slot)));
        }
    }

    /// Ring ORAM: read-your-writes under random programs, both variants.
    #[test]
    fn ring_read_your_writes(ops in ops_strategy(40), seed in 0u64..500) {
        use psoram_core::ring::{RingConfig, RingOram, RingVariant};
        for variant in [RingVariant::Baseline, RingVariant::PsRing] {
            let mut oram = RingOram::new(RingConfig::small_test(), variant, seed);
            let mut model = std::collections::HashMap::new();
            for (addr, is_write, val) in &ops {
                let a = BlockAddr(*addr);
                if *is_write {
                    oram.write(a, payload(*val)).unwrap();
                    model.insert(*addr, payload(*val));
                } else {
                    let got = oram.read(a).unwrap();
                    let expected = model.get(addr).cloned().unwrap_or_else(|| vec![0u8; 8]);
                    prop_assert_eq!(&got, &expected, "{} addr {}", variant, addr);
                }
            }
        }
    }

    /// PS-Ring-ORAM: crash at any step boundary after a random program
    /// recovers to committed values.
    #[test]
    fn ps_ring_crash_anywhere_recovers(
        ops in ops_strategy(30),
        step in 0usize..4,
        seed in 0u64..500,
    ) {
        use psoram_core::ring::{RingConfig, RingOram, RingVariant};
        let points = [
            CrashPoint::AfterAccessPosMap,
            CrashPoint::AfterLoadPath,
            CrashPoint::AfterUpdateStash,
            CrashPoint::AfterEviction,
        ];
        let mut oram = RingOram::new(RingConfig::small_test(), RingVariant::PsRing, seed);
        for (addr, is_write, val) in &ops {
            let a = BlockAddr(*addr);
            if *is_write {
                oram.write(a, payload(*val)).unwrap();
            } else {
                oram.read(a).unwrap();
            }
        }
        oram.inject_crash(points[step]);
        let _ = oram.read(BlockAddr(ops[0].0));
        if oram.is_crashed() {
            prop_assert!(oram.recover().consistent, "PS-Ring recoverability failed");
            prop_assert!(oram.verify_contents(true).is_ok());
        }
    }

    /// Integrity-protected PS-ORAM: random programs + crash never raise a
    /// false alarm, and verification stays green throughout.
    #[test]
    fn integrity_no_false_alarms(ops in ops_strategy(25), seed in 0u64..500) {
        let mut oram = PathOram::new(OramConfig::small_test(), ProtocolVariant::PsOram, seed);
        oram.enable_integrity();
        for (addr, is_write, val) in &ops {
            let a = BlockAddr(*addr);
            let r = if *is_write {
                oram.write(a, payload(*val))
            } else {
                oram.read(a).map(|_| ())
            };
            prop_assert!(r.is_ok(), "false alarm: {:?}", r);
        }
        oram.crash_now();
        prop_assert!(oram.recover().consistent);
        prop_assert!(oram.verify_contents(true).is_ok());
    }

    /// Must-class blocks fetched from the eviction path are always placed.
    #[test]
    fn must_blocks_always_placed(
        depths in prop::collection::vec(0u32..7, 1..28),
        evict_leaf in 0u64..64,
    ) {
        let cfg = OramConfig::small_test();
        let tree = OramTree::new(&cfg);
        // Build blocks whose leaves agree with evict_leaf to exactly depth d,
        // at most Z per depth (as fetched blocks would).
        let mut per_depth = [0usize; 7];
        let mut blocks = Vec::new();
        for (i, &d) in depths.iter().enumerate() {
            if per_depth[d as usize] >= cfg.bucket_slots {
                continue;
            }
            per_depth[d as usize] += 1;
            let leaf = if d == 6 { evict_leaf } else { evict_leaf ^ (1 << (5 - d)) };
            blocks.push(Block::new(BlockAddr(i as u64), Leaf(leaf), vec![0; 8]));
        }
        let n = blocks.len();
        let (plan, leftovers) = plan_eviction(blocks, vec![], &tree, Leaf(evict_leaf));
        prop_assert!(leftovers.is_empty(), "{} must-blocks stranded", leftovers.len());
        prop_assert_eq!(plan.real_blocks(), n);
    }
}
