//! The parameterized crash/recovery matrix.
//!
//! One suite drives every design — all seven Path ORAM protocol variants
//! and both Ring ORAM flavours — through the same crash scenarios via the
//! shared [`ProtocolPolicy`] surface: step-boundary crashes, mid-eviction
//! crashes, crash scheduling, and the post-recovery consistency checks.
//! Adding a protocol variant to [`Design::all`] enrols it in the whole
//! matrix.

use psoram_core::ring::{RingConfig, RingOram, RingVariant};
use psoram_core::{
    BlockAddr, CrashPoint, OramConfig, OramError, PathOram, ProtocolPolicy, ProtocolVariant,
};
use psoram_nvm::NvmConfig;

fn payload(i: u64) -> Vec<u8> {
    vec![(i % 251) as u8; 8]
}

/// One cell of the design axis: a Path ORAM variant or a Ring ORAM variant.
#[derive(Debug, Clone, Copy)]
enum Design {
    Path(ProtocolVariant),
    Ring(RingVariant),
}

impl Design {
    /// Every design the matrix covers.
    fn all() -> Vec<Design> {
        ProtocolVariant::all()
            .into_iter()
            .map(Design::Path)
            .chain([RingVariant::Baseline, RingVariant::PsRing].map(Design::Ring))
            .collect()
    }

    /// The designs that claim crash consistency.
    fn consistent() -> Vec<Design> {
        Self::all()
            .into_iter()
            .filter(|d| d.build(0).crash_consistent())
            .collect()
    }

    fn build(self, seed: u64) -> Box<dyn ProtocolPolicy> {
        match self {
            Design::Path(v) => Box::new(PathOram::new(OramConfig::small_test(), v, seed)),
            Design::Ring(v) => Box::new(RingOram::new(RingConfig::small_test(), v, seed)),
        }
    }

    /// A build whose WPQ sits at (Path) or exactly on (Ring) the smallest
    /// legal capacity, forcing dependency-ordered sub-batches (paper
    /// §4.2.3).
    fn build_small_wpq(self, seed: u64) -> Box<dyn ProtocolPolicy> {
        match self {
            Design::Path(v) => {
                let cfg = OramConfig::small_test().with_wpq_capacity(4, 4);
                Box::new(PathOram::new(cfg, v, seed))
            }
            Design::Ring(v) => {
                let mut cfg = RingConfig::small_test();
                cfg.wpq_capacity = cfg.bucket_physical_slots() * (cfg.levels as usize + 1);
                Box::new(RingOram::new(cfg, v, seed))
            }
        }
    }

    /// The step-boundary crash points that fire for this design on every
    /// access (Ring ORAM has no separate check-stash step).
    fn step_points(self) -> Vec<CrashPoint> {
        match self {
            Design::Path(_) => CrashPoint::step_boundaries().to_vec(),
            Design::Ring(_) => vec![
                CrashPoint::AfterAccessPosMap,
                CrashPoint::AfterLoadPath,
                CrashPoint::AfterUpdateStash,
                CrashPoint::AfterEviction,
            ],
        }
    }
}

#[test]
fn consistent_designs_recover_at_every_step_boundary() {
    for d in Design::consistent() {
        for point in d.step_points() {
            let mut oram = d.build(3);
            let tag = format!("{}/{point}", oram.label());
            for i in 0..25u64 {
                oram.write(i, payload(i)).unwrap();
            }
            oram.inject_crash(point);
            let res = oram.read(5);
            assert!(
                res.is_err(),
                "{tag}: access with an armed crash must not return a value"
            );
            assert!(oram.is_crashed(), "{tag}: crash did not fire");
            assert!(
                oram.recover().consistent,
                "{tag}: recoverability check failed"
            );
            oram.verify_contents(true)
                .unwrap_or_else(|e| panic!("{tag}: inconsistent: {e}"));
        }
    }
}

#[test]
fn consistent_designs_recover_mid_eviction() {
    for d in Design::consistent() {
        let mut fired_somewhere = false;
        for k in [0usize, 1, 2] {
            let mut oram = d.build(9);
            let tag = format!("{}/k={k}", oram.label());
            for i in 0..25u64 {
                oram.write(i, payload(i)).unwrap();
            }
            oram.inject_crash(CrashPoint::DuringEviction(k));
            for i in 0..6u64 {
                if oram.read(i).is_err() {
                    break;
                }
            }
            if !oram.is_crashed() {
                // k exceeded this run's persist-unit count: nothing to test.
                continue;
            }
            fired_somewhere = true;
            assert!(
                oram.recover().consistent,
                "{tag}: crash after {k} units must be safe"
            );
            oram.verify_contents(true)
                .unwrap_or_else(|e| panic!("{tag}: inconsistent: {e}"));
        }
        assert!(fired_somewhere, "{d:?}: no mid-eviction crash ever fired");
    }
}

#[test]
fn consistent_designs_survive_small_wpq_evictions() {
    for d in Design::consistent() {
        for (i, k) in [0usize, 1, 2, 3, 5, 8].into_iter().enumerate() {
            let mut oram = d.build_small_wpq(11 + i as u64);
            let tag = format!("{}/k={k}", oram.label());
            for i in 0..25u64 {
                oram.write(i, payload(i)).unwrap();
            }
            oram.inject_crash(CrashPoint::DuringEviction(k));
            for i in 0..9u64 {
                if oram.write(i, payload(200 + i)).is_err() {
                    break;
                }
            }
            if !oram.is_crashed() {
                oram.disarm_crash();
                continue;
            }
            assert!(
                oram.recover().consistent,
                "{tag}: small-WPQ crash must be safe"
            );
            oram.verify_contents(true)
                .unwrap_or_else(|e| panic!("{tag}: inconsistent: {e}"));
        }
    }
}

#[test]
fn non_consistent_designs_lose_data_somewhere() {
    // The designs without WPQ rounds must actually exhibit the failure the
    // paper motivates with (Case 1a / Figure 3): somewhere across seeds and
    // crash depths, a completed write does not survive crash + recovery.
    for d in [
        Design::Path(ProtocolVariant::Baseline),
        Design::Ring(RingVariant::Baseline),
    ] {
        let mut lost_somewhere = false;
        for seed in 0..6u64 {
            for k in [0usize, 4, 8] {
                let mut oram = d.build(seed);
                for i in 0..30u64 {
                    oram.write(i, payload(i)).unwrap();
                }
                oram.inject_crash(CrashPoint::DuringEviction(k));
                for i in 0..6u64 {
                    if oram.read(i).is_err() {
                        break;
                    }
                }
                if !oram.is_crashed() {
                    continue;
                }
                oram.recover();
                for i in 0..30u64 {
                    if oram.read(i).unwrap() != payload(i) {
                        lost_somewhere = true;
                    }
                }
            }
        }
        assert!(
            lost_somewhere,
            "{d:?}: partial evictions should lose data (paper §3.3)"
        );
    }
}

#[test]
fn operations_rejected_while_crashed() {
    for d in Design::all() {
        let mut oram = d.build(17);
        let tag = oram.label();
        oram.write(0, payload(1)).unwrap();
        oram.crash_now();
        assert_eq!(oram.read(0).unwrap_err(), OramError::Crashed, "{tag}");
        assert_eq!(
            oram.write(0, payload(2)).unwrap_err(),
            OramError::Crashed,
            "{tag}"
        );
        oram.recover();
        assert!(
            oram.read(0).is_ok(),
            "{tag}: reads must work again after recovery"
        );
    }
}

#[test]
fn scheduled_crashes_drive_repeated_recovery_cycles() {
    // Campaign-style schedule: arm a crash a fixed number of accesses
    // ahead, run traffic until it fires, recover, verify, repeat.
    for d in Design::consistent() {
        let mut oram = d.build(19);
        let tag = oram.label();
        for i in 0..12u64 {
            oram.write(i, payload(i)).unwrap();
        }
        for (cycle, point) in [
            CrashPoint::AfterLoadPath,
            CrashPoint::AfterUpdateStash,
            CrashPoint::AfterAccessPosMap,
        ]
        .into_iter()
        .enumerate()
        {
            oram.schedule_crash(oram.access_attempts() + 2, point);
            let mut fired = false;
            for i in 0..6u64 {
                match oram.write(i, payload(100 * (cycle as u64 + 1) + i)) {
                    Ok(()) => {}
                    Err(OramError::Crashed) => {
                        fired = true;
                        assert!(
                            oram.recover().consistent,
                            "{tag}: cycle {cycle}: recovery at {point}"
                        );
                        oram.verify_contents(true).unwrap();
                        break;
                    }
                    Err(e) => panic!("{tag}: cycle {cycle}: unexpected error {e}"),
                }
            }
            assert!(
                fired,
                "{tag}: cycle {cycle}: scheduled crash at {point} never fired"
            );
        }
    }
}

#[test]
fn cleared_schedule_never_fires() {
    for d in Design::all() {
        let mut oram = d.build(23);
        oram.schedule_crash(oram.access_attempts() + 1, CrashPoint::AfterLoadPath);
        oram.clear_crash_schedule();
        for i in 0..10u64 {
            oram.write(i, payload(i)).unwrap();
        }
        assert!(
            !oram.is_crashed(),
            "{}: cleared schedule fired anyway",
            oram.label()
        );
    }
}

#[test]
fn last_recovery_report_is_retained() {
    for d in Design::consistent() {
        let mut oram = d.build(29);
        let tag = oram.label();
        assert!(oram.last_recovery().is_none(), "{tag}");
        for i in 0..15u64 {
            oram.write(i, payload(i)).unwrap();
        }
        oram.crash_now();
        let report = oram.recover();
        assert!(report.consistent, "{tag}");
        assert!(
            report.addresses_checked > 0,
            "{tag}: committed addresses should be checked"
        );
        assert_eq!(oram.last_recovery(), Some(&report), "{tag}");
    }
}

// ──────────────── Path-specific feature interactions ────────────────
// Integrity and the top-of-tree cache are Path ORAM features configured
// past the `ProtocolPolicy` surface, so this corner of the matrix drives
// the concrete controller.

#[test]
fn path_feature_matrix_stays_crash_consistent() {
    for variant in ProtocolVariant::all()
        .into_iter()
        .filter(|v| v.is_crash_consistent())
    {
        for integrity in [false, true] {
            for top_cache in [0u32, 3] {
                for point in [CrashPoint::AfterAccessPosMap, CrashPoint::AfterLoadPath] {
                    let tag = format!("{variant}/int={integrity}/cache={top_cache}/{point}");
                    let cfg = OramConfig::small_test();
                    let mut oram = PathOram::with_nvm(cfg, variant, NvmConfig::paper_pcm(1), 97);
                    if integrity {
                        oram.enable_integrity();
                    }
                    oram.set_top_cache_levels(top_cache);
                    for i in 0..20u64 {
                        oram.write(BlockAddr(i), payload(i)).unwrap();
                    }
                    oram.inject_crash(point);
                    let _ = oram.read(BlockAddr(4));
                    assert!(oram.is_crashed(), "{tag}: crash did not fire");
                    assert!(
                        oram.recover().consistent,
                        "{tag}: recoverability check failed"
                    );
                    oram.verify_contents(true)
                        .unwrap_or_else(|e| panic!("{tag}: inconsistent: {e}"));
                }
            }
        }
    }
}

#[test]
fn wpq_stall_counters_survive_recovery() {
    // 4-entry WPQs force round splits; the engine-owned stall counter must
    // accumulate across them and survive a crash/recover cycle intact.
    let cfg = OramConfig::small_test().with_wpq_capacity(4, 4);
    let mut oram = PathOram::new(cfg, ProtocolVariant::PsOram, 13);
    for i in 0..20u64 {
        oram.write(BlockAddr(i), payload(i)).unwrap();
    }
    let stalls_before = oram.stats().wpq_stalls;
    assert!(
        stalls_before > 0,
        "a 4-entry WPQ must stall at least once in 20 accesses"
    );
    oram.crash_now();
    let report = oram.recover();
    assert!(report.consistent);
    let s = oram.stats();
    assert_eq!(
        s.wpq_stalls, stalls_before,
        "stall count must survive recovery"
    );
    assert_eq!(s.crashes, 1);
    assert_eq!(s.recoveries, 1);
}

// ── endurance adversary: crash-consistent wear leveling ────────────────

/// A wear config that stages a gap move on every drained write, so any
/// mid-eviction crash lands mid-gap-move.
fn eager_start_gap() -> psoram_nvm::WearConfig {
    let mut cfg = psoram_nvm::WearConfig::stress(psoram_nvm::WearScheme::StartGap);
    cfg.gap_interval = 1;
    cfg
}

#[test]
fn wear_armed_designs_recover_at_every_crash_point() {
    // Crash-mid-gap-move, parameterized over every consistent design and
    // every crash point: after recovery the line mapping must be the one
    // the last commit round made durable (or the freshly committed one),
    // never a half-applied move — and contents must verify.
    for d in Design::consistent() {
        let mut points = d.step_points();
        points.extend([1usize, 2].map(CrashPoint::DuringEviction));
        for point in points {
            let mut oram = d.build(17);
            oram.enable_wear(17, eager_start_gap());
            let tag = format!("{}/{point}/wear", oram.label());
            for i in 0..25u64 {
                oram.write(i, payload(i)).unwrap();
            }
            oram.inject_crash(point);
            for i in 0..6u64 {
                if oram.read(i).is_err() {
                    break;
                }
            }
            if !oram.is_crashed() {
                continue;
            }
            assert!(oram.recover().consistent, "{tag}: recovery failed");
            oram.verify_contents(true)
                .unwrap_or_else(|e| panic!("{tag}: inconsistent: {e}"));
            let stats = oram.wear_stats().expect("wear is armed");
            assert!(stats.gap_moves > 0, "{tag}: eager gap config never moved");
            assert!(
                stats.map_commits > 0 || stats.map_reverts > 0,
                "{tag}: crash round neither committed nor reverted the mapping"
            );
            // Post-recovery accesses run on the recovered mapping.
            for i in 0..6u64 {
                oram.read(i)
                    .unwrap_or_else(|e| panic!("{tag}: post-recovery read: {e:?}"));
            }
        }
    }
}

#[test]
fn crash_mid_gap_move_rolls_the_path_mapping_back() {
    let mut fired_somewhere = false;
    for k in [0usize, 1, 2] {
        let mut oram = PathOram::new(OramConfig::small_test(), ProtocolVariant::PsOram, 23);
        oram.enable_wear(23, eager_start_gap());
        for i in 0..20u64 {
            oram.write(BlockAddr(i), payload(i)).unwrap();
        }
        let durable = oram.wear_engine().unwrap().mapping_digest();
        // Crash mid-drain: the gap moves staged by this round's drained
        // units must revert to the digest above, not half-apply.
        oram.inject_crash(CrashPoint::DuringEviction(k));
        for i in 0..8u64 {
            if oram.read(BlockAddr(i)).is_err() {
                break;
            }
        }
        if !oram.is_crashed() {
            continue;
        }
        fired_somewhere = true;
        assert!(oram.recover().consistent);
        let w = oram.wear_engine().unwrap();
        assert_eq!(
            w.mapping_digest(),
            durable,
            "k={k}: recovered mapping must equal the last durable mapping"
        );
        assert!(
            w.mapping_is_injective(),
            "no address may resolve to two lines"
        );
        assert!(oram.wear_stats().unwrap().map_reverts >= 1);
        oram.verify_contents(true).unwrap();
    }
    assert!(fired_somewhere, "no mid-eviction crash ever fired");
}

#[test]
fn crash_mid_retirement_keeps_one_consistent_mapping() {
    // Remap scheme with every line pre-aged past its budget and the wear
    // arm at full strength: reads convict and stage retirements. A crash
    // before the next commit round must roll them back; one after must
    // keep them — either way exactly one consistent mapping survives.
    for seed in [5u64, 11, 29] {
        let mut cfg = psoram_nvm::WearConfig::stress(psoram_nvm::WearScheme::Remap);
        cfg.preage_writes = 4000;
        let mut oram = PathOram::new(OramConfig::small_test(), ProtocolVariant::PsOram, seed);
        oram.enable_device_faults(seed, psoram_nvm::FaultConfig::wear_only());
        oram.enable_wear(seed, cfg);
        for i in 0..10u64 {
            oram.write(BlockAddr(i), payload(i)).unwrap();
        }
        let mut retired = 0;
        for i in 0..400u64 {
            match oram.read(BlockAddr(i % 10)) {
                Ok(_) => {}
                Err(OramError::Poisoned { .. }) => break,
                Err(e) => panic!("seed {seed}: unexpected error {e:?}"),
            }
            retired = oram.wear_stats().unwrap().retirements;
            if retired >= 2 {
                break;
            }
        }
        assert!(retired >= 1, "seed {seed}: pre-aged lines never retired");
        oram.crash_now();
        assert!(oram.recover().consistent, "seed {seed}: recovery failed");
        let w = oram.wear_engine().unwrap();
        assert!(
            w.mapping_is_injective(),
            "seed {seed}: retirement chain broke injectivity"
        );
        oram.verify_contents(true)
            .unwrap_or_else(|e| panic!("seed {seed}: inconsistent: {e}"));
        let s = oram.wear_stats().unwrap();
        assert!(
            s.map_commits > 0 || s.map_reverts > 0,
            "seed {seed}: retirement neither committed nor reverted"
        );
    }
}

#[test]
fn crash_mid_retirement_keeps_one_consistent_ring_mapping() {
    let mut cfg = psoram_nvm::WearConfig::stress(psoram_nvm::WearScheme::Remap);
    cfg.preage_writes = 4000;
    let mut oram = RingOram::new(RingConfig::small_test(), RingVariant::PsRing, 37);
    oram.enable_device_faults(37, psoram_nvm::FaultConfig::wear_only());
    oram.enable_wear(37, cfg);
    for i in 0..10u64 {
        oram.write(BlockAddr(i), payload(i)).unwrap();
    }
    let mut retired = 0;
    for i in 0..400u64 {
        match oram.read(BlockAddr(i % 10)) {
            Ok(_) => {}
            Err(OramError::Poisoned { .. }) => break,
            Err(e) => panic!("unexpected error {e:?}"),
        }
        retired = oram.wear_stats().unwrap().retirements;
        if retired >= 2 {
            break;
        }
    }
    assert!(retired >= 1, "pre-aged ring lines never retired");
    oram.crash_now();
    assert!(oram.recover().consistent);
    let w = oram.wear_engine().unwrap();
    assert!(
        w.mapping_is_injective(),
        "no address may resolve to two lines"
    );
    oram.verify_contents(true).unwrap();
}

#[test]
fn wear_disabled_designs_match_pre_endurance_state_digests() {
    // The wear machinery must be invisible until armed: a controller that
    // never calls enable_wear computes the same state digest as one whose
    // wear-disabled twin runs the identical access pattern.
    for d in Design::consistent() {
        let mut a = d.build(41);
        let mut b = d.build(41);
        for i in 0..15u64 {
            a.write(i, payload(i)).unwrap();
            b.write(i, payload(i)).unwrap();
        }
        assert_eq!(a.state_digest(), b.state_digest(), "{}", a.label());
        assert!(
            a.wear_stats().is_none(),
            "wear must stay un-armed by default"
        );
    }
}

#[test]
fn ring_at_wpq_floor_never_stalls() {
    // A Ring WPQ sized exactly to the validate() floor always fits a whole
    // eviction round, so the stall path must never trigger.
    let mut cfg = RingConfig::small_test();
    cfg.wpq_capacity = cfg.bucket_physical_slots() * (cfg.levels as usize + 1);
    let mut oram = RingOram::new(cfg, RingVariant::PsRing, 31);
    for i in 0..60u64 {
        oram.write(BlockAddr(i % 20), payload(i)).unwrap();
    }
    assert_eq!(oram.stats().wpq_stalls, 0);
}
