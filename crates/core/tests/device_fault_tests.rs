//! Device-level fault injection and integrity-verified recovery.
//!
//! These tests drive the hardened (WPQ) designs through crashes with a
//! seeded device fault plan installed — torn flushes, signal loss, media
//! bit rot, transient reads — and assert the tentpole contract: every
//! fault is either *repaired* (post-recovery contents match the committed
//! ledger) or *fail-safed* with a typed [`RecoveryError`]; corruption is
//! never silent. The double-recover suites pin the idempotency guarantee
//! both controllers document.

use psoram_core::ring::{RingConfig, RingOram, RingVariant};
use psoram_core::{
    BlockAddr, OramConfig, OramError, PathOram, ProtocolPolicy, ProtocolVariant, RecoveryError,
};
use psoram_nvm::FaultConfig;

fn payload(i: u64) -> Vec<u8> {
    vec![(i % 251) as u8; 8]
}

/// Every design that claims crash consistency *and* runs its persists
/// through the WPQ — the designs the integrity layer hardens.
fn hardened_designs(seed: u64) -> Vec<Box<dyn ProtocolPolicy>> {
    let mut v: Vec<Box<dyn ProtocolPolicy>> = ProtocolVariant::all()
        .into_iter()
        .filter(|p| p.uses_wpq())
        .map(|p| Box::new(PathOram::new(OramConfig::small_test(), p, seed)) as _)
        .collect();
    v.push(Box::new(RingOram::new(
        RingConfig::small_test(),
        RingVariant::PsRing,
        seed,
    )));
    v
}

/// Workload helper tolerant of fail-safe poisoning: returns `false` once
/// the controller refuses service.
fn drive(oram: &mut dyn ProtocolPolicy, base: u64, n: u64) -> bool {
    for i in 0..n {
        let addr = (base + i * 7) % 40;
        let r = if i % 3 == 0 {
            oram.read(addr).map(|_| ())
        } else {
            oram.write(addr, payload(base + i))
        };
        match r {
            Ok(()) => {}
            Err(OramError::Poisoned { .. }) => return false,
            Err(e) => panic!("unexpected access error: {e}"),
        }
    }
    true
}

#[test]
fn hardened_designs_self_heal_or_fail_safe_under_device_faults() {
    for seed in [3u64, 17, 92] {
        for mut oram in hardened_designs(seed) {
            assert!(drive(oram.as_mut(), seed, 30), "clean warmup poisoned");
            oram.enable_device_faults(seed.wrapping_mul(0x9E37), FaultConfig::campaign_default());
            for round in 0..8u64 {
                if !drive(oram.as_mut(), seed + round * 101, 12) {
                    break; // fail-safe latched: typed refusal, not corruption
                }
                oram.crash_now();
                let report = oram.recover();
                if report.violation.is_some() {
                    // A consistency violation must never be silent: it has
                    // to arrive classified, as typed errors or poisoning.
                    assert!(
                        !report.errors.is_empty() || report.poisoned,
                        "silent violation: {:?}",
                        report.violation
                    );
                } else if !report.poisoned {
                    // Clean verdict: contents must actually match the
                    // committed ledger (rollbacks already folded in). The
                    // verification reads themselves run under the fault
                    // plan, so a read-path fail-safe mid-verify is an
                    // acceptable (typed) outcome — divergence is not.
                    if let Err(e) = oram.verify_contents(true) {
                        assert!(
                            oram.poisoned().is_some(),
                            "consistent verdict but contents diverge: {e}"
                        );
                        break;
                    }
                }
            }
        }
    }
}

#[test]
fn recover_without_crash_is_a_no_op() {
    for mut oram in hardened_designs(5) {
        oram.enable_device_faults(11, FaultConfig::campaign_default());
        assert!(drive(oram.as_mut(), 5, 20));
        let digest = oram.state_digest();
        let report = oram.recover(); // never crashed
        assert!(report.violation.is_none());
        assert_eq!(oram.state_digest(), digest, "no-op recover mutated state");
    }
}

/// The double-recover regression: recover, crash "during recovery" (a
/// power failure immediately after, before any new round), recover again —
/// state and verdict must be byte-identical and counters must not double.
#[test]
fn double_recover_is_idempotent_and_byte_identical() {
    for mut oram in hardened_designs(29) {
        // A disabled plan keeps the whole integrity pipeline armed (tags,
        // sealed frames, device draws) while injecting nothing, so the
        // byte-identity comparison is exact.
        oram.enable_device_faults(23, FaultConfig::disabled());
        assert!(drive(oram.as_mut(), 29, 36));
        oram.crash_now();

        let first = oram.recover();
        assert!(first.violation.is_none(), "{:?}", first.violation);
        let digest = oram.state_digest();

        // Second recover with no intervening crash: cached verdict.
        let again = oram.recover();
        assert_eq!(again, first);
        assert_eq!(oram.state_digest(), digest);

        // Crash during recovery's aftermath, then recover again.
        oram.crash_now();
        let second = oram.recover();
        assert!(second.violation.is_none(), "{:?}", second.violation);
        assert_eq!(
            oram.state_digest(),
            digest,
            "re-crash + re-recover diverged from the recovered state"
        );
        assert_eq!(second.repairs, 0, "idle re-recovery invented repairs");
        assert!(second.rolled_back.is_empty());
        oram.verify_contents(true).expect("contents diverge");
    }
}

#[test]
fn rolled_back_addresses_carry_typed_errors() {
    // Aggressive plans tear nearly every round; over enough crashes at
    // least one run must classify damage. The contract under test:
    // whenever an address is rolled back, a typed UnrecoverableAddress
    // (or Poisoned) error names the loss.
    let mut classified = 0u64;
    for seed in 0..12u64 {
        let mut oram = PathOram::new(OramConfig::small_test(), ProtocolVariant::PsOram, seed);
        assert!(drive(&mut oram, seed, 24));
        oram.enable_device_faults(seed, FaultConfig::aggressive());
        for round in 0..6u64 {
            if !drive(&mut oram, seed + round * 13, 9) {
                classified += 1;
                break;
            }
            oram.crash_now();
            let report = oram.recover();
            classified += report.errors.len() as u64 + report.repairs;
            for a in &report.rolled_back {
                assert!(
                    report.errors.iter().any(|e| matches!(
                        e,
                        RecoveryError::UnrecoverableAddress { addr, .. } if addr == a
                    )),
                    "rollback of {a} not named by a typed error"
                );
            }
            if report.poisoned {
                break;
            }
        }
    }
    assert!(
        classified > 0,
        "aggressive campaign never classified a fault"
    );
}

#[test]
fn baselines_take_faults_without_defenses() {
    // The differential campaigns need the unhardened designs to keep
    // failing detectably: enabling device faults on a baseline must
    // install the plan (stats exist) but arm no integrity layer.
    let mut oram = PathOram::new(OramConfig::small_test(), ProtocolVariant::Baseline, 7);
    oram.enable_device_faults(7, FaultConfig::campaign_default());
    assert!(oram.device_fault_stats().is_some());
    let mut ring = RingOram::new(RingConfig::small_test(), RingVariant::Baseline, 7);
    ring.enable_device_faults(7, FaultConfig::campaign_default());
    assert!(ring.device_fault_stats().is_some());
    assert!(drive(&mut ring, 7, 20));
    ring.crash_now();
    let _ = ring.recover(); // may or may not be consistent; must not panic
}

#[test]
fn transient_read_faults_surface_in_fault_stats() {
    let mut oram = PathOram::new(OramConfig::small_test(), ProtocolVariant::PsOram, 41);
    oram.enable_device_faults(41, FaultConfig::aggressive());
    let mut served = 0u64;
    for i in 0..200u64 {
        match oram.write(BlockAddr(i % 32), payload(i)) {
            Ok(()) => served += 1,
            Err(OramError::Poisoned { .. }) => break,
            Err(OramError::Crashed) => break,
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    let stats = oram.device_fault_stats().expect("plan installed");
    assert!(
        stats.read_faults > 0 || oram.poisoned().is_some(),
        "aggressive plan served {served} accesses without a read fault"
    );
}
