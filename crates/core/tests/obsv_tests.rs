//! Lockdown suite for the `psoram-obsv` taps threaded through the ORAM
//! controllers.
//!
//! Three properties pin the observability layer down:
//!
//! 1. **Observer transparency** — running the identical workload with no
//!    recorder, a [`NoopRecorder`], and a [`RingBufferRecorder`] must
//!    produce byte-identical metrics snapshots. The taps observe; they
//!    never perturb.
//! 2. **Golden trace** — a fixed-seed run exports a chrome://tracing
//!    JSON that matches a checked-in golden byte-for-byte, so any
//!    accidental change to event emission or the exporter shows up as a
//!    diff. Re-bless with `PSORAM_BLESS=1 cargo test -p psoram-core
//!    --test obsv_tests`.
//! 3. **Stream invariants** — the event stream obeys the structural
//!    rules the exporters and `ingest_events` rely on: WPQ occupancy
//!    never exceeds capacity, persist rounds bracket correctly, phase
//!    and NVM intervals are well-formed, access indices are strictly
//!    increasing, and recoveries never outnumber crashes.

use std::sync::Arc;

use psoram_core::ring::{RingConfig, RingOram, RingVariant};
use psoram_core::{BlockAddr, CrashPoint, OramConfig, PathOram, ProtocolPolicy, ProtocolVariant};
use psoram_obsv::{
    chrome_trace_json, Event, MetricsRegistry, NoopRecorder, RingBufferRecorder,
    DEFAULT_RING_CAPACITY,
};

fn payload(i: u64) -> Vec<u8> {
    vec![(i % 251) as u8; 8]
}

/// The two persistent designs, built fresh at a fixed seed, boxed behind
/// the shared policy surface so one loop covers both controllers.
fn designs() -> Vec<(&'static str, Box<dyn ProtocolPolicy>)> {
    let mut path = PathOram::new(OramConfig::small_test(), ProtocolVariant::PsOram, 7);
    path.set_payload_encryption(false);
    vec![
        ("path/ps-oram", Box::new(path)),
        (
            "ring/ps-ring",
            Box::new(RingOram::new(
                RingConfig::small_test(),
                RingVariant::PsRing,
                7,
            )),
        ),
    ]
}

/// A deterministic workload with writes, reads, and one crash/recover
/// cycle, so every event class is exercised.
fn drive(oram: &mut dyn ProtocolPolicy) {
    for i in 0..20u64 {
        oram.write(i % 12, payload(i)).unwrap();
    }
    oram.inject_crash(CrashPoint::AfterUpdateStash);
    assert!(oram.read(3).is_err(), "armed crash must fire");
    assert!(oram.recover().consistent, "recovery must succeed");
    for i in 0..12u64 {
        oram.read(i).unwrap();
    }
}

/// The run's observable outcome, serialized for byte comparison: the
/// full metrics registry plus the controller clock.
fn report_of(oram: &dyn ProtocolPolicy, label: &str) -> String {
    let mut reg = MetricsRegistry::new();
    oram.publish_metrics(label, &mut reg);
    format!("clock={}\n{}", oram.clock(), reg.to_json_string())
}

#[test]
fn recorders_do_not_perturb_the_simulation() {
    for ((label, mut bare), (_, mut noop), (_, mut ring)) in designs()
        .into_iter()
        .zip(designs())
        .zip(designs())
        .map(|((a, b), c)| (a, b, c))
    {
        noop.attach_recorder(Arc::new(NoopRecorder));
        let rec = Arc::new(RingBufferRecorder::new(DEFAULT_RING_CAPACITY));
        ring.attach_recorder(rec.clone());

        drive(&mut *bare);
        drive(&mut *noop);
        drive(&mut *ring);

        let baseline = report_of(&*bare, label);
        assert_eq!(
            baseline,
            report_of(&*noop, label),
            "{label}: NoopRecorder changed the simulation outcome"
        );
        assert_eq!(
            baseline,
            report_of(&*ring, label),
            "{label}: RingBufferRecorder changed the simulation outcome"
        );
        assert!(
            !rec.events().is_empty(),
            "{label}: the ring recorder must actually have captured events"
        );
    }
}

const GOLDEN_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/goldens/trace_seed7.json"
);

#[test]
fn chrome_trace_matches_golden() {
    // Deliberately tiny: six writes and two reads keep the golden small
    // while still covering access, phase, round, WPQ, and NVM events.
    let mut oram = PathOram::new(OramConfig::small_test(), ProtocolVariant::PsOram, 7);
    oram.set_payload_encryption(false);
    let rec = Arc::new(RingBufferRecorder::new(DEFAULT_RING_CAPACITY));
    oram.attach_obsv_recorder(rec.clone());
    for i in 0..6u64 {
        oram.write(BlockAddr(i), payload(i)).unwrap();
    }
    oram.read(BlockAddr(0)).unwrap();
    oram.read(BlockAddr(5)).unwrap();

    let tracks = vec![("path/ps-oram".to_string(), rec.events())];
    let mut json = chrome_trace_json(&tracks);
    json.push('\n');

    if std::env::var_os("PSORAM_BLESS").is_some() {
        std::fs::write(GOLDEN_PATH, &json).expect("write golden");
        return;
    }

    let golden = std::fs::read_to_string(GOLDEN_PATH)
        .expect("golden missing — run with PSORAM_BLESS=1 to create it");
    assert_eq!(
        json, golden,
        "seed-7 chrome trace diverged from the checked-in golden; \
         if the change is intentional, re-bless with PSORAM_BLESS=1"
    );
}

#[test]
fn event_stream_obeys_structural_invariants() {
    for (label, mut oram) in designs() {
        let rec = Arc::new(RingBufferRecorder::new(DEFAULT_RING_CAPACITY));
        oram.attach_recorder(rec.clone());
        drive(&mut *oram);
        let events = rec.events();
        assert!(!events.is_empty(), "{label}: no events captured");
        assert_eq!(rec.dropped(), 0, "{label}: ring buffer overflowed");

        let mut open_access: Option<u64> = None;
        let mut last_access_index: Option<u64> = None;
        let mut last_access_cycle = 0u64;
        let mut round_open = false;
        let mut round_begin_cycle = 0u64;
        let mut crashes = 0u64;
        let mut recoveries = 0u64;
        let mut saw = (false, false, false, false); // phase, push, nvm, round

        for (i, ev) in events.iter().enumerate() {
            match *ev {
                Event::AccessStart { index, cycle } => {
                    assert!(
                        open_access.is_none(),
                        "{label}@{i}: AccessStart while access {open_access:?} still open"
                    );
                    if let Some(prev) = last_access_index {
                        assert!(
                            index > prev,
                            "{label}@{i}: access indices must be strictly increasing"
                        );
                    }
                    assert!(
                        cycle >= last_access_cycle,
                        "{label}@{i}: access arrival cycles must be monotone"
                    );
                    open_access = Some(index);
                    last_access_index = Some(index);
                    last_access_cycle = cycle;
                }
                Event::AccessEnd { index, cycle } => {
                    assert_eq!(
                        open_access,
                        Some(index),
                        "{label}@{i}: AccessEnd without matching AccessStart"
                    );
                    assert!(
                        cycle >= last_access_cycle,
                        "{label}@{i}: AccessEnd before start"
                    );
                    open_access = None;
                }
                Event::Phase { start, end, .. } => {
                    assert!(end >= start, "{label}@{i}: phase interval inverted");
                    saw.0 = true;
                }
                Event::RoundBegin { cycle } => {
                    assert!(!round_open, "{label}@{i}: nested RoundBegin");
                    round_open = true;
                    round_begin_cycle = cycle;
                    saw.3 = true;
                }
                Event::RoundCommit { cycle, .. } => {
                    assert!(round_open, "{label}@{i}: RoundCommit without RoundBegin");
                    assert!(
                        cycle >= round_begin_cycle,
                        "{label}@{i}: round committed before it began"
                    );
                    round_open = false;
                }
                Event::WpqPush {
                    occupancy,
                    capacity,
                    ..
                } => {
                    assert!(
                        occupancy <= capacity,
                        "{label}@{i}: WPQ occupancy {occupancy} exceeds capacity {capacity}"
                    );
                    saw.1 = true;
                }
                Event::NvmAccess {
                    arrival, complete, ..
                } => {
                    assert!(
                        complete >= arrival,
                        "{label}@{i}: NVM access completed before it arrived"
                    );
                    saw.2 = true;
                }
                Event::Crash { .. } => {
                    crashes += 1;
                    // A crash abandons any round in flight.
                    round_open = false;
                    // ... and tears down the in-flight access.
                    open_access = None;
                }
                Event::Recovery { consistent, .. } => {
                    recoveries += 1;
                    assert!(
                        recoveries <= crashes,
                        "{label}@{i}: recovery without a preceding crash"
                    );
                    assert!(
                        consistent,
                        "{label}@{i}: recovery reported inconsistent state"
                    );
                }
                _ => {}
            }
        }
        assert_eq!(crashes, 1, "{label}: expected exactly one injected crash");
        assert_eq!(recoveries, 1, "{label}: expected exactly one recovery");
        assert!(saw.0, "{label}: no Phase events captured");
        assert!(saw.1, "{label}: no WpqPush events captured");
        assert!(saw.2, "{label}: no NvmAccess events captured");
        assert!(saw.3, "{label}: no RoundBegin events captured");
    }
}

#[test]
fn ingested_metrics_agree_with_event_stream() {
    let (label, mut oram) = designs().remove(0);
    let rec = Arc::new(RingBufferRecorder::new(DEFAULT_RING_CAPACITY));
    oram.attach_recorder(rec.clone());
    drive(&mut *oram);
    let events = rec.events();

    let mut reg = MetricsRegistry::new();
    reg.ingest_events(label, &events);
    let pushes: u64 = events
        .iter()
        .filter(|e| matches!(e, Event::WpqPush { .. }))
        .count() as u64;
    let crashes: u64 = events
        .iter()
        .filter(|e| matches!(e, Event::Crash { .. }))
        .count() as u64;
    assert_eq!(
        reg.counter(&MetricsRegistry::key(label, "wpq.pushes")),
        Some(pushes),
        "ingest_events must count every WpqPush"
    );
    assert_eq!(
        reg.counter(&MetricsRegistry::key(label, "crashes")),
        Some(crashes),
        "ingest_events must count every Crash"
    );
}

#[test]
fn wear_map_publishes_per_bank_and_hot_line_gauges() {
    for (label, mut oram) in designs() {
        // Without wear armed: no wear keys at all, so pre-endurance
        // metrics snapshots are byte-identical to what they always were.
        drive(&mut *oram);
        let mut clean = MetricsRegistry::new();
        oram.publish_metrics(label, &mut clean);
        let clean_json = clean.to_json_string();
        assert!(
            !clean_json.contains(".wear."),
            "{label}: wear keys leaked into a wear-free snapshot"
        );

        let (wlabel, mut worn) = designs()
            .into_iter()
            .find(|(l, _)| *l == label)
            .expect("same design set");
        worn.enable_wear(
            7,
            psoram_nvm::WearConfig::paper_default(psoram_nvm::WearScheme::Remap),
        );
        drive(&mut *worn);
        let mut reg = MetricsRegistry::new();
        worn.publish_metrics(wlabel, &mut reg);
        let key = |s: &str| MetricsRegistry::key(wlabel, s);
        assert!(
            reg.counter(&key("wear.writes_recorded")).unwrap_or(0) > 0,
            "{wlabel}: the wear engine recorded no media writes"
        );
        // The NVM wear map: per-bank lifetime writes plus the hot-N
        // per-line gauges, hottest first.
        assert!(
            reg.gauge(&key("nvm.wear.lines_touched")).unwrap_or(0.0) > 0.0,
            "{wlabel}: no per-line wear was tracked"
        );
        assert!(
            reg.gauge(&key("nvm.wear.hot.0.writes")).unwrap_or(0.0) > 0.0,
            "{wlabel}: the hottest-line gauge is missing"
        );
        assert!(
            reg.gauge(&key("nvm.wear.bank.c0.b0")).is_some(),
            "{wlabel}: the per-bank wear map is missing"
        );
    }
}
