//! Functional integration tests for the Ring ORAM controller.
//!
//! Crash/recovery behavior is covered by the parameterized matrix in
//! `crash_matrix.rs`; this file keeps the Ring-specific functional and
//! statistics claims.

use psoram_core::ring::{RingConfig, RingOram, RingVariant};
use psoram_core::{BlockAddr, OramConfig, PathOram, ProtocolVariant};

fn payload(i: u64) -> Vec<u8> {
    vec![(i % 251) as u8; 8]
}

#[test]
fn read_your_writes_both_variants() {
    for variant in [RingVariant::Baseline, RingVariant::PsRing] {
        let mut oram = RingOram::new(RingConfig::small_test(), variant, 42);
        for i in 0..40u64 {
            oram.write(BlockAddr(i), payload(i)).unwrap();
        }
        for i in (0..40u64).rev() {
            assert_eq!(
                oram.read(BlockAddr(i)).unwrap(),
                payload(i),
                "{variant} block {i}"
            );
        }
    }
}

#[test]
fn overwrites_visible() {
    let mut oram = RingOram::new(RingConfig::small_test(), RingVariant::PsRing, 1);
    oram.write(BlockAddr(5), payload(1)).unwrap();
    oram.write(BlockAddr(5), payload(2)).unwrap();
    assert_eq!(oram.read(BlockAddr(5)).unwrap(), payload(2));
}

#[test]
fn fresh_reads_zero() {
    let mut oram = RingOram::new(RingConfig::small_test(), RingVariant::PsRing, 1);
    assert_eq!(oram.read(BlockAddr(9)).unwrap(), vec![0u8; 8]);
}

#[test]
fn evictions_happen_at_configured_rate() {
    let mut oram = RingOram::new(RingConfig::small_test(), RingVariant::PsRing, 1);
    for i in 0..30u64 {
        oram.write(BlockAddr(i), payload(i)).unwrap();
    }
    assert_eq!(
        oram.stats().evictions,
        10,
        "A=3 means one eviction per 3 accesses"
    );
}

#[test]
fn ring_reads_fewer_blocks_per_access_than_path_oram() {
    // The bandwidth argument for Ring ORAM: ~1 block/bucket per access
    // plus amortized eviction, vs Z blocks/bucket for Path ORAM.
    let mut ring = RingOram::new(RingConfig::small_test(), RingVariant::Baseline, 3);
    for i in 0..120u64 {
        ring.write(BlockAddr(i % 40), payload(i)).unwrap();
    }
    let ring_reads_per_access = ring.nvm_stats().reads as f64 / 120.0;
    let mut path = PathOram::new(OramConfig::small_test(), ProtocolVariant::Baseline, 3);
    for i in 0..120u64 {
        path.write(BlockAddr(i % 40), payload(i)).unwrap();
    }
    let path_reads_per_access = path.nvm_stats().reads as f64 / 120.0;
    assert!(
        ring_reads_per_access < path_reads_per_access,
        "ring {ring_reads_per_access:.1} !< path {path_reads_per_access:.1}"
    );
}

#[test]
fn early_reshuffles_trigger_on_budget_exhaustion() {
    let mut cfg = RingConfig::small_test();
    cfg.dummy_slots = 2; // tiny budget, frequent reshuffles
    cfg.wpq_capacity = (cfg.real_slots + cfg.dummy_slots) * (cfg.levels as usize + 1);
    let mut oram = RingOram::new(cfg, RingVariant::PsRing, 5);
    for i in 0..60u64 {
        oram.write(BlockAddr(i % 10), payload(i)).unwrap();
    }
    assert!(oram.stats().early_reshuffles > 0);
    // Still functionally correct afterwards.
    for i in 0..10u64 {
        let got = oram.read(BlockAddr(i)).unwrap();
        let latest = (0..60u64).rev().find(|j| j % 10 == i).unwrap();
        assert_eq!(got, payload(latest));
    }
}

#[test]
fn stash_stays_bounded() {
    let mut oram = RingOram::new(RingConfig::small_test(), RingVariant::PsRing, 11);
    for i in 0..600u64 {
        oram.write(BlockAddr(i % 50), payload(i)).unwrap();
    }
    assert!(
        oram.stats().stash_max < 120,
        "stash grew to {}",
        oram.stats().stash_max
    );
}

#[test]
fn invalid_marks_do_not_destroy_data() {
    // Read the same path many times (consuming slots), crash, recover:
    // the revalidation restores everything (paper Case 2).
    let mut oram = RingOram::new(RingConfig::small_test(), RingVariant::PsRing, 13);
    for i in 0..20u64 {
        oram.write(BlockAddr(i), payload(i)).unwrap();
    }
    for _ in 0..10 {
        oram.read(BlockAddr(1)).unwrap();
    }
    oram.crash_now();
    assert!(oram.recover().consistent);
    oram.verify_contents(true).unwrap();
}

#[test]
fn baseline_recovery_verdict_is_tracked_in_stats() {
    // The recoverability check measures *internal* self-consistency
    // (committed ledger vs physical copies), so the baseline — whose
    // PosMap updates are volatile and whose ledger is therefore sparse
    // — can pass it even while losing completed writes; convicting the
    // baseline is the job of the external differential oracle in
    // `psoram-faultsim`. What this test pins down is the accounting:
    // the failure counter and the retained report must track the
    // verdict exactly, and the data loss itself must be observable.
    use psoram_core::CrashPoint;
    let mut lost_somewhere = false;
    for seed in 0..10u64 {
        let mut oram = RingOram::new(RingConfig::small_test(), RingVariant::Baseline, seed);
        for i in 0..30u64 {
            oram.write(BlockAddr(i), payload(i)).unwrap();
        }
        oram.inject_crash(CrashPoint::DuringEviction(0));
        for i in 0..6u64 {
            if oram.read(BlockAddr(i)).is_err() {
                break;
            }
        }
        if !oram.is_crashed() {
            continue;
        }
        let report = oram.recover();
        assert_eq!(oram.stats().recoveries, 1);
        assert_eq!(
            oram.stats().recovery_failures,
            u64::from(!report.consistent)
        );
        assert_eq!(oram.last_recovery(), Some(&report));
        for i in 0..30u64 {
            if oram.read(BlockAddr(i)).unwrap() != payload(i) {
                lost_somewhere = true;
            }
        }
    }
    assert!(
        lost_somewhere,
        "partial direct bucket rewrites should lose data"
    );
}

#[test]
fn config_validation_rejects_small_wpq() {
    let mut cfg = RingConfig::small_test();
    cfg.wpq_capacity = 8;
    let result = std::panic::catch_unwind(|| cfg.validate());
    assert!(result.is_err());
}

#[test]
fn deterministic_for_same_seed() {
    let run = || {
        let mut oram = RingOram::new(RingConfig::small_test(), RingVariant::PsRing, 21);
        for i in 0..50u64 {
            oram.write(BlockAddr(i % 20), payload(i)).unwrap();
        }
        (oram.clock(), oram.nvm_stats())
    };
    assert_eq!(run(), run());
}
