//! Cross-feature matrix: every protocol variant × channel count ×
//! integrity × top-of-tree cache must stay functionally correct, bounded,
//! and (where claimed) crash-consistent.

use psoram_core::{BlockAddr, OramConfig, PathOram, ProtocolVariant};
use psoram_nvm::NvmConfig;

fn payload(i: u64) -> Vec<u8> {
    vec![(i % 251) as u8; 8]
}

fn build(variant: ProtocolVariant, channels: usize, integrity: bool, top_cache: u32) -> PathOram {
    let cfg = OramConfig::small_test();
    let mut oram = PathOram::with_nvm(cfg, variant, NvmConfig::paper_pcm(channels), 97);
    if integrity {
        oram.enable_integrity();
    }
    oram.set_top_cache_levels(top_cache);
    oram
}

#[test]
fn full_matrix_read_your_writes() {
    for variant in ProtocolVariant::all() {
        for channels in [1usize, 2] {
            for integrity in [false, true] {
                for top_cache in [0u32, 3] {
                    let tag = format!("{variant}/{channels}ch/int={integrity}/cache={top_cache}");
                    let mut oram = build(variant, channels, integrity, top_cache);
                    for i in 0..25u64 {
                        oram.write(BlockAddr(i), payload(i))
                            .unwrap_or_else(|e| panic!("{tag}: write failed: {e}"));
                    }
                    for i in 0..25u64 {
                        let got = oram
                            .read(BlockAddr(i))
                            .unwrap_or_else(|e| panic!("{tag}: read failed: {e}"));
                        assert_eq!(got, payload(i), "{tag}: wrong value");
                    }
                    assert!(
                        oram.stash_max_occupancy() < 120,
                        "{tag}: stash ran to {}",
                        oram.stash_max_occupancy()
                    );
                }
            }
        }
    }
}

#[test]
fn variant_helper_predicates_are_consistent() {
    for v in ProtocolVariant::all() {
        // WPQ users are exactly the crash-consistent designs.
        assert_eq!(v.uses_wpq(), v.is_crash_consistent(), "{v}");
        // Stash durability is exactly the on-chip NVM designs.
        assert_eq!(v.stash_durable(), v.onchip_tech().is_some(), "{v}");
        // Labels are unique and non-empty.
        assert!(!v.label().is_empty());
    }
    let labels: std::collections::HashSet<&str> =
        ProtocolVariant::all().iter().map(|v| v.label()).collect();
    assert_eq!(labels.len(), 7);
}

#[test]
fn deterministic_across_matrix_cells() {
    // Feature toggles must not perturb unrelated randomness: two identical
    // builds give identical traffic.
    let run = || {
        let mut oram = build(ProtocolVariant::PsOram, 2, true, 2);
        for i in 0..30u64 {
            oram.write(BlockAddr(i % 10), payload(i)).unwrap();
        }
        oram.nvm_stats()
    };
    assert_eq!(run(), run());
}
