//! Integration tests for the ORAM controller across all protocol variants.

use psoram_core::{BlockAddr, CrashPoint, OramConfig, OramError, PathOram, ProtocolVariant};
use psoram_nvm::NvmConfig;

fn payload(tag: u64) -> Vec<u8> {
    (0..8)
        .map(|i| (tag as u8).wrapping_mul(31).wrapping_add(i))
        .collect()
}

#[test]
fn read_your_writes_all_variants() {
    for variant in ProtocolVariant::all() {
        let mut oram = PathOram::new(OramConfig::small_test(), variant, 42);
        for i in 0..30u64 {
            oram.write(BlockAddr(i), payload(i)).unwrap();
        }
        for i in (0..30u64).rev() {
            assert_eq!(
                oram.read(BlockAddr(i)).unwrap(),
                payload(i),
                "{variant}: block {i}"
            );
        }
        // Overwrite and re-read.
        oram.write(BlockAddr(7), payload(99)).unwrap();
        assert_eq!(oram.read(BlockAddr(7)).unwrap(), payload(99), "{variant}");
    }
}

#[test]
fn fresh_reads_return_zeros() {
    let mut oram = PathOram::new(OramConfig::small_test(), ProtocolVariant::PsOram, 1);
    assert_eq!(oram.read(BlockAddr(12)).unwrap(), vec![0u8; 8]);
}

#[test]
fn repeated_access_hits_stash_sometimes() {
    let mut oram = PathOram::new(OramConfig::small_test(), ProtocolVariant::PsOram, 5);
    oram.write(BlockAddr(1), payload(1)).unwrap();
    // Immediately re-access: the block may still be in the stash. Run a few
    // times; at least the counter must be consistent.
    for _ in 0..10 {
        oram.read(BlockAddr(1)).unwrap();
    }
    assert!(oram.stats().accesses == 11);
}

#[test]
fn address_out_of_range_rejected() {
    let cfg = OramConfig::small_test();
    let cap = cfg.capacity_blocks();
    let mut oram = PathOram::new(cfg, ProtocolVariant::Baseline, 1);
    let err = oram.read(BlockAddr(cap)).unwrap_err();
    assert!(matches!(err, OramError::AddressOutOfRange { .. }));
}

#[test]
fn wrong_payload_size_rejected() {
    let mut oram = PathOram::new(OramConfig::small_test(), ProtocolVariant::Baseline, 1);
    let err = oram.write(BlockAddr(1), vec![0u8; 5]).unwrap_err();
    assert_eq!(
        err,
        OramError::PayloadSize {
            expected: 8,
            got: 5
        }
    );
}

#[test]
fn deterministic_across_seeds() {
    let run = || {
        let mut oram = PathOram::new(OramConfig::small_test(), ProtocolVariant::PsOram, 77);
        for i in 0..20u64 {
            oram.write(BlockAddr(i % 7), payload(i)).unwrap();
        }
        (oram.clock(), oram.nvm_stats())
    };
    assert_eq!(run(), run());
}

// ───────────────────────── crash consistency ─────────────────────────

#[test]
fn small_wpq_produces_multiple_batches() {
    let cfg = OramConfig::small_test().with_wpq_capacity(4, 4);
    let mut oram = PathOram::new(cfg, ProtocolVariant::PsOram, 13);
    for i in 0..20u64 {
        oram.write(BlockAddr(i), payload(i)).unwrap();
    }
    let s = oram.stats();
    assert!(
        s.eviction_batches > s.eviction_rounds,
        "4-entry WPQ must split rounds: {} batches over {} rounds",
        s.eviction_batches,
        s.eviction_rounds
    );
}

#[test]
fn full_nvm_inconsistent_in_posmap_window_but_durable_after_access() {
    // Crash between the durable PosMap update and the path load: the
    // target is unlocatable (paper Case 1b applied to FullNVM).
    let mut oram = PathOram::new(OramConfig::small_test(), ProtocolVariant::FullNvm, 31);
    for i in 0..20u64 {
        oram.write(BlockAddr(i), payload(i)).unwrap();
    }
    // Make sure the victim block is out of the (durable) stash, so the
    // inconsistency window is actually exposed.
    let victim = (0..20u64)
        .map(BlockAddr)
        .find(|a| !oram.stash_contains(*a))
        .expect("some block has been evicted");
    oram.inject_crash(CrashPoint::AfterAccessPosMap);
    let _ = oram.read(victim);
    oram.recover();
    assert!(
        oram.verify_contents(true).is_err(),
        "FullNVM must be inconsistent when crashing inside the PosMap window"
    );

    // But a crash after a completed access is fine: stash and PosMap are
    // both durable.
    let mut oram = PathOram::new(OramConfig::small_test(), ProtocolVariant::FullNvm, 31);
    for i in 0..20u64 {
        oram.write(BlockAddr(i), payload(i)).unwrap();
    }
    oram.crash_now();
    oram.recover();
    oram.verify_contents(true).unwrap();
}

// ───────────────────────── traffic & stats ─────────────────────────

#[test]
fn naive_writes_many_more_posmap_entries_than_ps_oram() {
    let run = |variant| {
        let mut oram = PathOram::new(OramConfig::small_test(), variant, 5);
        for i in 0..50u64 {
            oram.write(BlockAddr(i % 20), payload(i)).unwrap();
        }
        oram.stats().posmap_entry_writes
    };
    let naive = run(ProtocolVariant::NaivePsOram);
    let ps = run(ProtocolVariant::PsOram);
    assert!(
        naive > ps * 5,
        "Naive should flush far more metadata: naive={naive}, ps={ps}"
    );
}

#[test]
fn ps_oram_write_traffic_close_to_baseline() {
    let run = |variant| {
        let mut oram = PathOram::new(OramConfig::small_test(), variant, 5);
        for i in 0..100u64 {
            oram.write(BlockAddr(i % 30), payload(i)).unwrap();
        }
        oram.nvm_stats().writes as f64
    };
    let base = run(ProtocolVariant::Baseline);
    let ps = run(ProtocolVariant::PsOram);
    let overhead = (ps - base) / base;
    assert!(
        overhead < 0.25,
        "PS-ORAM write-traffic overhead should be small, got {:.1}%",
        overhead * 100.0
    );
}

#[test]
fn full_nvm_uses_onchip_nvm_buffers() {
    let mut oram = PathOram::new(OramConfig::small_test(), ProtocolVariant::FullNvm, 5);
    for i in 0..10u64 {
        oram.write(BlockAddr(i), payload(i)).unwrap();
    }
    let s = oram.stats();
    assert!(
        s.onchip_nvm_writes >= 10 * 28,
        "per access the whole path fills the NVM stash"
    );
    assert!(s.onchip_nvm_reads > 0);
}

#[test]
fn recursive_variants_generate_extra_read_traffic() {
    // Needs a tree large enough to actually recurse.
    let cfg = OramConfig::paper_default().with_levels(16);
    let run = |variant| {
        let mut oram = PathOram::new(cfg.clone(), variant, 5);
        for i in 0..40u64 {
            oram.write(BlockAddr(i * 997), payload(i)).unwrap();
        }
        (oram.nvm_stats().reads, oram.stats().recursion_reads)
    };
    let (base_reads, base_rec) = run(ProtocolVariant::Baseline);
    let (rcr_reads, rcr_rec) = run(ProtocolVariant::RcrBaseline);
    assert_eq!(base_rec, 0);
    assert!(rcr_rec > 0, "recursive PosMap must touch posmap trees");
    assert!(rcr_reads > base_reads, "recursion adds read traffic");
}

#[test]
fn backups_created_only_by_wpq_variants() {
    let run = |variant| {
        let mut oram = PathOram::new(OramConfig::small_test(), variant, 5);
        for i in 0..20u64 {
            oram.write(BlockAddr(i % 5), payload(i)).unwrap();
        }
        oram.stats().backups_created
    };
    assert_eq!(run(ProtocolVariant::Baseline), 0);
    assert_eq!(run(ProtocolVariant::FullNvm), 0);
    assert!(run(ProtocolVariant::PsOram) > 0);
    assert!(run(ProtocolVariant::NaivePsOram) > 0);
}

#[test]
fn stash_and_temp_posmap_stay_bounded() {
    let mut oram = PathOram::new(OramConfig::small_test(), ProtocolVariant::PsOram, 23);
    for i in 0..500u64 {
        oram.write(BlockAddr(i % 60), payload(i)).unwrap();
    }
    assert!(
        oram.stash_max_occupancy() < 100,
        "stash ran to {} entries",
        oram.stash_max_occupancy()
    );
    assert!(
        oram.temp_posmap_len() < 40,
        "temp PosMap should drain via evictions"
    );
}

// ───────────────────────── timing ─────────────────────────

#[test]
fn multi_channel_is_faster() {
    let run = |channels| {
        let mut oram = PathOram::with_nvm(
            OramConfig::small_test(),
            ProtocolVariant::PsOram,
            NvmConfig::paper_pcm(channels),
            5,
        );
        for i in 0..50u64 {
            oram.write(BlockAddr(i % 20), payload(i)).unwrap();
        }
        oram.clock()
    };
    let t1 = run(1);
    let t4 = run(4);
    assert!(t4 < t1, "4-channel ({t4}) should beat 1-channel ({t1})");
}

#[test]
fn sttram_buffers_faster_than_pcm_buffers() {
    let run = |variant| {
        let mut oram = PathOram::new(OramConfig::small_test(), variant, 5);
        for i in 0..50u64 {
            oram.write(BlockAddr(i % 20), payload(i)).unwrap();
        }
        oram.clock()
    };
    let pcm = run(ProtocolVariant::FullNvm);
    let stt = run(ProtocolVariant::FullNvmStt);
    let base = run(ProtocolVariant::Baseline);
    assert!(stt < pcm, "STT buffers should be faster than PCM buffers");
    assert!(base < stt, "baseline (SRAM buffers) should be fastest");
}

#[test]
fn ps_oram_overhead_small_vs_naive_large() {
    let run = |variant| {
        let mut oram = PathOram::new(OramConfig::small_test(), variant, 5);
        for i in 0..100u64 {
            oram.write(BlockAddr(i % 30), payload(i)).unwrap();
        }
        oram.clock() as f64
    };
    let base = run(ProtocolVariant::Baseline);
    let ps = run(ProtocolVariant::PsOram);
    let naive = run(ProtocolVariant::NaivePsOram);
    let ps_overhead = (ps - base) / base;
    let naive_overhead = (naive - base) / base;
    assert!(ps_overhead < naive_overhead, "PS-ORAM must beat Naive");
    assert!(
        ps_overhead < 0.30,
        "PS-ORAM overhead too large: {:.1}%",
        ps_overhead * 100.0
    );
}

// ─────────────────── hybrid-memory top-of-tree cache ───────────────────

#[test]
fn top_cache_reduces_read_traffic_not_write_traffic() {
    let run = |levels: u32| {
        let mut oram = PathOram::new(OramConfig::small_test(), ProtocolVariant::PsOram, 5);
        oram.set_top_cache_levels(levels);
        for i in 0..60u64 {
            oram.write(BlockAddr(i % 20), vec![i as u8; 8]).unwrap();
        }
        (
            oram.nvm_stats().reads,
            oram.nvm_stats().writes,
            oram.clock(),
        )
    };
    let (r0, w0, t0) = run(0);
    let (r3, w3, t3) = run(3);
    assert!(
        r3 < r0,
        "cached top levels must cut NVM reads: {r3} vs {r0}"
    );
    assert_eq!(
        w3, w0,
        "write-through must keep NVM write traffic identical"
    );
    assert!(t3 < t0, "skipped reads should save time");
}

#[test]
fn top_cache_preserves_crash_consistency() {
    for point in CrashPoint::step_boundaries() {
        let mut oram = PathOram::new(OramConfig::small_test(), ProtocolVariant::PsOram, 19);
        oram.set_top_cache_levels(4);
        for i in 0..25u64 {
            oram.write(BlockAddr(i), vec![i as u8; 8]).unwrap();
        }
        oram.inject_crash(point);
        let _ = oram.read(BlockAddr(5));
        assert!(
            oram.recover().consistent,
            "write-through cache must not break recovery at {point}"
        );
        oram.verify_contents(true).unwrap();
    }
}

#[test]
fn top_cache_sizing() {
    let mut oram = PathOram::new(OramConfig::small_test(), ProtocolVariant::PsOram, 5);
    oram.set_top_cache_levels(3);
    // 7 buckets * 4 slots * 64 B.
    assert_eq!(oram.top_cache_bytes(), 7 * 4 * 64);
}

#[test]
#[should_panic(expected = "exceed the tree")]
fn top_cache_rejects_oversize() {
    let mut oram = PathOram::new(OramConfig::small_test(), ProtocolVariant::PsOram, 5);
    oram.set_top_cache_levels(20);
}

// ───────────────────────── integrity protection ─────────────────────────

#[test]
fn integrity_clean_operation_never_alarms() {
    let mut oram = PathOram::new(OramConfig::small_test(), ProtocolVariant::PsOram, 7);
    oram.enable_integrity();
    for i in 0..60u64 {
        oram.write(BlockAddr(i % 20), payload(i)).unwrap();
    }
    for i in 0..20u64 {
        assert_eq!(
            oram.read(BlockAddr(i)).unwrap(),
            payload((0..60).rev().find(|j| j % 20 == i).unwrap())
        );
    }
}

#[test]
fn integrity_detects_tampering() {
    let mut oram = PathOram::new(OramConfig::small_test(), ProtocolVariant::PsOram, 7);
    oram.enable_integrity();
    for i in 0..30u64 {
        oram.write(BlockAddr(i), payload(i)).unwrap();
    }
    // Corrupt the NVM image on some populated path, then access it until
    // the verification trips.
    let mut tripped = false;
    for leaf in 0..64u64 {
        if !oram.corrupt_path_for_testing(psoram_core::Leaf(leaf)) {
            continue;
        }
        for i in 0..30u64 {
            if let Err(psoram_core::OramError::IntegrityViolation { .. }) = oram.read(BlockAddr(i))
            {
                tripped = true;
                break;
            }
        }
        break;
    }
    assert!(tripped, "tampering must be detected on access");
}

#[test]
fn integrity_enabled_mid_run_covers_existing_state() {
    let mut oram = PathOram::new(OramConfig::small_test(), ProtocolVariant::PsOram, 9);
    for i in 0..20u64 {
        oram.write(BlockAddr(i), payload(i)).unwrap();
    }
    oram.enable_integrity();
    assert!(oram.integrity_enabled());
    for i in 0..20u64 {
        assert_eq!(oram.read(BlockAddr(i)).unwrap(), payload(i));
    }
}

#[test]
fn integrity_survives_crash_and_recovery_without_false_alarms() {
    for point in CrashPoint::step_boundaries() {
        let mut oram = PathOram::new(OramConfig::small_test(), ProtocolVariant::PsOram, 11);
        oram.enable_integrity();
        for i in 0..25u64 {
            oram.write(BlockAddr(i), payload(i)).unwrap();
        }
        oram.inject_crash(point);
        let _ = oram.read(BlockAddr(5));
        assert!(oram.recover().consistent, "{point}");
        oram.verify_contents(true)
            .unwrap_or_else(|e| panic!("false integrity alarm after {point}: {e}"));
    }
}

#[test]
fn integrity_survives_mid_eviction_crash() {
    for k in [0usize, 1] {
        let mut oram = PathOram::new(OramConfig::small_test(), ProtocolVariant::PsOram, 13);
        oram.enable_integrity();
        for i in 0..25u64 {
            oram.write(BlockAddr(i), payload(i)).unwrap();
        }
        oram.inject_crash(CrashPoint::DuringEviction(k));
        let _ = oram.read(BlockAddr(3));
        if !oram.is_crashed() {
            continue;
        }
        assert!(oram.recover().consistent);
        oram.verify_contents(true).unwrap();
    }
}

#[test]
fn integrity_works_for_baseline_variant_too() {
    let mut oram = PathOram::new(OramConfig::small_test(), ProtocolVariant::Baseline, 15);
    oram.enable_integrity();
    for i in 0..30u64 {
        oram.write(BlockAddr(i), payload(i)).unwrap();
        assert_eq!(oram.read(BlockAddr(i)).unwrap(), payload(i));
    }
}

// ───────────────────────── security ─────────────────────────

#[test]
fn observed_pattern_has_constant_shape_and_uniform_leaves() {
    let mut oram = PathOram::new(OramConfig::small_test(), ProtocolVariant::PsOram, 99);
    oram.enable_recording();
    // A maximally revealing logical pattern: hammer one address.
    for _ in 0..2000 {
        oram.read(BlockAddr(1)).unwrap();
    }
    let rec = oram.recorder().unwrap();
    assert!(
        rec.constant_shape(),
        "every access must look identical in length"
    );
    let chi = rec.leaf_chi_square(64, 16);
    // 15 degrees of freedom: p=0.001 critical value is ~37.7.
    assert!(chi < 37.7, "observed leaves not uniform: chi-square {chi}");
    let corr = rec.leaf_serial_correlation();
    assert!(corr.abs() < 0.1, "leaf sequence auto-correlated: {corr}");
}

#[test]
fn variant_choice_does_not_change_observed_path_count_shape() {
    // PS-ORAM's extra persistence work must not change the *number of path
    // accesses* the bus observes per logical access.
    let observe = |variant| {
        let mut oram = PathOram::new(OramConfig::small_test(), variant, 12);
        oram.enable_recording();
        for i in 0..100u64 {
            oram.write(BlockAddr(i % 10), payload(i)).unwrap();
        }
        oram.recorder().unwrap().len()
    };
    assert_eq!(
        observe(ProtocolVariant::Baseline),
        observe(ProtocolVariant::PsOram)
    );
    assert_eq!(
        observe(ProtocolVariant::PsOram),
        observe(ProtocolVariant::NaivePsOram)
    );
}
