//! Security analysis: access-pattern recording and statistical checks.
//!
//! The paper's §4.6 argues that PS-ORAM's modifications (backup labels,
//! backup blocks, WPQ write-back) leak no information beyond baseline Path
//! ORAM. This module provides the instrumentation to check that
//! empirically: a recorder capturing what the memory bus observes, plus
//! chi-square uniformity and shape-invariance statistics.

use serde::{Deserialize, Serialize};

use crate::types::Leaf;

/// One observable ORAM access as seen from the (untrusted) memory bus:
/// which path was touched and how many block transfers occurred.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ObservedAccess {
    /// The leaf label of the fetched/evicted path (visible as the set of
    /// bucket addresses on the bus).
    pub leaf: Leaf,
    /// Number of block transfers on the bus for this access.
    pub transfers: usize,
}

/// Records the externally observable access pattern of a controller.
///
/// # Examples
///
/// ```
/// use psoram_core::{AccessRecorder, Leaf};
///
/// let mut rec = AccessRecorder::new();
/// rec.record(Leaf(3), 96);
/// assert_eq!(rec.len(), 1);
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct AccessRecorder {
    observations: Vec<ObservedAccess>,
}

impl AccessRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observed access.
    pub fn record(&mut self, leaf: Leaf, transfers: usize) {
        self.observations.push(ObservedAccess { leaf, transfers });
    }

    /// The recorded observations, in order.
    pub fn observations(&self) -> &[ObservedAccess] {
        &self.observations
    }

    /// Number of recorded accesses.
    pub fn len(&self) -> usize {
        self.observations.len()
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.observations.is_empty()
    }

    /// The sequence of observed leaves.
    pub fn leaves(&self) -> Vec<Leaf> {
        self.observations.iter().map(|o| o.leaf).collect()
    }

    /// Chi-square statistic of the observed leaf distribution against the
    /// uniform distribution over `num_leaves`, bucketed into `bins` bins.
    ///
    /// For an oblivious ORAM the observed leaves are uniform, so the
    /// statistic stays near `bins - 1` (its expected value under
    /// uniformity).
    ///
    /// # Panics
    ///
    /// Panics if `bins` is zero or no observations were recorded.
    pub fn leaf_chi_square(&self, num_leaves: u64, bins: usize) -> f64 {
        assert!(bins > 0, "need at least one bin");
        assert!(!self.observations.is_empty(), "no observations recorded");
        let mut counts = vec![0u64; bins];
        for o in &self.observations {
            let bin = (o.leaf.0 as u128 * bins as u128 / num_leaves as u128) as usize;
            counts[bin.min(bins - 1)] += 1;
        }
        let expected = self.observations.len() as f64 / bins as f64;
        counts
            .iter()
            .map(|&c| {
                let d = c as f64 - expected;
                d * d / expected
            })
            .sum()
    }

    /// `true` when every observed access transferred exactly the same
    /// number of blocks — the "same length of the access sequence"
    /// requirement of the paper's security argument.
    pub fn constant_shape(&self) -> bool {
        match self.observations.first() {
            None => true,
            Some(first) => self
                .observations
                .iter()
                .all(|o| o.transfers == first.transfers),
        }
    }

    /// Lag-1 serial correlation of the observed leaf sequence; near zero
    /// for independent remapping.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two observations were recorded.
    pub fn leaf_serial_correlation(&self) -> f64 {
        assert!(
            self.observations.len() >= 2,
            "need at least two observations"
        );
        let xs: Vec<f64> = self.observations.iter().map(|o| o.leaf.0 as f64).collect();
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
        if var == 0.0 {
            return 1.0;
        }
        let cov = xs
            .windows(2)
            .map(|w| (w[0] - mean) * (w[1] - mean))
            .sum::<f64>()
            / (n - 1.0);
        cov / var
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chi_square_near_bins_for_uniform_data() {
        let mut rec = AccessRecorder::new();
        // Perfectly uniform: leaves 0..64 round-robin.
        for i in 0..6400u64 {
            rec.record(Leaf(i % 64), 96);
        }
        let chi = rec.leaf_chi_square(64, 16);
        assert!(
            chi < 1.0,
            "round-robin over bins is exactly uniform, chi={chi}"
        );
    }

    #[test]
    fn chi_square_large_for_skewed_data() {
        let mut rec = AccessRecorder::new();
        for _ in 0..1000 {
            rec.record(Leaf(0), 96);
        }
        let chi = rec.leaf_chi_square(64, 16);
        assert!(
            chi > 1000.0,
            "all-one-leaf must look wildly non-uniform, chi={chi}"
        );
    }

    #[test]
    fn constant_shape_detects_variation() {
        let mut rec = AccessRecorder::new();
        rec.record(Leaf(1), 96);
        rec.record(Leaf(2), 96);
        assert!(rec.constant_shape());
        rec.record(Leaf(3), 95);
        assert!(!rec.constant_shape());
    }

    #[test]
    fn serial_correlation_high_for_repeats() {
        let mut rec = AccessRecorder::new();
        for i in 0..100u64 {
            rec.record(Leaf(i / 50), 96); // long runs
        }
        assert!(rec.leaf_serial_correlation() > 0.5);
    }

    #[test]
    fn empty_recorder_behaviour() {
        let rec = AccessRecorder::new();
        assert!(rec.is_empty());
        assert!(rec.constant_shape());
        assert_eq!(rec.leaves().len(), 0);
    }
}
